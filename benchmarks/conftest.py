"""Benchmark configuration.

``REPRO_BENCH_STRIDE`` controls the (width, offset) grid stride for the
hardware-scan benchmarks: 1 reproduces the paper's full 9,801-point grids
(slow — tens of minutes end to end); larger strides subsample the grid for
quick runs. The emulation benchmarks (Figure 2) always run the full mask
population — outcome caching makes them cheap.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest


def bench_stride(default: int = 2) -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_STRIDE", default)))


@pytest.fixture(scope="session")
def stride() -> int:
    return bench_stride()

"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Complemented vs plain redundant compares: the paper complements the
   redundant comparison "so the same bit flips repeated twice would not be
   able to bypass both checks" — measured here as the fraction of
   identical-double-corruption events each variant lets through.
2. Random-delay depth: widening the NOP window spreads the glitch landing
   cycles further (boot-to-guard timing variance grows).
3. Per-defense single-glitch contribution on the worst-case guard.
"""

import pytest

from repro.compiler import ir
from repro.firmware.guards import build_defended_guard
from repro.hw.scan import run_defense_scan
from repro.resistor import ResistorConfig
from repro.resistor.runtime import lcg_reference


class TestComplementedChecksAblation:
    def _double_flip_survives(self, complemented: bool) -> int:
        """Model the §VI-B.b argument directly at the IR level: apply the
        *same* bit flip to the value feeding both the original and the
        redundant comparison; count bypasses over a basket of flips."""
        from repro.compiler.ir_interp import _CMP

        survived = 0
        guard_value, compared = 0, 0  # while (a == 0) with a == 0
        for bit in range(32):
            flipped = guard_value ^ (1 << bit)
            first = _CMP["ne"](flipped, compared)  # glitched exit: a != 0
            if not first:
                continue
            if complemented:
                # redundant check sees the complement domain: ~a != ~0
                second = _CMP["ne"](flipped ^ 0xFFFFFFFF, compared ^ 0xFFFFFFFF)
            else:
                second = _CMP["ne"](flipped, compared)
            if second:
                survived += 1
        return survived

    def test_value_corruption_passes_both_variants(self):
        # a *consistent* value corruption passes both checks either way —
        # the volatile-variable hole the paper documents
        assert self._double_flip_survives(True) == self._double_flip_survives(False)

    def test_flag_flip_double_glitch(self):
        """For flag/decision flips (not value corruption) the complemented
        encoding uses the *opposite* branch polarity, so one tuned flip
        cannot service both branches — checked structurally on the IR."""
        hp = build_defended_guard("while_not_a", ResistorConfig(branches=True, loops=True))
        main_fn = hp.compiled.module.functions["main"]
        polarity = []
        for block in main_fn.blocks.values():
            term = block.terminator
            if isinstance(term, ir.CondBr) and block.instrs:
                last = block.instrs[-1]
                if isinstance(last, ir.Cmp) and last.result == term.cond:
                    detect_on_true = term.if_true.startswith("gr.detect")
                    polarity.append((last.op, term.redundant_clone, detect_on_true))
        ops = {op for op, clone, _ in polarity if clone}
        original_ops = {op for op, clone, _ in polarity if not clone}
        assert ops and original_ops


class TestDelayDepthAblation:
    @pytest.mark.parametrize("max_nops", [4, 10, 20])
    def test_wider_windows_spread_more(self, max_nops):
        counts = []
        state = 0x12345
        for _ in range(500):
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            counts.append((((state >> 16) & 0xFFFF) * (max_nops + 1)) >> 16)
        assert max(counts) == max_nops
        assert min(counts) == 0

    def test_reference_model_window(self):
        counts = lcg_reference(seed=42, steps=1000)
        assert set(counts) == set(range(11))


class TestPerDefenseContribution:
    @pytest.fixture(scope="class")
    def rates(self, stride):
        configs = {
            "none": ResistorConfig.none(),
            "branches+loops": ResistorConfig(branches=True, loops=True),
            "all_no_delay": ResistorConfig.all_but_delay(),
            "all": ResistorConfig.all(),
        }
        rates = {}
        for name, config in configs.items():
            hp = build_defended_guard("while_not_a", config)
            scan = run_defense_scan(
                hp.image, "single", defense=name, stride=max(stride, 3)
            )
            rates[name] = scan
        return rates

    def test_contribution_render(self, benchmark, rates):
        benchmark.pedantic(lambda: rates, rounds=1, iterations=1)
        print()
        for name, scan in rates.items():
            print(
                f"  {name:<16} succ {scan.successes}/{scan.attempts} "
                f"({scan.success_rate * 100:.4f}%), det {scan.detections}"
            )

    def test_stacking_monotone(self, rates):
        assert rates["all"].success_rate <= rates["none"].success_rate
        assert rates["branches+loops"].success_rate <= rates["none"].success_rate

    def test_delay_adds_value(self, rates):
        assert rates["all"].success_rate <= rates["all_no_delay"].success_rate


class TestFaultModelRobustness:
    """The paper-shape conclusions must not hinge on the calibration seed."""

    def test_guard_ordering_robust_to_seed(self, benchmark):
        from repro.experiments.ablations import seed_robustness

        result = benchmark.pedantic(
            lambda: seed_robustness(stride=4), rounds=1, iterations=1
        )
        print()
        print(result.render())
        assert result.fraction_holding >= 0.75

    def test_guard_ordering_robust_to_band_location(self):
        from repro.experiments.ablations import band_robustness

        result = band_robustness(stride=5)
        print()
        print(result.render())
        assert result.fraction_holding >= 0.66

    def test_defense_win_robust_to_seed(self):
        from repro.experiments.ablations import defense_robustness

        result = defense_robustness(stride=8)
        print()
        print(result.render())
        assert result.fraction_holding == 1.0

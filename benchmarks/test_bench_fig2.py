"""Figure 2 benchmarks: emulated bit-flip campaigns over all 14 branches.

Regenerates all three panels (plus the XOR ablation) with the full
:math:`\\sum_k \\binom{16}{k} = 2^{16}` mask population per instruction per
model, and checks the paper's qualitative findings:

- AND (1→0) ≫ OR (0→1) in mean skip rate (paper: ≈60% vs ≈30%);
- XOR lies between the two;
- decoding 0x0000 as invalid leaves the AND rate "effectively unchanged".
"""

import time
from collections import Counter
from functools import lru_cache

import pytest

from repro.experiments.fig2 import run_figure2


@lru_cache(maxsize=None)
def _campaign():
    return run_figure2()


@pytest.fixture(scope="module")
def figure2_result():
    return _campaign()


def test_fig2_full_reproduction(benchmark):
    """The headline run: all panels, full mask population, paper checks."""
    result = benchmark.pedantic(_campaign, rounds=1, iterations=1)
    print()
    print(result.render())
    and_mean = result.mean_success("and")
    or_mean = result.mean_success("or")
    xor_mean = result.mean_success("xor")
    hardened = result.mean_success("and-0invalid")
    assert and_mean > 2 * or_mean, "paper: AND ≈2× OR"
    assert or_mean < xor_mean <= and_mean * 1.05, "paper: XOR between OR and AND"
    assert abs(and_mean - hardened) < 0.05, "paper: 0x0000-invalid leaves AND unchanged"
    assert len(result.panels["and"].instructions) == 14


def test_fig2_and_beats_or(figure2_result):
    assert figure2_result.mean_success("and") > 2 * figure2_result.mean_success("or")


def test_fig2_csv_export(figure2_result):
    csv_text = figure2_result.to_csv()
    assert "instruction,k,success_rate" in csv_text
    assert "BEQ" in csv_text


def test_fig2_snapshot_engine_speedup():
    """The snapshot engine is ≥3× faster than per-word rebuild, tallies identical.

    A single-mnemonic sweep over every corrupted 16-bit word (the unit the
    Figure 2 campaign repeats 14 × 4 times) runs once per engine,
    back-to-back in the same process so the ratio is insulated from
    machine-load drift. ``bvs`` is used because its 4-instruction setup
    prefix is the longest of the 14 branches — the pre-glitch work the
    snapshot engine runs once instead of 2^16 times.
    """
    from repro.glitchsim.harness import SnippetHarness
    from repro.glitchsim.snippets import branch_snippet

    snippet = branch_snippet("vs")
    timings = {}
    tallies = {}
    for engine in ("rebuild", "snapshot"):
        harness = SnippetHarness(snippet, engine=engine)
        start = time.perf_counter()
        tallies[engine] = Counter(
            harness.run(word).category for word in range(0x10000)
        )
        timings[engine] = time.perf_counter() - start
    assert tallies["snapshot"] == tallies["rebuild"]
    speedup = timings["rebuild"] / timings["snapshot"]
    print(
        f"\nbvs full-word sweep: rebuild {timings['rebuild']:.2f}s, "
        f"snapshot {timings['snapshot']:.2f}s, speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, f"snapshot engine speedup {speedup:.2f}x < 3x"

"""Figure 2 benchmarks: emulated bit-flip campaigns over all 14 branches.

Regenerates all three panels (plus the XOR ablation) with the full
:math:`\\sum_k \\binom{16}{k} = 2^{16}` mask population per instruction per
model, and checks the paper's qualitative findings:

- AND (1→0) ≫ OR (0→1) in mean skip rate (paper: ≈60% vs ≈30%);
- XOR lies between the two;
- decoding 0x0000 as invalid leaves the AND rate "effectively unchanged".
"""

from functools import lru_cache

import pytest

from repro.experiments.fig2 import run_figure2


@lru_cache(maxsize=None)
def _campaign():
    return run_figure2()


@pytest.fixture(scope="module")
def figure2_result():
    return _campaign()


def test_fig2_full_reproduction(benchmark):
    """The headline run: all panels, full mask population, paper checks."""
    result = benchmark.pedantic(_campaign, rounds=1, iterations=1)
    print()
    print(result.render())
    and_mean = result.mean_success("and")
    or_mean = result.mean_success("or")
    xor_mean = result.mean_success("xor")
    hardened = result.mean_success("and-0invalid")
    assert and_mean > 2 * or_mean, "paper: AND ≈2× OR"
    assert or_mean < xor_mean <= and_mean * 1.05, "paper: XOR between OR and AND"
    assert abs(and_mean - hardened) < 0.05, "paper: 0x0000-invalid leaves AND unchanged"
    assert len(result.panels["and"].instructions) == 14


def test_fig2_and_beats_or(figure2_result):
    assert figure2_result.mean_success("and") > 2 * figure2_result.mean_success("or")


def test_fig2_csv_export(figure2_result):
    csv_text = figure2_result.to_csv()
    assert "instruction,k,success_rate" in csv_text
    assert "BEQ" in csv_text

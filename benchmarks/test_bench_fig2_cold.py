"""Cold full-Figure-2 benchmark: the zero-copy hot path, end to end.

Times the *whole* Figure 2 campaign (all four panels, all 14 branch
conditions, full ``k`` range) per engine and writes the measurements as
machine-readable JSON — ``BENCH_fig2.json`` by default,
``$REPRO_BENCH_FIG2_OUT`` to override — so CI can upload the artifact
and gate on regressions.

"Cold" means what a deployed run sees after ``repro warm-tables``: an
empty outcome cache (every word is emulated) with the persisted operand
tables memmapped from disk. The lazy-decode path (no table artifact at
all) is reported separately as ``true_cold_s``. The gate asserts

- the vector engine's cold wall time stays within
  ``$REPRO_BENCH_FIG2_BUDGET`` seconds (default 3.0 — generous against
  the ~1 s measured on one core, to absorb CI machine variance),
- the vector and snapshot engines produce bit-identical panels, and
- the mean glitch-success rates match the paper's golden numbers.

The speedup field compares against a pinned 3.0 s baseline — the
pre-optimization cold vector time this suite documented — so the JSON
records how much headroom the zero-copy path keeps, not just a boolean.
"""

import json
import os
import time

import pytest

from repro.experiments.fig2 import run_figure2

#: pre-optimization cold vector-engine wall time (s), pinned for speedup
BASELINE_S = 3.0

#: paper golden numbers: mean glitch-success rate per panel
GOLDEN_RATES = {
    "and": 0.42522321,
    "or": 0.12009975,
    "xor": 0.41592407,
    "and-0invalid": 0.40345982,
}


@pytest.fixture
def warmed_root(tmp_path, monkeypatch):
    """A cache root holding freshly persisted operand tables.

    ``REPRO_CACHE_DIR`` points at it so every ``operand_table()`` call
    resolves here, and the process-wide table registry is cleared (and
    restored afterwards) so the load path genuinely runs.
    """
    from repro.emu import vector

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    saved = dict(vector._TABLES)
    vector._TABLES.clear()
    try:
        vector.warm_tables(root=tmp_path)
        yield tmp_path
    finally:
        vector._TABLES.clear()
        vector._TABLES.update(saved)


def _timed_fig2(engine: str, cache=None):
    start = time.perf_counter()
    result = run_figure2(engine=engine, cache=cache)
    return time.perf_counter() - start, result


def test_fig2_cold_times_and_budget(warmed_root):
    from repro.emu import vector

    report = {"figure": "fig2", "baseline_s": BASELINE_S, "engines": {}}

    # vector, cold: empty outcome cache + persisted operand tables
    cold_s, cold = _timed_fig2("vector")

    # vector, warm: second run against a populated disk cache
    cache_dir = warmed_root / "outcomes"
    _timed_fig2("vector", cache=str(cache_dir))
    warm_s, warm = _timed_fig2("vector", cache=str(cache_dir))

    # vector, true cold: no table artifact — the lazy-decode fallback
    saved = dict(vector._TABLES)
    vector._TABLES.clear()
    os.environ["REPRO_CACHE_DIR"] = str(warmed_root / "empty")
    try:
        true_cold_s, lazy = _timed_fig2("vector")
    finally:
        os.environ["REPRO_CACHE_DIR"] = str(warmed_root)
        vector._TABLES.clear()
        vector._TABLES.update(saved)

    # snapshot, cold: the scalar reference point (one repetition)
    snap_s, snap = _timed_fig2("snapshot")

    report["engines"]["vector"] = {
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "true_cold_s": round(true_cold_s, 3),
        "speedup_vs_baseline": round(BASELINE_S / cold_s, 2),
    }
    report["engines"]["snapshot"] = {"cold_s": round(snap_s, 3)}
    report["rates"] = {
        name: round(cold.mean_success(name), 8) for name in GOLDEN_RATES
    }

    budget = float(os.environ.get("REPRO_BENCH_FIG2_BUDGET", "3.0"))
    report["budget_s"] = budget
    out = os.environ.get("REPRO_BENCH_FIG2_OUT", "BENCH_fig2.json")
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nfig2 cold: vector {cold_s:.2f}s (warm {warm_s:.2f}s, "
          f"lazy-table {true_cold_s:.2f}s), snapshot {snap_s:.2f}s "
          f"→ {out}")

    # correctness before speed: all paths bit-identical, rates golden
    assert cold.panels == snap.panels == warm.panels == lazy.panels
    for name, rate in GOLDEN_RATES.items():
        assert cold.mean_success(name) == pytest.approx(rate, abs=5e-9)

    assert cold_s <= budget, (
        f"cold vector Figure 2 took {cold_s:.2f}s > {budget:.2f}s budget "
        f"(baseline {BASELINE_S:.1f}s) — the zero-copy hot path regressed"
    )

"""Mask-algebra benchmark: closed-form tallying vs full mask enumeration.

Runs a Figure 2 slice — the three paper panels (AND, OR, AND with 0x0000
invalid) over a subset of branches, full ``k`` range — once per tally
mode, each repetition against its own cold outcome cache, and asserts

- the ``by_k`` Counters are bit-identical between the two modes, and
- the algebra path is at least 3× faster end to end.

The speedup comes from two places: the 65,536-iteration Python mask loop
per (branch, model) disappears entirely, and the unidirectional models
execute only their reachable words (2^p submasks under AND, 2^(16-p)
supersets under OR) instead of touching the memo once per mask.
"""

import time

import pytest

from repro.glitchsim.campaign import run_branch_campaign

#: (panel, model, zero_is_invalid) — Figure 2's three paper panels
_PANELS = (
    ("and", "and", False),
    ("or", "or", False),
    ("and-0invalid", "and", True),
)

_CONDITIONS = ["eq", "ne", "vs"]


def _fig2_slice(tally: str, cache_root: str) -> dict:
    panels = {}
    for name, model, zero_is_invalid in _PANELS:
        result = run_branch_campaign(
            model,
            zero_is_invalid=zero_is_invalid,
            conditions=_CONDITIONS,
            cache=cache_root,
            tally=tally,
        )
        panels[name] = {sweep.mnemonic: sweep.by_k for sweep in result.sweeps}
    return panels


def test_maskalgebra_speedup(tmp_path):
    """``tally="algebra"`` is ≥3× faster than ``tally="enumerate"``, bit-identical.

    Each repetition gets a fresh cache directory so both modes always do
    their cold-path work; the fastest of three repetitions per mode is
    compared, insulating the ratio from machine-load spikes.
    """
    timings = {}
    tallies = {}
    for tally in ("enumerate", "algebra"):
        best = float("inf")
        for repetition in range(3):
            cache_root = tmp_path / f"{tally}-{repetition}"
            start = time.perf_counter()
            panels = _fig2_slice(tally, str(cache_root))
            best = min(best, time.perf_counter() - start)
        timings[tally] = best
        tallies[tally] = panels
    assert tallies["algebra"] == tallies["enumerate"]
    speedup = timings["enumerate"] / timings["algebra"]
    print(
        f"\nfig2 slice ({'+'.join(_CONDITIONS)}, 3 panels): "
        f"enumerate {timings['enumerate']:.2f}s, algebra {timings['algebra']:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, f"mask-algebra speedup {speedup:.2f}x < 3x"


def test_maskalgebra_word_budget(tmp_path):
    """All three models together emulate exactly 2^16 unique words per branch."""
    from repro.glitchsim import branch_snippet, sweep_instruction
    from repro.exec import OutcomeCache
    from repro.obs import Observer, activate

    cache = OutcomeCache(tmp_path)
    obs = Observer()
    with activate(obs):
        for model in ("and", "or", "xor"):
            sweep_instruction(branch_snippet("eq"), model, cache=cache)
    assert obs.counters["algebra.words_emulated"] == 1 << 16
    assert obs.counters["algebra.masks_derived"] == 3 * (1 << 16)

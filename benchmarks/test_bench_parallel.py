"""Parallel-executor benchmarks: serial/parallel equality and speedup.

The equality checks are the acceptance criterion for the executor: a
Figure 2 panel sweep and a Table VI defense scan must tally identically
for any worker count. The speedup benchmark times a 4-worker Fig. 2
panel sweep against the serial run and requires >= 2x on a machine with
at least 4 cores (it skips on smaller machines, where the comparison is
meaningless).

``REPRO_BENCH_PARALLEL_KS`` overrides the flip-count slice used for the
speedup workload (comma-separated k values; the default mid-range slice
is ~24k masks per branch — large enough to dwarf process start-up).
"""

import os
import time

import pytest

from repro.firmware.loops import build_guard_firmware
from repro.glitchsim.campaign import run_branch_campaign
from repro.hw.scan import run_defense_scan

WORKERS = 4


def _speedup_ks() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_PARALLEL_KS", "5,6,7")
    return tuple(int(k) for k in raw.split(","))


def test_campaign_parallel_equality():
    serial = run_branch_campaign("and", k_values=(1, 2), workers=1)
    parallel = run_branch_campaign("and", k_values=(1, 2), workers=WORKERS)
    assert serial == parallel
    assert repr(serial) == repr(parallel)


def test_defense_scan_parallel_equality(stride):
    image = build_guard_firmware("not_a", "single")
    effective = max(stride, 8)
    serial = run_defense_scan(image, "single", stride=effective, workers=1)
    parallel = run_defense_scan(image, "single", stride=effective, workers=WORKERS)
    assert serial == parallel
    assert repr(serial) == repr(parallel)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"speedup measurement needs >= {WORKERS} cores",
)
def test_fig2_panel_parallel_speedup():
    ks = _speedup_ks()
    start = time.perf_counter()
    serial = run_branch_campaign("and", k_values=ks, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_branch_campaign("and", k_values=ks, workers=WORKERS)
    parallel_seconds = time.perf_counter() - start

    assert serial == parallel
    speedup = serial_seconds / parallel_seconds
    print(
        f"\nfig2 AND panel (k={ks}): serial {serial_seconds:.2f}s, "
        f"{WORKERS} workers {parallel_seconds:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= 2.0, f"expected >= 2x speedup with {WORKERS} workers, got {speedup:.2f}x"

"""§V-B benchmark: the optimal-parameter search.

Checks §II-B / §V-B: with a perfect trigger, the coarse-to-fine tuning
algorithm converges to parameters with a 100% (10/10) success rate for
every guard, in a bench-equivalent time comparable to the paper's 16-59
minutes.
"""

from functools import lru_cache

import pytest

from repro.experiments.param_search import run_search


@lru_cache(maxsize=None)
def _search():
    return run_search()


@pytest.fixture(scope="module")
def search_results():
    return _search()


def test_search_full_reproduction(benchmark):
    result = benchmark.pedantic(_search, rounds=1, iterations=1)
    print()
    print(result.render())
    for guard, search in result.results.items():
        assert search.found and search.confirmed_rate == 1.0, guard
        assert search.modeled_minutes < 240, (guard, search.modeled_minutes)


def test_search_render(search_results):
    print()
    print(search_results.render())


def test_search_converges_for_all_guards(search_results):
    for guard, result in search_results.results.items():
        assert result.found, guard
        assert result.confirmed_rate == 1.0


def test_search_confirmed_parameters_repeat(search_results):
    """Parameter determinism: the found point stays 100% reliable."""
    from repro.firmware.loops import build_guard_firmware
    from repro.hw.glitcher import ClockGlitcher

    for guard, result in search_results.results.items():
        glitcher = ClockGlitcher(build_guard_firmware(guard, "single"))
        for _ in range(10):
            assert glitcher.run_attempt(result.params).category == "success"


def test_search_time_in_paper_ballpark(search_results):
    """Paper: 16-59 minutes of bench time; allow a generous band."""
    for guard, result in search_results.results.items():
        assert result.modeled_minutes < 240, (guard, result.modeled_minutes)

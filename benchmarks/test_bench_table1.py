"""Table I benchmark: single-glitch scans of the three guard loops.

At stride 1 each guard sweeps 8 × 9,801 = 78,408 attempts, the paper's
population. Checks RQ2 (sub-percent upper bound), RQ3 (value ordering:
while(!a) most vulnerable, while(a) most resilient), and RQ4 (corrupted
comparator registers show the paper's residue families).
"""

from functools import lru_cache

import pytest

from repro.experiments.table1 import run_table1


@lru_cache(maxsize=None)
def _scan(stride: int):
    return run_table1(stride=stride)


@pytest.fixture(scope="module")
def table1(stride):
    return _scan(stride)


def test_table1_full_reproduction(benchmark, stride):
    result = benchmark.pedantic(lambda: _scan(stride), rounds=1, iterations=1)
    print()
    print(result.render())
    if stride <= 4:  # statistical shape needs a reasonably dense grid
        assert result.ordering_matches_paper(), "RQ3: not_a > a_ne_const > a"
        for scan in result.scans.values():
            assert 0.0 < scan.success_rate < 0.02, "RQ2: sub-percent success"
    if stride == 1:
        assert result.scans["not_a"].total_attempts == 78_408


def test_table1_population(table1, stride):
    expected = len(range(-49, 50, stride)) ** 2 * 8
    for scan in table1.scans.values():
        assert scan.total_attempts == expected


def test_table1_register_residue_families(table1):
    """RQ4: post-mortem comparator values include SP mixes and stuck patterns."""
    values = set()
    for row in table1.scans["not_a"].rows:
        values.update(row.register_values)
    sp_like = any(0x2000_0000 <= v <= 0x2000_4000 for v in values)
    pattern_like = any(v in (0x55, 0xFF, 0x08, 0x21, 0x68) for v in values)
    assert sp_like and pattern_like


def test_table1_cycle_instruction_column(table1):
    rows = table1.scans["not_a"].rows
    assert rows[0].instruction.startswith("mov r3")
    assert rows[4].instruction.startswith("cmp")
    assert rows[5].instruction.startswith("beq")


def test_table1_baseline_replay_differential(stride):
    """Baseline replay is invisible in the tallies: replay on/off rows match.

    The replayed scan rewinds the board to its captured trigger state per
    attempt; the control scan re-simulates every attempt from reset. Both
    use the default fault model, so every row — down to the post-mortem
    register-value counters — must be identical.
    """
    from repro.firmware.loops import build_guard_firmware
    from repro.hw.glitcher import ClockGlitcher
    from repro.hw.scan import run_single_glitch_scan

    guard = "not_a"
    sub = max(stride, 8)  # the differential only needs a grid subsample
    replayed = run_single_glitch_scan(guard, stride=sub)
    control = run_single_glitch_scan(
        guard, stride=sub,
        glitcher=ClockGlitcher(build_guard_firmware(guard, "single"), replay=False),
    )
    for fast_row, slow_row in zip(replayed.rows, control.rows):
        assert (
            fast_row.cycle, fast_row.attempts, fast_row.successes,
            fast_row.resets, fast_row.register_values,
        ) == (
            slow_row.cycle, slow_row.attempts, slow_row.successes,
            slow_row.resets, slow_row.register_values,
        )

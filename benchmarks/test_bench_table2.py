"""Table II benchmark: multi-glitch (two back-to-back triggers) attacks.

Checks §V-C: partial successes far outnumber full double-glitch successes,
and requiring the second glitch reduces the success probability by a
multiple (paper: 6× / 3× / 1.6×).
"""

from functools import lru_cache

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


@lru_cache(maxsize=None)
def _scan(stride: int):
    return run_table2(stride=stride)


@pytest.fixture(scope="module")
def table2(stride):
    return _scan(stride)


def test_table2_full_reproduction(benchmark, stride):
    result = benchmark.pedantic(lambda: _scan(stride), rounds=1, iterations=1)
    print()
    print(result.render())
    if stride <= 4:  # statistical shape needs a reasonably dense grid
        assert result.multi_glitch_harder_everywhere(), "§V-C: full << partial"
        singles = run_table1(stride=max(stride, 3))
        for guard, scan in result.scans.items():
            assert scan.full_rate < singles.scans[guard].success_rate, guard


def test_table2_partial_exceeds_full(table2):
    for guard, scan in table2.scans.items():
        if scan.total_partial:
            assert scan.total_full <= scan.total_partial, guard


def test_table2_reduction_factors(table2):
    """Paper: factors of 6×/3×/1.6× between (partial+full) and full."""
    for guard, scan in table2.scans.items():
        if scan.total_full:
            factor = (scan.total_partial + scan.total_full) / scan.total_full
            assert factor > 1.5, (guard, factor)

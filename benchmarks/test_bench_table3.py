"""Table III benchmark: long glitches over two subsequent loops.

Checks §V-D's findings: while(!a) — previously the most vulnerable — fares
much better under long glitches than under single glitches, while while(a)
does better under long glitches than under full multi-glitches (the
paper's 10× jump from 0.068% to 0.7%).
"""

from functools import lru_cache

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


@lru_cache(maxsize=None)
def _scan(stride: int):
    return run_table3(stride=stride)


@pytest.fixture(scope="module")
def table3(stride):
    return _scan(stride)


def test_table3_full_reproduction(benchmark, stride):
    result = benchmark.pedantic(lambda: _scan(stride), rounds=1, iterations=1)
    print()
    print(result.render())
    if stride <= 4:  # statistical shape needs a reasonably dense grid
        singles = run_table1(stride=max(stride, 3))
        multi = run_table2(stride=max(stride, 3))
        assert (
            result.scans["not_a"].success_rate < singles.scans["not_a"].success_rate
        ), "§V-D: while(!a) resists long glitches"
        assert (
            result.scans["a"].success_rate > multi.scans["a"].full_rate
        ), "§V-D: while(a) long > while(a) multi-full"


def test_table3_population(table3, stride):
    expected = len(range(-49, 50, stride)) ** 2 * 11
    for scan in table3.scans.values():
        assert scan.total_attempts == expected


def test_table3_rows_cover_10_to_20(table3):
    for scan in table3.scans.values():
        assert [row.last_cycle for row in scan.rows] == list(range(10, 21))

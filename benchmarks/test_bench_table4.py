"""Table IV benchmark: boot-time overhead of each defense.

Checks the paper's qualitative shape: random delay dominates run-time
overhead by orders of magnitude; integrity/loops/returns are near-free;
All\\Delay stays within tens of percent.
"""

from functools import lru_cache

import pytest

from repro.experiments.table4 import run_table4


@lru_cache(maxsize=None)
def _measure():
    return run_table4()


@pytest.fixture(scope="module")
def table4():
    return _measure()


def test_table4_full_reproduction(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(result.render())
    delay = result.row("Delay").increase_pct
    for defense in ("Branches", "Integrity", "Loops", "Returns"):
        assert delay > 5 * result.row(defense).increase_pct, "delay dominates"
    assert result.row("All\\Delay").increase_pct < 120


def test_table4_baseline_deterministic(table4):
    assert table4.row("None").increase_pct == 0.0


def test_table4_delay_dominates(table4):
    delay = table4.row("Delay").increase_pct
    for defense in ("Branches", "Integrity", "Loops", "Returns"):
        assert delay > 5 * table4.row(defense).increase_pct


def test_table4_cheap_defenses(table4):
    """Integrity, loops, and returns barely touch the boot path."""
    for defense in ("Integrity", "Loops", "Returns"):
        assert table4.row(defense).increase_pct < 30


def test_table4_all_no_delay_moderate(table4):
    row = table4.row("All\\Delay")
    assert row.increase_pct < 120  # paper: 19.93%


def test_table4_adjusted_below_raw_for_delay(table4):
    row = table4.row("Delay")
    assert row.adjusted_pct <= row.increase_pct
    assert row.constant > 0

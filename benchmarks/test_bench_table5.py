"""Table V benchmark: size overhead of each defense (.text/.data/.bss)."""

from functools import lru_cache

import pytest

from repro.experiments.table5 import run_table5


@lru_cache(maxsize=None)
def _measure():
    return run_table5()


@pytest.fixture(scope="module")
def table5():
    return _measure()


def test_table5_full_reproduction(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(result.render())
    base = result.sizes["None"].text
    for defense, sizes in result.sizes.items():
        if defense != "None":
            assert sizes.text > base, defense
    assert result.sizes["All"].total == max(s.total for s in result.sizes.values())


def test_table5_every_defense_adds_text(table5):
    base = table5.sizes["None"].text
    for defense, sizes in table5.sizes.items():
        if defense != "None":
            assert sizes.text > base, defense


def test_table5_all_is_largest(table5):
    all_total = table5.sizes["All"].total
    for defense, sizes in table5.sizes.items():
        assert sizes.total <= all_total, defense


def test_table5_integrity_adds_bss(table5):
    """The shadow variable lands in .bss (the far region)."""
    assert table5.sizes["Integrity"].bss > table5.sizes["None"].bss


def test_table5_returns_cheapest_instrumentation(table5):
    """Paper: return-code diversification is nearly free (0.05% total)."""
    returns_delta = table5.sizes["Returns"].total - table5.sizes["None"].total
    branches_delta = table5.sizes["Branches"].total - table5.sizes["None"].total
    assert returns_delta < branches_delta

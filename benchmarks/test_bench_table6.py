"""Table VI benchmark: defended-firmware attacks (the paper's bottom line).

At stride 1 the attempt totals match the paper exactly: 107,811 for the
single and windowed attacks (11 × 9,801) and 98,010 for the long attack
(10 × 9,801). Checks:

- the full stack eliminates (or nearly eliminates) single-glitch successes;
- every defended configuration beats the undefended baseline;
- detections occur, with the best-case scenario detecting at a high rate.
"""

from functools import lru_cache

import pytest

from repro.experiments.table6 import run_table6


@lru_cache(maxsize=None)
def _scan(stride: int):
    return run_table6(stride=stride)


@pytest.fixture(scope="module")
def table6(stride):
    return _scan(stride)


def test_table6_full_reproduction(benchmark, stride):
    result = benchmark.pedantic(lambda: _scan(stride), rounds=1, iterations=1)
    print()
    print(result.render())
    if stride <= 4:  # statistical shape needs a reasonably dense grid
        assert result.all_stack_beats_baseline()
        for scenario in ("while_not_a", "if_success"):
            scan = result.get(scenario, "all", "single")
            assert scan.success_rate < 0.0005, (scenario, scan.success_rate)
        assert sum(s.detections for s in result.results.values()) > 0
    if stride == 1:
        assert result.get("while_not_a", "all", "single").attempts == 107_811
        assert result.get("while_not_a", "all", "long").attempts == 98_010


def test_table6_population(table6, stride):
    grid = len(range(-49, 50, stride)) ** 2
    for (scenario, defense, attack), scan in table6.results.items():
        expected = {"single": 11, "windowed": 11, "long": 10}[attack] * grid
        assert scan.attempts == expected


def test_table6_best_case_detection_rate(table6):
    """if (a == SUCCESS): detections dominate the (det + succ) population."""
    scan = table6.get("if_success", "all", "single")
    if scan.detections + scan.successes:
        assert scan.detection_rate >= 0.5


def test_table6_delay_reduces_worst_case(table6):
    with_delay = table6.get("while_not_a", "all", "single")
    without = table6.get("while_not_a", "all_no_delay", "single")
    assert with_delay.success_rate <= without.success_rate

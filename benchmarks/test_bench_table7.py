"""Table VII benchmark: the qualitative defense-comparison matrix.

The matrix itself is a literature survey; what we *can* measure is whether
this reproduction's GlitchResistor actually exhibits every property its
row claims — which the check below does by hardening a sample program and
inspecting the instrumentation report.
"""

import pytest

from repro.experiments.table7 import run_table7


@pytest.fixture(scope="module")
def table7():
    return run_table7()


def test_table7_full_reproduction(benchmark):
    result = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    print()
    print(result.render())
    assert all(value == "yes" for value in result.rows["GlitchResistor"])
    claims = result.glitchresistor_claims_verified()
    assert all(claims.values()), claims


def test_table7_glitchresistor_row_is_all_yes(table7):
    assert all(value == "yes" for value in table7.rows["GlitchResistor"])


def test_table7_no_prior_work_has_all_properties(table7):
    for name, values in table7.rows.items():
        if name != "GlitchResistor":
            assert "-" in values, name


def test_table7_claims_verified_by_implementation(table7):
    claims = table7.glitchresistor_claims_verified()
    assert all(claims.values()), claims

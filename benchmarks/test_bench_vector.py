"""Vector-engine benchmark: NumPy lock-step batches vs per-word snapshot replay.

Runs a Figure 2 slice — all four corruption panels (AND, OR, XOR, AND
with 0x0000 invalid) over three branch conditions, full ``k`` range,
``tally="algebra"`` — once per engine, each repetition against its own
cold outcome cache, and asserts

- the ``by_k`` Counters are bit-identical between the two engines, and
- the vector engine is at least 5× faster end to end.

The XOR panel is included deliberately: it forces every repetition to
execute the full 2^16 unique-word population per branch, so the timing
compares the engines on identical cold workloads. The speedup comes
from decoding each unique word once into a shared operand table and
stepping all lanes of a batch through NumPy array ops, instead of
replaying the snapshot world once per word in Python.
"""

import time

import pytest

from repro.glitchsim.campaign import run_branch_campaign

#: (panel, model, zero_is_invalid) — Figure 2's panels plus XOR so each
#: cold repetition touches all 2^16 words per branch.
_PANELS = (
    ("and", "and", False),
    ("or", "or", False),
    ("xor", "xor", False),
    ("and-0invalid", "and", True),
)

_CONDITIONS = ["eq", "ne", "vs"]


def _fig2_slice(engine: str) -> dict:
    panels = {}
    for name, model, zero_is_invalid in _PANELS:
        result = run_branch_campaign(
            model,
            zero_is_invalid=zero_is_invalid,
            conditions=_CONDITIONS,
            cache=None,  # no disk cache: every repetition is fully cold
            engine=engine,
            tally="algebra",
        )
        panels[name] = {sweep.mnemonic: sweep.by_k for sweep in result.sweeps}
    return panels


def test_vector_speedup():
    """``engine="vector"`` is ≥5× faster than ``engine="snapshot"``, bit-identical.

    No disk cache is attached, so every repetition does its full cold
    emulation workload and the timing compares engines rather than
    filesystem writes; the fastest of three repetitions per engine is
    compared, insulating the ratio from machine-load spikes. (The
    process-wide operand table survives across repetitions for the
    vector engine, exactly as it does across campaign panels in a real
    run.)
    """
    timings = {}
    tallies = {}
    for engine in ("snapshot", "vector"):
        best = float("inf")
        for _repetition in range(3):
            start = time.perf_counter()
            panels = _fig2_slice(engine)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
        tallies[engine] = panels
    assert tallies["vector"] == tallies["snapshot"]
    speedup = timings["snapshot"] / timings["vector"]
    print(
        f"\nfig2 slice ({'+'.join(_CONDITIONS)}, 4 panels): "
        f"snapshot {timings['snapshot']:.2f}s, vector {timings['vector']:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 5.0, f"vector-engine speedup {speedup:.2f}x < 5x"


def test_vector_executes_identical_word_population(tmp_path):
    """Both engines emulate exactly the same unique words for a sweep."""
    from repro.exec import OutcomeCache
    from repro.glitchsim import branch_snippet, sweep_instruction
    from repro.obs import Observer, activate

    counts = {}
    for engine in ("snapshot", "vector"):
        cache = OutcomeCache(tmp_path / engine)
        obs = Observer()
        with activate(obs):
            for model in ("and", "or", "xor"):
                sweep_instruction(
                    branch_snippet("eq"), model, cache=cache, engine=engine
                )
        counts[engine] = obs.counters["algebra.words_emulated"]
    assert counts["vector"] == counts["snapshot"] == 1 << 16

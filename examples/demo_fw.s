; demo_fw.s — conditional-guard demo firmware for whole-image campaigns.
;
; A miniature secure-boot flow with six glitchable guards: a checksum
; loop, an authentication comparison, a privilege gate, a retry-limit
; loop, an underflow check, and a bounds check.  Assemble and campaign:
;
;   repro assemble examples/demo_fw.s -o demo_fw.hex
;   repro discover demo_fw.hex
;   repro campaign --image demo_fw.hex --top 5
;
; The MAGIC constant is chosen so neither of its literal-pool halfwords
; lands in 0xD000-0xDDFF — the conditional-branch encoding range — which
; keeps linear site discovery exact (no pool word aliases as code).

.equ MAGIC, 0x1A2B3C4D

_start:
    movs r0, #0
    movs r1, #4
sum_loop:                   ; checksum accumulation
    adds r0, r0, #1
    cmp r0, r1
    bne sum_loop            ; site 1: loop guard (backward bne)
    ldr r2, =MAGIC
    ldr r3, =MAGIC
    cmp r2, r3
    bne reject              ; site 2: authentication check (forward bne)
    movs r4, #1
    b gate
reject:
    movs r4, #0
gate:
    cmp r4, #1
    beq allow               ; site 3: privilege gate (forward beq)
fail:
    movs r5, #0
    b park
allow:
    movs r5, #7
retry_loop:
    subs r5, r5, #1
    bgt retry_loop          ; site 4: retry limit (backward bgt)
    cmp r5, #0
    blt fail                ; site 5: underflow check (backward blt)
    cmp r0, r1
    bhs park                ; site 6: bounds check (forward bcs)
    movs r6, #1
park:
    bkpt #0

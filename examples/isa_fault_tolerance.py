#!/usr/bin/env python3
"""Scenario: auditing an ISA's fault tolerance (RQ1, Figure 2).

The emulation framework answers "how likely is a random bit flip to skip
this instruction?" for any Thumb conditional branch — the question a chip
or toolchain designer would ask before trusting an encoding. This example
sweeps a subset of branches under all three flip models, prints the Figure
2-style breakdown, tests the paper's hypothesised ISA hardening tweak
(decode 0x0000 as invalid), and writes the full series to CSV.

Run:  python examples/isa_fault_tolerance.py [out.csv]
"""

import sys

from repro.experiments.fig2 import run_figure2
from repro.glitchsim import run_branch_campaign, sweep_instruction, branch_snippet


def per_k_profile() -> None:
    """How the skip probability grows with the number of flipped bits."""
    print("Skip probability of `beq` vs number of 1→0 flips (AND model):")
    sweep = sweep_instruction(branch_snippet("eq"), "and")
    for k in range(0, 17, 2):
        rate = sweep.success_rate(k)
        bar = "#" * round(rate * 40)
        print(f"  k={k:<2} {rate * 100:6.2f}% |{bar}")
    print()


def model_comparison() -> None:
    print("Mean skip rate over sampled branches, per flip model:")
    for model in ("and", "xor", "or"):
        campaign = run_branch_campaign(model, conditions=["eq", "ne", "ge", "lt"])
        mean = sum(s.success_rate() for s in campaign.sweeps) / len(campaign.sweeps)
        print(f"  {model.upper():<4} {mean * 100:6.2f}%")
    print()


def hardened_isa_hypothesis() -> None:
    print("Paper's hypothesis: does decoding 0x0000 as invalid help? (Fig 2c)")
    normal = run_branch_campaign("and", conditions=["eq", "ne"])
    hardened = run_branch_campaign("and", zero_is_invalid=True, conditions=["eq", "ne"])
    for plain, tweaked in zip(normal.sweeps, hardened.sweeps):
        print(f"  {plain.mnemonic}: {plain.success_rate() * 100:.2f}% -> "
              f"{tweaked.success_rate() * 100:.2f}%  (effectively unchanged)")
    print()


def export_csv(path: str) -> None:
    print(f"Running the full Figure 2 campaign and writing {path} ...")
    result = run_figure2()
    with open(path, "w") as handle:
        handle.write(result.to_csv())
    print(f"wrote {path}")


def main() -> None:
    per_k_profile()
    model_comparison()
    hardened_isa_hypothesis()
    if len(sys.argv) > 1:
        export_csv(sys.argv[1])
    else:
        print("(pass an output path to export the full Figure 2 series as CSV)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: the attacker's tuning phase (§II-B, §V-B).

Every real glitching attack starts with a parameter search: scan the
(clock-cycle, width, offset) space with a wide glitch, then refine around
hits until a set of parameters works 10 times out of 10. This example runs
that algorithm against all three Section V guard loops, prints the
susceptibility landscape, and converts attempt counts into bench-equivalent
minutes using the paper's observed throughput.

Run:  python examples/parameter_tuning.py
"""

from repro.firmware.loops import GUARD_KINDS, build_guard_firmware, guard_descriptor
from repro.hw.clock import GlitchParams
from repro.hw.faults import FaultModel
from repro.hw.glitcher import ClockGlitcher
from repro.hw.search import ParameterSearch


def susceptibility_map() -> None:
    """ASCII heat map of the fault model's (width, offset) landscape."""
    print("Susceptibility landscape (width → rows, offset → columns):")
    print("  '.' inert   '+' fault band   'X' crash halo\n")
    model = FaultModel()
    for width in range(-48, 49, 8):
        row = []
        for offset in range(-48, 49, 4):
            fault = model.fault_probability(width, offset)
            crash = model.crash_probability(width, offset)
            if fault > 0.25:
                row.append("+")
            elif crash > 0.25:
                row.append("X")
            else:
                row.append(".")
        print(f"  width {width:+3d}%  {''.join(row)}")
    print()


def tune(guard: str) -> None:
    descriptor = guard_descriptor(guard)
    print(f"--- tuning against {descriptor.description} ---")
    search = ParameterSearch(guard, coarse_stride=5)
    result = search.run()
    for line in result.history[:3]:
        print(f"  {line}")
    if not result.found:
        print("  search did not converge\n")
        return
    print(f"  converged: {result.params}")
    print(f"  attempts: {result.attempts} ({result.successes} successful)")
    print(f"  bench-equivalent time: {result.modeled_minutes:.1f} minutes "
          f"(paper: 16-59 min)")

    # prove the determinism the tuning phase relies on: 10/10 repeats
    glitcher = ClockGlitcher(build_guard_firmware(guard, "single"))
    wins = sum(
        glitcher.run_attempt(result.params).category == "success" for _ in range(10)
    )
    print(f"  re-verification: {wins}/10 repeats succeed\n")


def main() -> None:
    susceptibility_map()
    for guard in GUARD_KINDS:
        tune(guard)


if __name__ == "__main__":
    main()

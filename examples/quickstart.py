#!/usr/bin/env python3
"""Quickstart: the three layers of the reproduction in ~60 lines each.

1. Emulate a bit-flip glitch on a Thumb conditional branch (Section IV).
2. Fire a clock glitch at a guard loop on the simulated MCU (Section V).
3. Harden a C program with GlitchResistor and run it (Section VI).

Run:  python examples/quickstart.py
"""

from repro.glitchsim import SnippetHarness, branch_snippet
from repro.firmware.loops import build_guard_firmware
from repro.hw.clock import GlitchParams
from repro.hw.glitcher import ClockGlitcher
from repro.hw.mcu import Board
from repro.isa.disassembler import disassemble_one
from repro.resistor import ResistorConfig, harden


def emulated_bit_flip() -> None:
    print("=" * 70)
    print("1. Emulated glitch: AND-flip bits out of a `beq` (Section IV)")
    print("=" * 70)
    snippet = branch_snippet("eq")
    harness = SnippetHarness(snippet)
    print(f"target instruction: {disassemble_one(snippet.target_word)} "
          f"({snippet.target_word:#06x})")
    for mask in (0x0000, 0x1000, 0xD000, 0xFFFF):
        corrupted = snippet.target_word & ~mask & 0xFFFF
        outcome = harness.run(corrupted)
        print(f"  clear {mask:#06x} -> {disassemble_one(corrupted):<32} "
              f"{outcome.category}")
    print()


def clock_glitch_attack() -> None:
    print("=" * 70)
    print("2. Clock glitch against while(!a) on the simulated MCU (Section V)")
    print("=" * 70)
    firmware = build_guard_firmware("not_a", "single")
    glitcher = ClockGlitcher(firmware)
    baseline = glitcher.run_unglitched(max_cycles=200)
    print(f"unglitched run: {baseline.category} (the loop never exits)")

    successes = []
    for cycle in range(8):
        for width in range(10, 35, 2):
            for offset in range(-25, 5, 2):
                result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
                if result.succeeded:
                    successes.append((cycle, width, offset, result.registers[3]))
    print(f"found {len(successes)} successful glitches in a coarse scan; first 5:")
    for cycle, width, offset, r3 in successes[:5]:
        print(f"  cycle={cycle} width={width}% offset={offset}%  ->  loop "
              f"escaped, R3={r3:#x}")
    print()


def harden_and_run() -> None:
    print("=" * 70)
    print("3. GlitchResistor: harden a PIN check and run it (Section VI)")
    print("=" * 70)
    source = """
    enum Result { GRANTED, DENIED };

    int check_pin(int pin) {
        if (pin == 1234) { return GRANTED; }
        return DENIED;
    }

    int main(void) {
        if (check_pin(1234) == GRANTED) { return 1; }
        return 0;
    }
    """
    hardened = harden(source, ResistorConfig.all())
    print(hardened.report.render())
    board = Board(hardened.image)
    reason = board.run(1_000_000)
    print(f"\ndefended firmware ran on the simulated MCU: {reason}, "
          f"main() returned {board.cpu.regs[0]}")
    print(f"image: {hardened.sizes.text} text + {hardened.sizes.data} data "
          f"+ {hardened.sizes.bss} bss bytes")


if __name__ == "__main__":
    emulated_bit_flip()
    clock_glitch_attack()
    harden_and_run()

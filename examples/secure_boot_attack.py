#!/usr/bin/env python3
"""Scenario: glitching a secure-boot signature check, then defending it.

The paper's motivating attack class (§I, §II-A): a bootloader checks a
firmware signature and refuses to boot on mismatch; a well-timed glitch
skips the check. This example builds that bootloader in MiniC, tunes a
clock glitch against it with the §V-B search algorithm, then rebuilds it
with GlitchResistor and re-runs the attack campaign.

Run:  python examples/secure_boot_attack.py
"""

from repro.hw.clock import GlitchParams, WIDTH_RANGE, OFFSET_RANGE
from repro.hw.glitcher import ClockGlitcher
from repro.hw.mcu import TRIGGER_ADDRESS
from repro.resistor import ResistorConfig, harden

BOOTLOADER_SOURCE = f"""
enum BootStatus {{ BOOT_OK, BOOT_BAD_SIGNATURE }};

// the "signature" the attacker cannot forge: stored vs computed digests
unsigned int stored_digest = 0xD3B9AEC6;
unsigned int computed_digest = 0xE7D25763;   // tampered firmware!

void win(void) {{
    // attacker goal: reach the "boot the firmware" path
    for (;;) {{ }}
}}

int verify_signature(void) {{
    if (stored_digest == computed_digest) {{
        return BOOT_OK;
    }}
    return BOOT_BAD_SIGNATURE;
}}

int main(void) {{
    *(volatile unsigned int *)0x{TRIGGER_ADDRESS:08X} = 1;
    if (verify_signature() == BOOT_OK) {{
        win();
    }}
    for (;;) {{ }}   // refuse to boot
    return 0;
}}
"""


def attack(image, label: str, budget_cycles: int = 20) -> None:
    glitcher = ClockGlitcher(
        image,
        detect_symbol="gr_detected" if "gr_detected" in image.symbols else None,
    )
    stats = {"success": 0, "detected": 0, "reset": 0, "no_effect": 0, "partial": 0}
    attempts = 0
    first_success = None
    for cycle in range(budget_cycles):
        for width in WIDTH_RANGE[::3]:
            for offset in OFFSET_RANGE[::3]:
                result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
                stats[result.category] += 1
                attempts += 1
                if result.succeeded and first_success is None:
                    first_success = result.params
    print(f"{label}:")
    print(f"  attempts {attempts}: {stats}")
    rate = stats["success"] / attempts
    print(f"  success rate {rate * 100:.4f}%", end="")
    if stats["detected"] + stats["success"]:
        detection = stats["detected"] / (stats["detected"] + stats["success"])
        print(f", detection rate {detection * 100:.1f}%", end="")
    if first_success:
        print(f"\n  first working glitch: {first_success}", end="")
    print("\n")


def main() -> None:
    print("Tampered firmware: stored digest != computed digest.")
    print("Attacker: skip the signature comparison with a clock glitch.\n")

    undefended = harden(BOOTLOADER_SOURCE, ResistorConfig.none())
    attack(undefended.image, "UNDEFENDED bootloader")

    defended = harden(BOOTLOADER_SOURCE, ResistorConfig.all())
    print(defended.report.render())
    print()
    attack(defended.image, "DEFENDED bootloader (GlitchResistor, all defenses)")

    no_delay = harden(BOOTLOADER_SOURCE, ResistorConfig.all_but_delay())
    attack(no_delay.image, "DEFENDED bootloader (all defenses except random delay)")


if __name__ == "__main__":
    main()

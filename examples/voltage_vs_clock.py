#!/usr/bin/env python3
"""Scenario: choosing an attack technique — clock vs voltage glitching.

§II calls voltage and clock glitching "the most common glitching
techniques, due to their relatively low cost and their effectiveness", and
§V-C points out the asymmetry that matters for defenses: a voltage
glitcher's injection capacitor needs time to recharge, so redundant-check
defenses (which force the attacker to glitch twice in rapid succession)
are categorically stronger against voltage attackers.

This example runs the same attack campaign against the same target with
both glitchers and shows that asymmetry directly.

Run:  python examples/voltage_vs_clock.py
"""

from collections import Counter

from repro.firmware.loops import build_guard_firmware
from repro.hw.clock import GlitchParams
from repro.hw.glitcher import ClockGlitcher
from repro.hw.voltage import VoltageGlitchParams, VoltageGlitcher


def campaign_clock(firmware, expected_triggers: int, stride: int = 3) -> Counter:
    glitcher = ClockGlitcher(firmware, expected_triggers=expected_triggers)
    tally: Counter = Counter()
    for cycle in range(8):
        for width in range(-49, 50, stride):
            for offset in range(-49, 50, stride):
                tally[glitcher.run_attempt(GlitchParams(cycle, width, offset)).category] += 1
    return tally


def campaign_voltage(firmware, expected_triggers: int, stride: int = 3) -> Counter:
    glitcher = VoltageGlitcher(firmware, expected_triggers=expected_triggers)
    tally: Counter = Counter()
    for cycle in range(8):
        for dip in range(-49, 50, stride):
            for duration in range(-49, 50, stride):
                tally[glitcher.run_attempt(VoltageGlitchParams(cycle, dip, duration)).category] += 1
    return tally


def show(label: str, tally: Counter) -> None:
    attempts = sum(tally.values())
    print(f"{label}  ({attempts} attempts)")
    for category in ("success", "partial", "detected", "reset", "no_effect"):
        if tally.get(category):
            print(f"  {category:<10} {tally[category]:>6}  "
                  f"({tally[category] / attempts * 100:.4f}%)")
    print()


def main() -> None:
    print("Target 1: single while(!a) guard — one glitch is enough\n")
    single = build_guard_firmware("not_a", "single")
    show("clock glitcher  ", campaign_clock(single, expected_triggers=1))
    show("voltage glitcher", campaign_voltage(single, expected_triggers=1))

    print("Target 2: DOUBLE guard (two back-to-back loops) — the redundant-")
    print("check defense pattern; success needs two glitches in succession\n")
    double = build_guard_firmware("not_a", "double")
    clock = campaign_clock(double, expected_triggers=2)
    voltage = campaign_voltage(double, expected_triggers=2)
    show("clock glitcher  ", clock)
    show("voltage glitcher", voltage)

    print("Takeaway:")
    print(f"  clock full multi-glitch successes:   {clock.get('success', 0)}")
    print(f"  voltage full multi-glitch successes: {voltage.get('success', 0)}")
    print("  The capacitor-recharge constraint forbids two bites in rapid")
    print("  succession, so the voltage attacker's only full successes are")
    print("  single corruptions that persistently poison state for both")
    print("  checks (e.g. an ldrb→strb bit flip overwriting the guarded")
    print("  variable in memory) — exactly why the paper's redundancy")
    print("  defenses are stronger against voltage than clock attackers.")


if __name__ == "__main__":
    main()

"""Reproduction of "Glitching Demystified" (DSN 2021).

Subpackages:

- :mod:`repro.isa` — Thumb-16 assembler/disassembler/encoder/decoder.
- :mod:`repro.emu` — architectural CPU emulator (Unicorn substitute).
- :mod:`repro.glitchsim` — Section IV bit-flip emulation campaigns (Figure 2).
- :mod:`repro.hw` — clock-glitching MCU simulator (ChipWhisperer substitute,
  Section V, Tables I-III).
- :mod:`repro.codes` — GF(256) / Reed-Solomon constant diversification.
- :mod:`repro.compiler` — the MiniC compiler (LLVM substitute).
- :mod:`repro.resistor` — GlitchResistor: the paper's defense tool.
- :mod:`repro.firmware` — MiniC/assembly firmware used by the evaluation.
- :mod:`repro.experiments` — drivers reproducing every table and figure.
"""

__version__ = "1.0.0"

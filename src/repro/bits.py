"""Bit-manipulation utilities shared across the ISA, emulator, and glitch models.

Everything here operates on plain Python integers interpreted as fixed-width
unsigned words; helpers exist to convert to/from two's-complement signed
values because ARM Thumb immediates and branch offsets are signed.
"""

from __future__ import annotations

from typing import Iterator


def mask(width: int) -> int:
    """Return a bitmask of ``width`` ones, e.g. ``mask(16) == 0xFFFF``."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (unsigned)."""
    return value & mask(width)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the inclusive bit-field ``value[high:low]``.

    ``bits(0b110100, 5, 3) == 0b110``.
    """
    if high < low:
        raise ValueError(f"bit range high ({high}) < low ({low})")
    return (value >> low) & mask(high - low + 1)


def set_bits(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with the inclusive field ``[high:low]`` replaced by ``field``."""
    width = high - low + 1
    if field != field & mask(width):
        raise ValueError(f"field {field:#x} does not fit in {width} bits")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value = truncate(value, width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_unsigned(value: int, width: int) -> int:
    """Convert a possibly-negative Python int to its ``width``-bit unsigned form."""
    return value & mask(width)


if hasattr(int, "bit_count"):  # Python >= 3.10: one CPython opcode

    def popcount(value: int) -> int:
        """Number of set bits (Hamming weight)."""
        return value.bit_count()

    def hamming_distance(a: int, b: int) -> int:
        """Number of differing bits between ``a`` and ``b``."""
        return (a ^ b).bit_count()

else:  # pragma: no cover - exercised only on pre-3.10 interpreters

    def popcount(value: int) -> int:
        """Number of set bits (Hamming weight)."""
        count = 0
        while value:
            value &= value - 1  # clear the lowest set bit (Kernighan)
            count += 1
        return count

    def hamming_distance(a: int, b: int) -> int:
        """Number of differing bits between ``a`` and ``b``."""
        return popcount(a ^ b)


def hamming_weight(value: int) -> int:
    """Alias of :func:`popcount`, matching the paper's terminology."""
    return popcount(value)


def rotate_right(value: int, amount: int, width: int = 32) -> int:
    """Rotate ``value`` right by ``amount`` within ``width`` bits."""
    amount %= width
    value = truncate(value, width)
    if amount == 0:
        return value
    return truncate((value >> amount) | (value << (width - amount)), width)


def bit_positions(value: int) -> list[int]:
    """Indices of the set bits of ``value``, lowest first."""
    positions = []
    index = 0
    while value:
        if value & 1:
            positions.append(index)
        value >>= 1
        index += 1
    return positions


def from_bit_positions(positions: Iterator[int] | list[int] | tuple[int, ...]) -> int:
    """Inverse of :func:`bit_positions`."""
    value = 0
    for position in positions:
        value |= 1 << position
    return value


def iter_masks(width: int, k: int) -> Iterator[int]:
    """Yield every ``width``-bit mask with exactly ``k`` bits set.

    This enumerates the paper's :math:`\\binom{n}{k}` bit masks for a given
    flip count ``k`` (Section IV). Masks are yielded in **ascending numeric
    order**, starting at ``(1 << k) - 1`` and ending at the mask whose ``k``
    set bits occupy the top of the word — the order Gosper's hack produces,
    and the contract ``tests/test_bits.py`` pins. (Campaign tallies are
    order-independent Counters, so the order only matters to direct
    consumers of this iterator.)

    The enumeration itself is Gosper's hack: the next mask is derived from
    the previous one with a handful of arithmetic ops instead of
    materialising a bit-position tuple per mask.
    """
    if k < 0 or k > width:
        return
    if k == 0:
        yield 0
        return
    limit = 1 << width
    value = (1 << k) - 1
    while value < limit:
        yield value
        low = value & -value  # lowest set bit
        ripple = value + low  # move the lowest run's top bit up one
        value = (((ripple ^ value) >> 2) // low) | ripple  # refill the bottom


def iter_all_masks(width: int) -> Iterator[tuple[int, int]]:
    """Yield ``(k, mask)`` for every mask of every popcount ``k`` in ``0..width``."""
    for k in range(width + 1):
        for m in iter_masks(width, k):
            yield k, m


def apply_and_flip(word: int, flip_mask: int, width: int) -> int:
    """Apply a 1→0 (AND-model) glitch: clear the bits selected by ``flip_mask``."""
    return word & ~flip_mask & mask(width)


def apply_or_flip(word: int, flip_mask: int, width: int) -> int:
    """Apply a 0→1 (OR-model) glitch: set the bits selected by ``flip_mask``."""
    return (word | flip_mask) & mask(width)


def apply_xor_flip(word: int, flip_mask: int, width: int) -> int:
    """Apply a bidirectional (XOR-model) glitch: toggle the selected bits."""
    return (word ^ flip_mask) & mask(width)


FLIP_MODELS = {
    "and": apply_and_flip,
    "or": apply_or_flip,
    "xor": apply_xor_flip,
}


def apply_flip(word: int, flip_mask: int, width: int, model: str) -> int:
    """Apply a named flip model (``"and"``, ``"or"``, or ``"xor"``)."""
    try:
        func = FLIP_MODELS[model]
    except KeyError:
        raise ValueError(f"unknown flip model {model!r}; expected one of {sorted(FLIP_MODELS)}") from None
    return func(word, flip_mask, width)


def halfwords_to_bytes(words: list[int] | tuple[int, ...]) -> bytes:
    """Pack 16-bit halfwords little-endian, as Thumb code is stored in flash."""
    out = bytearray()
    for word in words:
        if word != word & 0xFFFF:
            raise ValueError(f"halfword out of range: {word:#x}")
        out.append(word & 0xFF)
        out.append((word >> 8) & 0xFF)
    return bytes(out)


def bytes_to_halfwords(data: bytes) -> list[int]:
    """Unpack little-endian bytes into 16-bit halfwords."""
    if len(data) % 2:
        raise ValueError("byte string length must be even to form halfwords")
    return [data[i] | (data[i + 1] << 8) for i in range(0, len(data), 2)]

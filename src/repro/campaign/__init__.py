"""Whole-image glitch campaigns: site discovery, in-situ sweeps, ranking.

The binary-level pipeline (ROADMAP item 4, following ARMORY):

1. load a firmware image (:mod:`repro.firmware.image`);
2. :func:`discover_sites` — decode every conditional branch and guard
   structure (:mod:`repro.campaign.sites`);
3. sweep each site in situ under the AND/OR/XOR flip models with
   :class:`SiteHarness` (:mod:`repro.campaign.harness`), reusing the mask
   algebra, the vector engine, and shared cache shards;
4. rank sites by exploitability — the fraction of reachable masks whose
   outcome is *success* (:mod:`repro.campaign.image_campaign`).

Surfaced on the CLI as ``repro discover <image>`` and
``repro campaign --image <image> [--top N]``.
"""

from repro.campaign.sites import BranchSite, DISCOVERY_STRATEGIES, discover_sites
from repro.campaign.harness import SiteHarness
from repro.campaign.image_campaign import (
    DEFAULT_MODELS,
    ImageCampaignResult,
    RankedSite,
    SiteSweep,
    run_image_campaign,
    sweep_site,
)

__all__ = [
    "BranchSite",
    "DISCOVERY_STRATEGIES",
    "discover_sites",
    "SiteHarness",
    "DEFAULT_MODELS",
    "SiteSweep",
    "RankedSite",
    "ImageCampaignResult",
    "sweep_site",
    "run_image_campaign",
]

"""Execute one discovered branch site in situ and classify the outcome.

Unlike :class:`repro.glitchsim.harness.SnippetHarness`, which synthesises
a marker-block snippet per condition, a :class:`SiteHarness` runs the
*whole firmware image* with the program counter parked at the site and
the flags pre-set so the pristine branch is **taken** (the paper's attack
model: the guard holds, the attacker wants the fall-through).  The
classification is positional rather than marker-based:

- ``success`` — execution reached the fall-through address (the branch
  was suppressed: the glitch worked);
- ``no_effect`` — execution reached the architectural taken target;
- fault categories (``invalid_instruction``/``bad_fetch``/``bad_read``)
  exactly as in the snippet harness;
- ``failed`` — halted or still running without reaching either edge
  within the step budget.

Both edges are registered as stop addresses, mirroring the snippet
harness's marker-stop semantics (a stop only classifies with ≥ 2 budget
steps remaining) so the snapshot, rebuild, and vector engines stay
bit-identical — the differential sweep in tests/test_image_campaign.py
pins this.

The disk-cache panel is ``site-<image digest>-<address>``: one shard per
site, shared by all three flip models and every re-run of the image.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.emu import CPU, Memory
from repro.emu.vector import (
    ST_BAD_FETCH,
    ST_BAD_READ,
    ST_FAILED,
    ST_HALTED,
    ST_INVALID,
    ST_LIMIT,
    ST_STOPPED,
)
from repro.errors import (
    AlignmentFault,
    BadFetch,
    BadRead,
    BadWrite,
    EmulationFault,
    InvalidInstruction,
)
from repro.exec.cache import CATEGORY_CODES
from repro.firmware.image import FirmwareImage
from repro.glitchsim.harness import (
    _OUTCOME_LIMIT,
    _OUTCOME_NO_EFFECT,
    _OUTCOME_SUCCESS,
    _SnapshotWorld,
    _STEP_LIMIT,
    Outcome,
    WordHarness,
)
from repro.glitchsim.snippets import RAM_BASE, RAM_SIZE
from repro.isa.conditions import flags_where_taken

from repro.campaign.sites import BranchSite

_OUTCOME_NO_EDGE = Outcome("failed", "halted before reaching either branch edge")


class SiteHarness(WordHarness):
    """Classify corrupted words at one :class:`BranchSite` of an image.

    The image is mapped read-only/executable at its base, RAM at the
    snippet world's ``0x2000_0000``; registers start zeroed (SP at the
    top of RAM) and the flags satisfy the site's condition, so the
    pristine word branches to ``site.taken`` (``no_effect``).  See the
    module docstring for the outcome semantics and
    :class:`repro.glitchsim.harness.WordHarness` for caching/engines.
    """

    def __init__(
        self,
        image: FirmwareImage,
        site: BranchSite,
        zero_is_invalid: bool = False,
        disk_cache=None,
        engine: str = "snapshot",
        vector_fallback_mnemonics=(),
    ):
        super().__init__(
            panel=f"site-{image.digest}-{site.address:08x}",
            zero_is_invalid=zero_is_invalid,
            disk_cache=disk_cache,
            engine=engine,
            vector_fallback_mnemonics=vector_fallback_mnemonics,
        )
        self.image = image
        self.site = site
        self._flash_size = max(0x400, (len(image.data) + 0x3FF) & ~0x3FF)
        self._stops = frozenset((site.fallthrough, site.taken))

    # ------------------------------------------------------------------
    # WordHarness hooks
    # ------------------------------------------------------------------

    def _build_world(self, decode_cache: Optional[dict] = None) -> tuple[Memory, CPU]:
        memory = Memory()
        memory.map("flash", self.image.base, self._flash_size,
                   writable=False, executable=True)
        memory.map("ram", RAM_BASE, RAM_SIZE)
        memory.load(self.image.base, self.image.data)
        cpu = CPU(memory, zero_is_invalid=self.zero_is_invalid)
        cpu.decode_cache = decode_cache
        cpu.pc = self.site.address
        cpu.sp = RAM_BASE + RAM_SIZE
        cpu.flags = flags_where_taken(self.site.cond)
        return memory, cpu

    def _snapshot_world(self) -> Optional[_SnapshotWorld]:
        """Build (once) the machine parked at the site — no setup prefix."""
        if self._world is not None:
            return self._world
        memory, cpu = self._build_world(decode_cache=self._decode_cache)
        flash_region = memory.region_at(self.image.base)
        self._world = _SnapshotWorld(
            memory=memory,
            cpu=cpu,
            memory_snapshot=memory.snapshot(),
            cpu_snapshot=cpu.snapshot(),
            budget=_STEP_LIMIT,
            flash_data=flash_region.data,
            flash_base=self.image.base,
            ram_base=RAM_BASE,
            slot_offset=self.site.address - self.image.base,
            target_address=self.site.address,
            pristine_word=self.site.word,
            next_after_target=memory.try_fetch_u16(self.site.address + 2),
            marker_stops=self._stops,
        )
        return self._world

    def _classify_replay(self, world: _SnapshotWorld, cpu: CPU) -> Outcome:
        return self._classify_site(cpu, world.budget)

    def _execute_rebuild(self, corrupted_word: int) -> Outcome:
        memory, cpu = self._build_world()
        flash_region = memory.region_at(self.image.base)
        offset = self.site.address - self.image.base
        flash_region.data[offset] = corrupted_word & 0xFF
        flash_region.data[offset + 1] = corrupted_word >> 8
        return self._classify_site(cpu, _STEP_LIMIT)

    def _classify_site(self, cpu: CPU, budget: int) -> Outcome:
        """Positional classification against the site's two outgoing edges.

        Mirrors :meth:`SnippetHarness._classify_replay` step accounting: a
        stop with fewer than two budget steps left resumes (without stops)
        instead of classifying, keeping all engines bit-identical.  When
        both edges coincide (a branch to its own fall-through) the
        fall-through check wins, exactly as the vector path orders it.
        """
        try:
            result = cpu.run(budget, stop_addresses=self._stops)
            if result.reason == "stop_addr":
                if budget - result.steps >= 2:
                    if result.stop_address == self.site.fallthrough:
                        return _OUTCOME_SUCCESS
                    return _OUTCOME_NO_EFFECT
                result = cpu.run(budget - result.steps)
        except InvalidInstruction as exc:
            return Outcome("invalid_instruction", str(exc))
        except BadFetch as exc:
            return Outcome("bad_fetch", str(exc))
        except (BadRead, BadWrite, AlignmentFault) as exc:
            return Outcome("bad_read", str(exc))
        except EmulationFault as exc:
            return Outcome("failed", str(exc))

        if result.reason != "halted":
            return _OUTCOME_LIMIT
        return _OUTCOME_NO_EDGE

    def _vector_codes(self, batch, world: _SnapshotWorld) -> np.ndarray:
        """Per-lane positional category codes (``0`` = scalar fallback).

        Mirrors :meth:`_classify_site`: a stopped lane is a success iff it
        stopped at the fall-through edge, otherwise it reached the taken
        edge; halted and exhausted lanes never touched an edge.  Nonzero
        values are :data:`repro.exec.cache.CATEGORY_CODES` shard codes.
        """
        status = batch.status
        stopped = status == ST_STOPPED
        success = stopped & (batch.stop_pc == self.site.fallthrough)
        return np.select(
            [
                success,
                stopped,
                status == ST_INVALID,
                status == ST_BAD_FETCH,
                status == ST_BAD_READ,
                (status == ST_HALTED) | (status == ST_LIMIT) | (status == ST_FAILED),
            ],
            [
                CATEGORY_CODES["success"],
                CATEGORY_CODES["no_effect"],
                CATEGORY_CODES["invalid_instruction"],
                CATEGORY_CODES["bad_fetch"],
                CATEGORY_CODES["bad_read"],
                CATEGORY_CODES["failed"],
            ],
            default=0,
        ).astype(np.uint8)


__all__ = ["SiteHarness"]

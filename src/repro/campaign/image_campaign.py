"""Whole-image exhaustive glitch campaigns with exploitability ranking.

Follows ARMORY's shape: point the tool at an arbitrary firmware image,
sweep every discovered branch site under every flip model, and rank the
sites by *exploitability* — the fraction of reachable masks whose outcome
is ``success`` (the guarded branch was suppressed).

The machinery is the Figure 2 campaign's, re-aimed: one work unit is one
``(site, flip model)`` sweep executed by a
:class:`repro.campaign.harness.SiteHarness` (mask algebra over unique
reachable words by default, full enumeration as the differential oracle),
fanned out by :class:`repro.exec.ParallelExecutor`, cached in per-site
:class:`repro.exec.OutcomeCache` shards shared across models and re-runs,
and checkpointed per flip model in a subdirectory of ``checkpoint_dir``
(keyed by site, so an interrupted whole-image campaign resumes with only
its missing sites).

Obs counters: ``sites.discovered`` (from :func:`discover_sites`) and
``sites.campaigned`` (one per merged site×model sweep) — identical for
any worker count and across interrupted/resumed runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.exec import (
    FailedUnit,
    OutcomeCache,
    ParallelExecutor,
    ProgressReporter,
    coerce_cache,
    open_campaign_checkpoint,
)
from repro.exec.cache import CODE_CATEGORIES
from repro.firmware.image import FirmwareImage
from repro.glitchsim.campaign import INSTRUCTION_BITS, TALLY_MODES
from repro.glitchsim.harness import OUTCOME_CATEGORIES
from repro.glitchsim.maskalgebra import reachable_words, tally_from_word_codes
from repro.bits import apply_flip, iter_masks
from repro.experiments.render import render_table
from repro.obs import Observer, activate, coerce_observer, current

from repro.campaign.harness import SiteHarness
from repro.campaign.sites import BranchSite, discover_sites

#: default flip models swept per site, in campaign order
DEFAULT_MODELS = ("and", "or", "xor")


@dataclass
class SiteSweep:
    """Aggregated outcomes for one branch site under one flip model."""

    site: BranchSite
    model: str
    zero_is_invalid: bool = False
    #: per flip-count k: Counter of outcome categories
    by_k: dict[int, Counter] = field(default_factory=dict)

    @property
    def totals(self) -> Counter:
        total: Counter = Counter()
        for counter in self.by_k.values():
            total.update(counter)
        return total

    def success_rate(self, k: int | None = None) -> float:
        """Fraction of masks classified *success* (overall, or for one ``k``)."""
        counter = self.totals if k is None else self.by_k.get(k, Counter())
        attempts = sum(counter.values())
        if attempts == 0:
            return 0.0
        return counter.get("success", 0) / attempts

    def category_fractions(self) -> dict[str, float]:
        totals = self.totals
        attempts = sum(totals.values())
        if attempts == 0:
            return {category: 0.0 for category in OUTCOME_CATEGORIES}
        return {category: totals.get(category, 0) / attempts
                for category in OUTCOME_CATEGORIES}


@dataclass(frozen=True)
class RankedSite:
    """One row of the exploitability ranking."""

    site: BranchSite
    rates: dict  # flip model -> overall success fraction
    overall: float  # mean across the campaigned flip models


@dataclass
class ImageCampaignResult:
    """Every site of one image swept under every requested flip model."""

    source: str
    digest: str
    zero_is_invalid: bool
    models: tuple[str, ...]
    sites: list[BranchSite]
    #: flip model -> SiteSweeps in site-address order
    sweeps: dict[str, list[SiteSweep]]
    failed_units: list[FailedUnit] = field(default_factory=list)

    def sweep_for(self, site_id: str, model: str) -> SiteSweep:
        for sweep in self.sweeps[model]:
            if sweep.site.site_id == site_id:
                return sweep
        raise KeyError((site_id, model))

    def ranking(self) -> list[RankedSite]:
        """Sites ordered most-exploitable first (ties broken by address)."""
        by_site: dict[str, dict[str, float]] = {}
        for model in self.models:
            for sweep in self.sweeps[model]:
                by_site.setdefault(sweep.site.site_id, {})[model] = sweep.success_rate()
        ranked = []
        for site in self.sites:
            rates = by_site.get(site.site_id, {})
            if not rates:
                continue  # every model's sweep for this site was quarantined
            overall = sum(rates.values()) / len(rates)
            ranked.append(RankedSite(site=site, rates=rates, overall=overall))
        ranked.sort(key=lambda r: (-r.overall, r.site.address))
        return ranked

    def render(self, top: int | None = None) -> str:
        """The ranked-site table (``top`` limits to the N most exploitable)."""
        ranked = self.ranking()
        shown = ranked if top is None else ranked[:top]
        headers = ["#", "address", "instr", "taken", "guard"]
        headers += [f"{model} succ" for model in self.models]
        headers += ["overall"]
        rows = []
        for rank, entry in enumerate(shown, start=1):
            site = entry.site
            row = [
                str(rank),
                f"{site.address:#010x}",
                f"{site.mnemonic} {site.taken - site.fallthrough - 2:+d}",
                f"{site.taken:#010x}",
                site.compare or "-",
            ]
            row += [f"{entry.rates.get(model, 0.0) * 100:.3f}%" for model in self.models]
            row += [f"{entry.overall * 100:.3f}%"]
            rows.append(row)
        title = (f"Exploitability ranking — {self.source} "
                 f"({len(self.sites)} sites, models: {', '.join(self.models)})")
        table = render_table(title, headers, rows)
        if top is not None and top < len(ranked):
            table += f"\n... {len(ranked) - top} more site(s) not shown"
        return table


def sweep_site(
    image: FirmwareImage,
    site: BranchSite,
    model: str,
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    cache: OutcomeCache | None = None,
    engine: str = "snapshot",
    tally: str = "algebra",
) -> SiteSweep:
    """Sweep every mask of every flip count ``k`` for one branch site.

    The exact analogue of :func:`repro.glitchsim.campaign.sweep_instruction`
    with a :class:`SiteHarness` in place of the snippet harness; emits the
    same ambient ``algebra.words_emulated``/``algebra.masks_derived``
    counters on the algebra path.
    """
    if tally not in TALLY_MODES:
        raise ValueError(f"unknown tally mode {tally!r}; expected one of {TALLY_MODES}")
    harness = SiteHarness(
        image, site, zero_is_invalid=zero_is_invalid, disk_cache=cache, engine=engine
    )
    sweep = SiteSweep(site=site, model=model, zero_is_invalid=zero_is_invalid)
    ks = k_values if k_values is not None else tuple(range(INSTRUCTION_BITS + 1))
    if tally == "algebra":
        words = reachable_words(site.word, model, INSTRUCTION_BITS, ks)
        executed_before = harness.words_executed
        unique, codes = harness.run_many_codes(words)
        sweep.by_k = tally_from_word_codes(
            site.word, model, unique, codes,
            CODE_CATEGORIES, ks, INSTRUCTION_BITS,
        )
        obs = current()
        obs.count("algebra.words_emulated", harness.words_executed - executed_before)
        obs.count(
            "algebra.masks_derived",
            sum(sum(counter.values()) for counter in sweep.by_k.values()),
        )
        return sweep
    for k in ks:
        counter: Counter = Counter()
        for mask in iter_masks(INSTRUCTION_BITS, k):
            corrupted = apply_flip(site.word, mask, INSTRUCTION_BITS, model)
            outcome = harness.run(corrupted)
            counter[outcome.category] += 1
        sweep.by_k[k] = counter
    return sweep


@dataclass(frozen=True)
class _SiteSpec:
    """Picklable work unit: one site's full sweep under one flip model."""

    image_base: int
    image_data: bytes
    image_entry: int
    site: BranchSite
    model: str
    zero_is_invalid: bool
    k_values: Optional[tuple[int, ...]]
    cache_root: Optional[str]
    engine: str = "snapshot"
    tally: str = "algebra"


def _site_unit(spec: _SiteSpec) -> SiteSweep:
    """Worker entry point: rebuild the image (and cache handle) in-process."""
    image = FirmwareImage(base=spec.image_base, data=spec.image_data,
                          entry=spec.image_entry)
    cache = OutcomeCache(spec.cache_root) if spec.cache_root is not None else None
    try:
        return sweep_site(
            image,
            spec.site,
            spec.model,
            zero_is_invalid=spec.zero_is_invalid,
            k_values=spec.k_values,
            cache=cache,
            engine=spec.engine,
            tally=spec.tally,
        )
    finally:
        # per-word outcomes already computed survive even if the sweep raised
        if cache is not None:
            cache.flush()
            obs = current()
            obs.count("cache.hits", cache.hits)
            obs.count("cache.misses", cache.misses)
            obs.count("cache.memo_hits", cache.memo_hits)


def _encode_site_sweep(sweep: SiteSweep) -> dict:
    """JSON-able checkpoint payload for one completed site sweep."""
    site = sweep.site
    return {
        "site": {
            "address": site.address,
            "word": site.word,
            "mnemonic": site.mnemonic,
            "cond": site.cond,
            "fallthrough": site.fallthrough,
            "taken": site.taken,
            "compare": site.compare,
            "compare_address": site.compare_address,
            "window": list(site.window),
        },
        "model": sweep.model,
        "zero_is_invalid": sweep.zero_is_invalid,
        "by_k": {str(k): dict(counter) for k, counter in sweep.by_k.items()},
    }


def _decode_site_sweep(payload: dict) -> SiteSweep:
    raw = dict(payload["site"])
    raw["window"] = tuple(raw["window"])
    return SiteSweep(
        site=BranchSite(**raw),
        model=payload["model"],
        zero_is_invalid=payload["zero_is_invalid"],
        by_k={int(k): Counter(counts) for k, counts in payload["by_k"].items()},
    )


def run_image_campaign(
    image: FirmwareImage,
    models: tuple[str, ...] = DEFAULT_MODELS,
    sites: list[BranchSite] | None = None,
    strategy: str = "linear",
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    workers: int = 1,
    cache: OutcomeCache | str | None = None,
    progress: ProgressReporter | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: float | None = None,
    obs: Observer | None = None,
    engine: str = "snapshot",
    tally: str = "algebra",
    chunk_size: int | None = None,
) -> ImageCampaignResult:
    """Sweep every branch site of ``image`` under every flip model.

    ``sites`` short-circuits discovery (e.g. to campaign a hand-picked
    subset); otherwise :func:`discover_sites` runs with ``strategy``.

    Fan-out, caching, checkpoint/resume, retries, timeouts, and
    observability all follow :func:`repro.glitchsim.campaign.run_branch_campaign`;
    the checkpoint lives in a per-model subdirectory of ``checkpoint_dir``
    keyed by site, with the image digest, model, and site list in the
    fingerprint, so resuming a differently-shaped campaign is a typed
    :class:`repro.exec.CheckpointMismatch` instead of silent corruption.
    ``engine``/``tally`` are deliberately absent from the fingerprint:
    tallies are bit-identical across engines and tally modes, so a resumed
    campaign may switch either freely.
    """
    obs = coerce_observer(obs)
    if sites is None:
        with activate(obs):
            sites = discover_sites(image, strategy=strategy,
                                   zero_is_invalid=zero_is_invalid)
    cache = coerce_cache(cache)
    cache_root = str(cache.root) if cache is not None else None
    ks = tuple(k_values) if k_values is not None else None
    by_id = {site.site_id: site for site in sites}

    # vector-engine workers memmap the persisted operand tables (when
    # present) before their first unit — see ``repro warm-tables``
    initializer = initargs = None
    if engine == "vector":
        from repro.emu.vector import preload_operand_tables

        initializer = preload_operand_tables
        initargs = (cache_root, (zero_is_invalid,))
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs, initializer=initializer, initargs=initargs or (),
    )

    def serial(spec: _SiteSpec) -> SiteSweep:
        # in-process: reuse the shared cache handle; activate the campaign
        # observer so ambient counters land exactly as worker envelopes do
        with activate(obs):
            return sweep_site(
                image, by_id[spec.site.site_id], spec.model,
                zero_is_invalid=spec.zero_is_invalid, k_values=spec.k_values,
                cache=cache, engine=spec.engine, tally=spec.tally,
            )

    cache_hits0 = cache.hits if cache is not None else 0
    cache_misses0 = cache.misses if cache is not None else 0
    cache_memo0 = cache.memo_hits if cache is not None else 0
    sweeps: dict[str, list[SiteSweep]] = {}
    failed_units: list[FailedUnit] = []
    try:
        with obs.trace(f"campaign.image[{image.digest}]", source=image.source,
                       models=list(models), sites=len(sites),
                       zero_is_invalid=zero_is_invalid):
            for model in models:
                specs = [
                    _SiteSpec(image.base, image.data, image.entry, site, model,
                              zero_is_invalid, ks, cache_root, engine, tally)
                    for site in sites
                ]
                checkpoint = None
                if checkpoint_dir is not None or resume:
                    import os

                    meta = {
                        "campaign": "image",
                        "digest": image.digest,
                        "model": model,
                        "zero_is_invalid": zero_is_invalid,
                        "k_values": list(ks) if ks is not None else None,
                        "sites": sorted(by_id),
                    }
                    subdir = (os.path.join(checkpoint_dir, model)
                              if checkpoint_dir is not None else None)
                    checkpoint = open_campaign_checkpoint(
                        subdir, f"image-{image.digest}", meta, resume=resume
                    )
                try:
                    model_sweeps = executor.map(
                        _site_unit,
                        specs,
                        serial_fn=serial,
                        attempts_of=lambda sweep: sum(sweep.totals.values()),
                        categories_of=lambda sweep: dict(sweep.totals),
                        checkpoint=checkpoint,
                        key_of=lambda spec: spec.site.site_id,
                        encode=_encode_site_sweep,
                        decode=_decode_site_sweep,
                    )
                finally:
                    if checkpoint is not None:
                        checkpoint.close()
                merged = [sweep for sweep in model_sweeps if sweep is not None]
                obs.count("sites.campaigned", len(merged))
                sweeps[model] = merged
                failed_units.extend(executor.failed_units)
    finally:
        # SIGINT / worker crash must not discard dirty shards
        if cache is not None:
            cache.flush()
            obs.count("cache.hits", cache.hits - cache_hits0)
            obs.count("cache.misses", cache.misses - cache_misses0)
            obs.count("cache.memo_hits", cache.memo_hits - cache_memo0)
    return ImageCampaignResult(
        source=image.source,
        digest=image.digest,
        zero_is_invalid=zero_is_invalid,
        models=tuple(models),
        sites=list(sites),
        sweeps=sweeps,
        failed_units=failed_units,
    )


__all__ = [
    "DEFAULT_MODELS",
    "SiteSweep",
    "RankedSite",
    "ImageCampaignResult",
    "sweep_site",
    "run_image_campaign",
]

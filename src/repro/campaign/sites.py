"""Automatic branch-site discovery over a whole firmware image.

A *site* is one conditional branch an attacker could glitch: its address,
condition, both outgoing edges (fall-through and taken), the guard
comparison feeding it (when one immediately precedes it), and a rendered
window of surrounding instructions for reports.  Discovery is pure
decoding — no emulation — so it scales to the 10²–10³ sites per image the
ARMORY-style whole-image campaigns target.

Two strategies:

- ``"linear"`` (default) decodes the image front to back, resynchronising
  one halfword after anything that does not decode.  Exhaustive, but data
  embedded in the image (literal pools) can alias as code — a pool
  constant whose halfword lands in ``0xD000–0xDDFF`` *is* a conditional
  branch encoding.
- ``"entry"`` walks the static control-flow graph from the image's entry
  point, following both edges of every branch and stopping at indirect or
  halting flow (``bx``, ``pop {…, pc}``, ``bkpt``, ``svc``, ``wfi``,
  ``wfe``).  It never decodes unreachable bytes, so literal pools are
  skipped — at the cost of missing code only reachable indirectly.

Every discovery emits the ambient obs counter ``sites.discovered``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidInstruction
from repro.firmware.image import FirmwareImage
from repro.isa.decoder import decode
from repro.isa.instruction import Instruction
from repro.obs import current

DISCOVERY_STRATEGIES = ("linear", "entry")

#: mnemonics after which straight-line decoding cannot continue
_FLOW_BREAKS = ("bx", "blx", "bkpt", "svc", "wfi", "wfe")


@dataclass(frozen=True)
class BranchSite:
    """One glitchable conditional branch inside a firmware image."""

    address: int
    word: int  # the pristine 16-bit encoding — the campaign's target word
    mnemonic: str  # e.g. "bne"
    cond: int  # condition number 0..13
    fallthrough: int  # address + 2: where a glitched (not-taken) branch lands
    taken: int  # address + 4 + imm: the architectural target
    compare: Optional[str] = None  # rendered guard comparison, if adjacent
    compare_address: Optional[int] = None
    window: tuple[str, ...] = ()  # rendered context lines around the site

    @property
    def site_id(self) -> str:
        """Stable checkpoint/report key — unique per image."""
        return f"{self.address:#010x}"

    def describe(self) -> str:
        guard = f"  [{self.compare}]" if self.compare else ""
        return (f"{self.address:#010x}: {self.mnemonic} -> {self.taken:#010x} "
                f"(fall-through {self.fallthrough:#010x}){guard}")


def discover_sites(
    image: FirmwareImage,
    strategy: str = "linear",
    zero_is_invalid: bool = False,
    context: int = 2,
) -> list[BranchSite]:
    """Find every conditional branch in ``image``, sorted by address.

    ``context`` is the number of halfword slots rendered on each side of a
    site into :attr:`BranchSite.window`.
    """
    if strategy not in DISCOVERY_STRATEGIES:
        raise ValueError(
            f"unknown discovery strategy {strategy!r}; "
            f"expected one of {DISCOVERY_STRATEGIES}"
        )
    if strategy == "linear":
        decoded = _decode_linear(image, zero_is_invalid)
    else:
        decoded = _decode_reachable(image, zero_is_invalid)
    sites = []
    for address in sorted(decoded):
        instr = decoded[address]
        if instr is None or not instr.is_conditional_branch:
            continue
        compare_address, compare = _guard_before(decoded, address)
        sites.append(BranchSite(
            address=address,
            word=image.word_at(address),
            mnemonic=instr.mnemonic,
            cond=instr.cond,
            fallthrough=address + 2,
            taken=address + 4 + instr.imm,
            compare=compare,
            compare_address=compare_address,
            window=_window(image, decoded, address, context),
        ))
    current().count("sites.discovered", len(sites))
    return sites


# ----------------------------------------------------------------------
# decoding strategies: address -> Instruction | None (undecodable slot)
# ----------------------------------------------------------------------

def _decode_at(image: FirmwareImage, address: int,
               zero_is_invalid: bool) -> Optional[Instruction]:
    word = image.word_at(address)
    nxt = image.word_at(address + 2) if address + 4 <= image.end else None
    try:
        return decode(word, nxt, zero_is_invalid=zero_is_invalid)
    except InvalidInstruction:
        return None


def _decode_linear(image: FirmwareImage, zero_is_invalid: bool) -> dict:
    decoded: dict[int, Optional[Instruction]] = {}
    address = image.base
    while address < image.end:
        instr = _decode_at(image, address, zero_is_invalid)
        decoded[address] = instr
        # resynchronise one halfword after an undecodable slot, like the
        # disassembler; a 32-bit bl consumes both of its halfwords
        address += 2 if instr is None else instr.size
    return decoded


def _decode_reachable(image: FirmwareImage, zero_is_invalid: bool) -> dict:
    decoded: dict[int, Optional[Instruction]] = {}
    work = [image.entry]
    while work:
        address = work.pop()
        if address in decoded:
            continue
        if not image.base <= address < image.end or (address - image.base) % 2:
            continue  # edge leaves the image (or is misaligned) — stop the walk
        instr = _decode_at(image, address, zero_is_invalid)
        decoded[address] = instr
        if instr is None:
            continue
        if instr.is_conditional_branch:
            work.append(address + 2)
            work.append(address + 4 + instr.imm)
        elif instr.mnemonic == "b":
            work.append(address + 4 + instr.imm)
        elif instr.mnemonic == "bl":
            work.append(address + 4 + instr.imm)
            work.append(address + instr.size)  # the call returns here
        elif instr.mnemonic == "blx":
            work.append(address + instr.size)  # indirect call; returns here
        elif instr.mnemonic in ("pop", "ldmia") and 15 in instr.reg_list:
            continue  # loads the PC — indirect, walk ends
        elif instr.mnemonic in _FLOW_BREAKS:
            continue
        else:
            work.append(address + instr.size)
    return decoded


# ----------------------------------------------------------------------
# site metadata
# ----------------------------------------------------------------------

def _guard_before(decoded: dict, address: int) -> tuple[Optional[int], Optional[str]]:
    """The comparison instruction directly feeding the branch, if adjacent."""
    prev = decoded.get(address - 2)
    if prev is None and address - 4 in decoded:
        candidate = decoded[address - 4]
        if candidate is not None and candidate.size == 4:
            prev = candidate
    if prev is not None and prev.is_compare:
        prev_address = address - prev.size
        return prev_address, prev.render()
    return None, None


def _window(image: FirmwareImage, decoded: dict, address: int,
            context: int) -> tuple[str, ...]:
    """Rendered listing lines around the site (undecoded slots as .hword)."""
    lines = []
    lo = max(image.base, address - 2 * context)
    hi = min(image.end, address + 2 * (context + 1))
    cursor = lo
    while cursor < hi:
        instr = decoded.get(cursor)
        if instr is None:
            lines.append(f"{cursor:#010x}: .hword {image.word_at(cursor):#06x}")
            cursor += 2
        else:
            lines.append(f"{cursor:#010x}: {instr.render()}")
            cursor += instr.size
    return tuple(lines)


__all__ = ["BranchSite", "DISCOVERY_STRATEGIES", "discover_sites"]

"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``assemble <file.s>`` — assemble Thumb source, print a hex listing
  (``-o out.hex``/``out.bin`` writes a loadable firmware image).
- ``disassemble <hex>`` — disassemble halfwords given as hex bytes.
- ``harden <file.c>`` — compile MiniC with GlitchResistor defenses and
  print the instrumentation report plus section sizes.
- ``attack <file.c>`` — harden (or not, with ``--defense none``) and run a
  strided glitch campaign against the ``win`` symbol.
- ``discover <image>`` — load a firmware image (raw or Intel HEX) and list
  every conditional branch site an attacker could glitch.
- ``campaign --image <image>`` — sweep every discovered site under the
  AND/OR/XOR flip models and print the exploitability ranking.
- ``experiment <name>`` — run one paper artifact
  (fig2 | table1 | ... | table7 | search) and print it.
- ``warm-tables`` — decode and persist the shared vector-engine operand
  tables (one build; every later run and worker memmaps them).
- ``serve`` — run the long-lived campaign service (asyncio scheduler
  with dedup, per-client slots, and streaming JSONL feeds); ``serve
  --stop`` asks a running server to drain and exit.
- ``submit`` — submit one campaign to a running server and (by default)
  wait for its tallies; ``--tail`` streams partial tallies as they land.
- ``status`` — print a running server's queue, jobs, and counters.
- ``report <events.jsonl>`` — render the timing/metrics summary of a run
  recorded with ``--trace``/``--metrics-out``.
"""

from __future__ import annotations

import argparse
import sys

from repro.resistor import ResistorConfig


def _config_from_args(args) -> ResistorConfig:
    sensitive = tuple(args.sensitive or ())
    if args.defense == "all":
        return ResistorConfig.all(sensitive=sensitive)
    if args.defense == "all-no-delay":
        return ResistorConfig.all_but_delay(sensitive=sensitive)
    if args.defense == "none":
        return ResistorConfig.none()
    return ResistorConfig.only(args.defense, sensitive=sensitive)


def cmd_assemble(args) -> int:
    from repro.isa import assemble

    with open(args.source) as handle:
        program = assemble(handle.read(), base=int(args.base, 0))
    print(f"; {len(program.code)} bytes at {program.base:#010x}")
    for address, size, text in program.listing:
        raw = program.code[address - program.base:address - program.base + size]
        print(f"{address:#010x}: {raw.hex():<12} {text.strip()}")
    for name, address in sorted(program.symbols.items(), key=lambda kv: kv[1]):
        print(f"; {name} = {address:#010x}")
    if args.output:
        from repro.firmware.image import FirmwareImage, write_image

        write_image(FirmwareImage.from_program(program, source=args.source),
                    args.output)
        print(f"; image written to {args.output}")
    return 0


def _load_cli_image(args):
    from repro.firmware.image import load_image

    base = int(args.base, 0) if args.base is not None else None
    return load_image(args.image, base=base, fmt=args.format)


def cmd_discover(args) -> int:
    from repro.campaign import discover_sites
    from repro.errors import ImageError

    try:
        image = _load_cli_image(args)
        sites = discover_sites(image, strategy=args.strategy)
    except ImageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"; {args.image}: {len(image.data)} bytes at {image.base:#010x}, "
          f"entry {image.entry:#010x}")
    print(f"; {len(sites)} conditional branch site(s) ({args.strategy} discovery)")
    for site in sites:
        print(site.describe())
    return 0


def cmd_campaign(args) -> int:
    from repro.campaign import DEFAULT_MODELS, run_image_campaign
    from repro.errors import ImageError

    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    unknown = [m for m in models if m not in DEFAULT_MODELS]
    if unknown or not models:
        print(f"error: --models must be a comma-separated subset of "
              f"{','.join(DEFAULT_MODELS)}", file=sys.stderr)
        return 1
    try:
        image = _load_cli_image(args)
    except ImageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    obs = _observer_from_args(args, "campaign-image")
    try:
        result = run_image_campaign(
            image, models=models, strategy=args.strategy,
            workers=args.workers, cache=args.cache_dir,
            progress=_progress_reporter(args),
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            retries=args.retries, unit_timeout=args.unit_timeout,
            obs=obs, engine=args.engine, tally=args.tally,
        )
    finally:
        _finish_observer(obs, args)
    print(result.render(top=args.top))
    _report_failed_units(result.failed_units)
    return 0


def cmd_disassemble(args) -> int:
    from repro.isa.disassembler import disassemble, format_listing

    data = bytes.fromhex(args.hex_bytes.replace(" ", ""))
    print(format_listing(disassemble(data, base=int(args.base, 0))))
    return 0


def cmd_harden(args) -> int:
    from repro.resistor import harden

    with open(args.source) as handle:
        source = handle.read()
    hardened = harden(source, _config_from_args(args))
    print(hardened.report.render())
    sizes = hardened.sizes
    print(f"\nsections: text={sizes.text} data={sizes.data} bss={sizes.bss} "
          f"(total {sizes.total} bytes)")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(hardened.compiled.assembly)
        print(f"assembly written to {args.output}")
    return 0


def _progress_reporter(args):
    if getattr(args, "progress", False):
        from repro.exec import console_progress

        return console_progress()
    return None


def _observer_from_args(args, label: str):
    """Build an Observer when --trace/--metrics-out asked for one, else None."""
    trace = getattr(args, "trace", False)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace and metrics_out is None:
        return None
    from repro.obs import JsonlSink, Observer, default_events_path

    path = metrics_out if metrics_out is not None else default_events_path(label)
    return Observer(sink=JsonlSink(path))


def _finish_observer(obs, args) -> None:
    """Close the event log and (with --trace) print the run summary."""
    if obs is None:
        return
    obs.close()
    print(f"event log: {obs.sink.path}", file=sys.stderr)
    if getattr(args, "trace", False):
        from repro.obs import render_report

        print(render_report(obs.events), file=sys.stderr)


def cmd_attack(args) -> int:
    from repro.hw.scan import run_defense_scan
    from repro.resistor import harden

    with open(args.source) as handle:
        source = handle.read()
    config = _config_from_args(args)
    hardened = harden(source, config)
    if "win" not in hardened.image.symbols:
        print("error: the program must define a win() function (the attack goal)",
              file=sys.stderr)
        return 1
    obs = _observer_from_args(args, f"attack-{args.attack}")
    try:
        result = run_defense_scan(
            hardened.image, args.attack,
            scenario=args.source, defense=config.describe(), stride=args.stride,
            fault_model=args.fault_model, profile=args.profile,
            workers=args.workers, progress=_progress_reporter(args),
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            retries=args.retries, unit_timeout=args.unit_timeout,
            obs=obs,
        )
    finally:
        _finish_observer(obs, args)
    print(f"attack={args.attack} defense={config.describe()} stride={args.stride}")
    print(f"  attempts:   {result.attempts}")
    print(f"  successes:  {result.successes} ({result.success_rate * 100:.4f}%)")
    print(f"  detections: {result.detections} ({result.detection_rate * 100:.1f}% "
          f"of det+succ)")
    print(f"  resets:     {result.resets}")
    _report_failed_units(result.failed_units)
    return 0


def _report_failed_units(failed_units) -> None:
    if not failed_units:
        return
    print(f"warning: {len(failed_units)} work unit(s) quarantined after "
          f"exhausting retries (tallies exclude them):", file=sys.stderr)
    for unit in failed_units:
        print(f"  {unit.spec!r}: {unit.error} ({unit.attempts} attempts)",
              file=sys.stderr)


def cmd_experiment(args) -> int:
    import repro.experiments as experiments

    name = args.name
    progress = _progress_reporter(args)
    workers = args.workers
    obs = _observer_from_args(args, f"experiment-{name}")
    robust = dict(checkpoint_dir=args.checkpoint_dir, resume=args.resume,
                  retries=args.retries, unit_timeout=args.unit_timeout, obs=obs)
    model = dict(fault_model=args.fault_model, profile=args.profile)
    try:
        if name == "fig2":
            result = experiments.run_figure2(
                workers=workers, cache=args.cache_dir, progress=progress,
                engine=args.engine, tally=args.tally, **robust
            )
        elif name == "table1":
            result = experiments.run_table1(stride=args.stride, workers=workers,
                                            progress=progress, **model, **robust)
        elif name == "table2":
            result = experiments.run_table2(stride=args.stride, workers=workers,
                                            progress=progress, **model, **robust)
        elif name == "table3":
            result = experiments.run_table3(stride=args.stride, workers=workers,
                                            progress=progress, **model, **robust)
        elif name == "table4":
            result = experiments.run_table4()
        elif name == "table5":
            result = experiments.run_table5()
        elif name == "table6":
            result = experiments.run_table6(stride=args.stride, workers=workers,
                                            progress=progress, **model, **robust)
        elif name == "table7":
            result = experiments.run_table7()
        elif name == "search":
            result = experiments.run_search(checkpoint_dir=args.checkpoint_dir,
                                            resume=args.resume, obs=obs,
                                            **model)
        else:  # pragma: no cover - argparse restricts choices
            raise ValueError(name)
    finally:
        _finish_observer(obs, args)
    print(result.render())
    return 0


def cmd_warm_tables(args) -> int:
    from repro.emu.vector import warm_tables

    for path in warm_tables(root=args.cache_dir):
        print(path)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import serve
    from repro.service.client import ServiceClient

    if args.stop:
        try:
            with ServiceClient(host=args.host, port=args.port,
                               connect_timeout=2.0) as client:
                client.shutdown(drain=not args.no_drain)
        except OSError as exc:
            print(f"error: no server at {args.host}:{args.port} ({exc})",
                  file=sys.stderr)
            return 1
        print(f"server at {args.host}:{args.port} shutting down "
              f"({'dropping queue' if args.no_drain else 'draining'})")
        return 0
    obs = _observer_from_args(args, "serve")

    def ready(host: str, port: int) -> None:
        print(f"serving on {host}:{port} (root: {args.root or 'default'})",
              file=sys.stderr)

    try:
        asyncio.run(serve(
            root=args.root, host=args.host, port=args.port,
            job_slots=args.job_slots, client_slots=args.client_slots,
            unit_workers=args.unit_workers,
            cache_max_shards=args.cache_max_shards,
            obs=obs, ready=ready,
        ))
    except KeyboardInterrupt:
        print("interrupted; checkpoints are preserved — restart to resume",
              file=sys.stderr)
    finally:
        if obs is not None and getattr(args, "trace", False):
            from repro.obs import render_report

            print(render_report(obs.events), file=sys.stderr)
    return 0


def _spec_from_args(args) -> dict:
    """Build a submission spec dict from ``repro submit`` flags."""
    spec: dict = {"kind": args.kind, "engine": args.engine, "tally": args.tally}
    if args.kind == "branch":
        spec["model"] = args.model
        if args.conditions:
            spec["conditions"] = [c.strip() for c in args.conditions.split(",")
                                  if c.strip()]
    elif args.kind == "image":
        spec["path"] = args.image
        spec["strategy"] = args.strategy
        spec["format"] = args.format
        if args.base is not None:
            spec["base"] = args.base
        if args.models:
            spec["models"] = [m.strip() for m in args.models.split(",")
                              if m.strip()]
    else:  # experiment
        spec["name"] = args.name
        spec["stride"] = args.stride
        spec["fault_model"] = args.fault_model
        spec["profile"] = args.profile
    if args.k_values:
        spec["k_values"] = [int(k) for k in args.k_values.split(",") if k.strip()]
    if args.zero_invalid:
        spec["zero_is_invalid"] = True
    return spec


def cmd_submit(args) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError, tail

    try:
        spec = _spec_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            if args.no_wait or args.tail:
                accepted = client.submit(spec, client=args.client,
                                         priority=args.priority, wait=False)
            else:
                result = client.submit(spec, client=args.client,
                                       priority=args.priority, wait=True)
                accepted = result["accepted"]
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: no server at {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1
    print(f"; job {accepted['job']} ({accepted['label']}) "
          f"{'deduped onto in-flight unit' if accepted['deduped'] else accepted['state']}",
          file=sys.stderr)
    print(f"; feed: {accepted['feed']}", file=sys.stderr)
    if args.tail:
        for record in tail(accepted["feed"]):
            print(json.dumps(record))
            if record.get("type") == "error":
                return 1
        return 0
    if args.no_wait:
        return 0
    print(json.dumps(result["tallies"], indent=2, sort_keys=True))
    return 0


def cmd_status(args) -> int:
    import json

    from repro.service.client import ServiceClient

    try:
        with ServiceClient(host=args.host, port=args.port,
                           connect_timeout=2.0) as client:
            status = client.status()
    except OSError as exc:
        print(f"error: no server at {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counters = status["metrics"]["counters"]
    gauges = status["metrics"]["gauges"]
    print(f"server {args.host}:{args.port} — root {status['root']}")
    print(f"  queued:  {status['queued']}   running: {status['running']} "
          f"(job slots: {status['job_slots']}, "
          f"client slots: {status['client_slots']})")
    print(f"  clients: {', '.join(status['active_clients']) or '-'}")
    for name in sorted(n for n in counters if n.startswith("service.")):
        print(f"  {name}: {counters[name]}")
    for name in sorted(gauges):
        print(f"  {name}: {gauges[name]}")
    if status["jobs"]:
        print("  jobs:")
        for job in status["jobs"]:
            print(f"    {job['fingerprint']}  {job['state']:<8} "
                  f"p{job['priority']}  {job['label']} "
                  f"[{', '.join(job['clients'])}]")
    return 0


def cmd_report(args) -> int:
    from repro.obs import load_events, render_report

    print(render_report(load_events(args.events)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Glitching Demystified reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("assemble", help="assemble Thumb-16 source")
    p_asm.add_argument("source")
    p_asm.add_argument("--base", default="0x08000000")
    p_asm.add_argument("--output", "-o", default=None, metavar="FILE",
                       help="also write a firmware image (.hex/.ihex → Intel "
                            "HEX, anything else → raw binary) that feeds "
                            "straight into discover/campaign")
    p_asm.set_defaults(func=cmd_assemble)

    p_dis = sub.add_parser("disassemble", help="disassemble hex bytes")
    p_dis.add_argument("hex_bytes")
    p_dis.add_argument("--base", default="0x08000000")
    p_dis.set_defaults(func=cmd_disassemble)

    defense_choices = [
        "all", "all-no-delay", "none",
        "enums", "returns", "branches", "loops", "integrity", "delay",
    ]

    p_hard = sub.add_parser("harden", help="compile MiniC with GlitchResistor")
    p_hard.add_argument("source")
    p_hard.add_argument("--defense", choices=defense_choices, default="all")
    p_hard.add_argument("--sensitive", nargs="*", metavar="GLOBAL")
    p_hard.add_argument("--output", "-o", help="write the generated assembly here")
    p_hard.set_defaults(func=cmd_harden)

    p_attack = sub.add_parser("attack", help="glitch a firmware's win() goal")
    p_attack.add_argument("source")
    p_attack.add_argument("--defense", choices=defense_choices, default="none")
    p_attack.add_argument("--sensitive", nargs="*", metavar="GLOBAL")
    p_attack.add_argument("--attack", choices=["single", "long", "windowed"],
                          default="single")
    p_attack.add_argument("--stride", type=int, default=4)
    _add_fault_model_flags(p_attack)
    p_attack.add_argument("--workers", type=int, default=1,
                          help="worker processes for the scan (0 = all cores)")
    p_attack.add_argument("--progress", action="store_true",
                          help="show attempts/sec, tallies, and ETA on stderr")
    _add_robustness_flags(p_attack)
    _add_observability_flags(p_attack)
    p_attack.set_defaults(func=cmd_attack)

    p_disc = sub.add_parser("discover",
                            help="list every glitchable branch site in an image")
    p_disc.add_argument("image", help="firmware image file (raw or Intel HEX)")
    _add_image_flags(p_disc)
    p_disc.set_defaults(func=cmd_discover)

    p_camp = sub.add_parser(
        "campaign",
        help="sweep every branch site of an image and rank by exploitability",
    )
    p_camp.add_argument("--image", required=True, metavar="FILE",
                        help="firmware image file (raw or Intel HEX) to campaign")
    _add_image_flags(p_camp)
    p_camp.add_argument("--models", default=",".join(("and", "or", "xor")),
                        metavar="LIST",
                        help="comma-separated flip models to sweep "
                             "(subset of and,or,xor; default: all three)")
    p_camp.add_argument("--top", type=int, default=None, metavar="N",
                        help="print only the N most exploitable sites")
    p_camp.add_argument("--engine", choices=["snapshot", "rebuild", "vector"],
                        default="snapshot",
                        help="per-site execution engine (as for experiment fig2)")
    p_camp.add_argument("--tally", choices=["algebra", "enumerate"],
                        default="algebra",
                        help="per-site tallying strategy (as for experiment fig2)")
    p_camp.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent outcome-cache directory; per-site "
                             "shards are shared across models and re-runs")
    p_camp.add_argument("--workers", type=int, default=1,
                        help="worker processes, one site×model sweep per unit "
                             "(0 = all cores)")
    p_camp.add_argument("--progress", action="store_true",
                        help="show attempts/sec, tallies, and ETA on stderr")
    _add_robustness_flags(p_camp)
    _add_observability_flags(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_exp = sub.add_parser("experiment", help="run one paper artifact")
    p_exp.add_argument("name", choices=[
        "fig2", "table1", "table2", "table3", "table4", "table5",
        "table6", "table7", "search",
    ])
    p_exp.add_argument("--stride", type=int, default=4)
    _add_fault_model_flags(p_exp)
    p_exp.add_argument("--workers", type=int, default=1,
                       help="worker processes for campaign/scan experiments "
                            "(0 = all cores; table4/5/7 and search are serial)")
    p_exp.add_argument("--progress", action="store_true",
                       help="show attempts/sec, tallies, and ETA on stderr")
    p_exp.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent outcome-cache directory for fig2 "
                            "(default: no disk cache)")
    p_exp.add_argument("--engine", choices=["snapshot", "rebuild", "vector"],
                       default="snapshot",
                       help="fig2 execution engine: scalar snapshot replay "
                            "(default), per-word world rebuild (oracle), or "
                            "the NumPy lock-step vector backend")
    p_exp.add_argument("--tally", choices=["algebra", "enumerate"],
                       default="algebra",
                       help="fig2 tallying strategy: closed-form mask algebra "
                            "over unique corrupted words (default) or the full "
                            "per-mask enumeration oracle")
    _add_robustness_flags(p_exp)
    _add_observability_flags(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_warm = sub.add_parser(
        "warm-tables",
        help="decode and persist the vector engine's shared operand tables",
    )
    p_warm.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache root to write the table artifacts under "
                             "(default: the REPRO_CACHE_DIR / XDG cache root "
                             "every vector run and worker loads from)")
    p_warm.set_defaults(func=cmd_warm_tables)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived campaign service (scheduler + socket server)",
    )
    _add_endpoint_flags(p_serve)
    p_serve.add_argument("--root", default=None, metavar="DIR",
                        help="service root for feeds, checkpoints, and the "
                             "shared outcome cache (default: "
                             "<cache root>/service)")
    p_serve.add_argument("--job-slots", type=int, default=2, metavar="N",
                        help="campaigns executing concurrently across all "
                             "clients (default 2)")
    p_serve.add_argument("--client-slots", type=int, default=2, metavar="N",
                        help="queued-or-running jobs one client may own at a "
                             "time; extra submissions wait behind the "
                             "client's own jobs (default 2)")
    p_serve.add_argument("--unit-workers", type=int, default=1, metavar="N",
                        help="worker processes inside each campaign "
                             "(0 = all cores)")
    p_serve.add_argument("--cache-max-shards", type=int, default=64, metavar="N",
                        help="LRU bound on in-memory outcome-cache shards per "
                             "campaign execution (evicted shards flush to "
                             "disk; default 64)")
    p_serve.add_argument("--stop", action="store_true",
                        help="ask the server at --host/--port to shut down "
                             "gracefully (drain, flush feeds/caches) and exit")
    p_serve.add_argument("--no-drain", action="store_true",
                        help="with --stop: fail queued jobs instead of "
                             "finishing them (running jobs still complete; "
                             "checkpoints survive for resubmission)")
    _add_observability_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit one campaign to a running repro serve"
    )
    _add_endpoint_flags(p_sub)
    p_sub.add_argument("--kind", choices=["branch", "image", "experiment"],
                       default="branch",
                       help="campaign kind: per-branch sweep, whole-image "
                            "campaign, or a paper experiment")
    p_sub.add_argument("--model", choices=["and", "or", "xor"], default="and",
                       help="flip model for --kind branch")
    p_sub.add_argument("--conditions", default=None, metavar="LIST",
                       help="comma-separated branch conditions for --kind "
                            "branch (eq,ne,...; default: all 14)")
    p_sub.add_argument("--image", default=None, metavar="FILE",
                       help="firmware image for --kind image")
    p_sub.add_argument("--models", default=None, metavar="LIST",
                       help="comma-separated flip models for --kind image "
                            "(default: and,or,xor)")
    p_sub.add_argument("--strategy", choices=["linear", "entry"],
                       default="linear",
                       help="site discovery strategy for --kind image")
    p_sub.add_argument("--format", choices=["auto", "raw", "ihex"],
                       default="auto",
                       help="image format for --kind image")
    p_sub.add_argument("--base", default=None, metavar="ADDR",
                       help="load address for raw images (--kind image)")
    p_sub.add_argument("--name", choices=["fig2", "table1", "table2",
                                          "table3", "table6"],
                       default="table1",
                       help="artifact for --kind experiment")
    p_sub.add_argument("--stride", type=int, default=4,
                       help="scan stride for --kind experiment")
    _add_fault_model_flags(p_sub)
    p_sub.add_argument("--k-values", default=None, metavar="LIST",
                       help="comma-separated flip counts k to sweep "
                            "(branch/image kinds; default: 0..16)")
    p_sub.add_argument("--zero-invalid", action="store_true",
                       help="treat the all-zero word as an invalid encoding "
                            "(the Figure 2c panel decode mode)")
    p_sub.add_argument("--engine", choices=["snapshot", "rebuild", "vector"],
                       default="snapshot",
                       help="execution engine (excluded from the dedup "
                            "fingerprint — engines are bit-identical)")
    p_sub.add_argument("--tally", choices=["algebra", "enumerate"],
                       default="algebra",
                       help="tallying strategy (excluded from the dedup "
                            "fingerprint)")
    p_sub.add_argument("--client", default="cli", metavar="NAME",
                       help="client identity for per-client concurrency "
                            "slots (default: cli)")
    p_sub.add_argument("--priority", type=int, default=0, metavar="N",
                       help="scheduling priority; smaller runs earlier "
                            "(default 0)")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="return after the job is accepted instead of "
                            "waiting for tallies (tail the feed instead)")
    p_sub.add_argument("--tail", action="store_true",
                       help="stream the job's JSONL feed (partial tallies "
                            "per completed unit) until the final result")
    p_sub.set_defaults(func=cmd_submit)

    p_stat = sub.add_parser(
        "status", help="print a running server's queue, jobs, and counters"
    )
    _add_endpoint_flags(p_stat)
    p_stat.add_argument("--json", action="store_true",
                        help="print the raw status record as JSON")
    p_stat.set_defaults(func=cmd_status)

    p_report = sub.add_parser(
        "report", help="summarise a --trace/--metrics-out JSONL event log"
    )
    p_report.add_argument("events", help="path to the JSONL event log")
    p_report.set_defaults(func=cmd_report)

    return parser


def _add_endpoint_flags(parser: argparse.ArgumentParser) -> None:
    from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"service bind/connect address "
                             f"(default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"service TCP port (default {DEFAULT_PORT}; "
                             f"0 = ephemeral for serve)")


def _add_image_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=["auto", "raw", "ihex"],
                        default="auto",
                        help="image format (auto sniffs .hex/.ihex/.ihx "
                             "suffixes as Intel HEX, anything else as raw)")
    parser.add_argument("--base", default=None, metavar="ADDR",
                        help="load address for raw images "
                             "(default 0x08000000; Intel HEX carries its own)")
    parser.add_argument("--strategy", choices=["linear", "entry"],
                        default="linear",
                        help="site discovery: linear sweep of the whole image "
                             "(default) or reachable-code walk from the entry "
                             "point (skips literal pools)")


def _add_fault_model_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-model",
                        choices=["clock", "voltage", "em", "skip", "replay"],
                        default=None,
                        help="injection phenomenology for hw-scan campaigns "
                             "(repro.hw.models registry; default: the paper's "
                             "clock-glitch model)")
    parser.add_argument("--profile", default=None, metavar="NAME",
                        help="named calibration profile (seed/amplitude/band "
                             "bundle) from repro.hw.models.PROFILES, e.g. "
                             "em-probe-4mm; implies its fault model")


def _add_robustness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write per-unit JSONL checkpoints here "
                             "(default with --resume: <cache root>/checkpoints)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing checkpoint, replaying "
                             "completed work units instead of re-running them")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for a failing work unit before it "
                             "is quarantined into the failed-units report")
    parser.add_argument("--unit-timeout", type=float, default=None, metavar="SEC",
                        help="wall-clock bound per work unit on the "
                             "multiprocessing path (hung workers are rebuilt)")


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record spans/counters/events and print a timing "
                             "report to stderr when the run finishes")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the JSONL event log here (implies "
                             "recording; default with --trace: "
                             "<cache root>/runs/<label>-<timestamp>.jsonl)")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Constant diversification codes (Section VI-A).

GlitchResistor replaces ENUM values and constant return codes with values
generated from Reed-Solomon error-correcting codes so that the minimum
pairwise Hamming distance between any two valid constants is large — a
glitch that flips a few bits can no longer turn one valid value into
another. The paper used the mersinvald/Reed-Solomon C++ library with a
2-byte message and an ECC length equal to the constant width (4 bytes);
this package reimplements the same construction in pure Python over
GF(2^8) and adds the distance utilities used to verify it.
"""

from repro.codes.gf256 import GF256
from repro.codes.reed_solomon import ReedSolomon, rs_encode_value
from repro.codes.hamming import (
    min_pairwise_distance,
    pairwise_distances,
    generate_diversified_constants,
)

__all__ = [
    "GF256",
    "ReedSolomon",
    "rs_encode_value",
    "min_pairwise_distance",
    "pairwise_distances",
    "generate_diversified_constants",
]

"""GF(2^8) arithmetic with the conventional 0x11D primitive polynomial.

Log/antilog tables are precomputed once at import; all operations are
table-driven, matching how embedded Reed-Solomon implementations (including
the one the paper used) are written.
"""

from __future__ import annotations

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * (FIELD_SIZE * 2)
    log = [0] * FIELD_SIZE
    value = 1
    for power in range(FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(FIELD_SIZE - 1, FIELD_SIZE * 2):
        exp[power] = exp[power - (FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Namespace of GF(2^8) field operations (all static)."""

    @staticmethod
    def add(a: int, b: int) -> int:
        """Addition == subtraction == XOR in characteristic 2."""
        return a ^ b

    @staticmethod
    def sub(a: int, b: int) -> int:
        return a ^ b

    @staticmethod
    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return _EXP[_LOG[a] + _LOG[b]]

    @staticmethod
    def div(a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return _EXP[(_LOG[a] - _LOG[b]) % (FIELD_SIZE - 1)]

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        if a == 0:
            if exponent == 0:
                return 1
            return 0
        return _EXP[(_LOG[a] * exponent) % (FIELD_SIZE - 1)]

    @staticmethod
    def inverse(a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return _EXP[(FIELD_SIZE - 1) - _LOG[a]]

    # -- polynomial helpers (coefficients high-order first) ---------------

    @staticmethod
    def poly_scale(poly: list[int], scalar: int) -> list[int]:
        return [GF256.mul(coefficient, scalar) for coefficient in poly]

    @staticmethod
    def poly_add(p: list[int], q: list[int]) -> list[int]:
        result = [0] * max(len(p), len(q))
        result[len(result) - len(p):] = p
        for i, coefficient in enumerate(q):
            result[i + len(result) - len(q)] ^= coefficient
        return result

    @staticmethod
    def poly_mul(p: list[int], q: list[int]) -> list[int]:
        result = [0] * (len(p) + len(q) - 1)
        for i, pc in enumerate(p):
            if pc == 0:
                continue
            for j, qc in enumerate(q):
                result[i + j] ^= GF256.mul(pc, qc)
        return result

    @staticmethod
    def poly_eval(poly: list[int], x: int) -> int:
        """Horner evaluation."""
        result = poly[0]
        for coefficient in poly[1:]:
            result = GF256.mul(result, x) ^ coefficient
        return result

    @staticmethod
    def poly_divmod(dividend: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
        """Synthetic division; returns (quotient, remainder)."""
        output = list(dividend)
        normalizer = divisor[0]
        for i in range(len(dividend) - len(divisor) + 1):
            output[i] = GF256.div(output[i], normalizer)
            coefficient = output[i]
            if coefficient != 0:
                for j in range(1, len(divisor)):
                    output[i + j] ^= GF256.mul(divisor[j], coefficient)
        separator = len(dividend) - len(divisor) + 1
        return output[:separator], output[separator:]


__all__ = ["GF256", "PRIMITIVE_POLY", "FIELD_SIZE"]

"""Hamming-distance utilities and the diversified-constant generator.

The paper notes that maximising the minimum pairwise Hamming distance of a
value set is the open coding-theory problem A(n, d); GlitchResistor instead
derives values from Reed-Solomon ECCs, which empirically yields a minimum
pairwise distance of 8 for practically-sized ENUM sets. Our generator makes
that guarantee *constructive*: candidate ECC values that would violate the
requested minimum distance against already-accepted values are skipped, so
the returned set always satisfies it.
"""

from __future__ import annotations

from itertools import combinations

from repro.bits import hamming_distance
from repro.codes.reed_solomon import rs_encode_value

DEFAULT_MIN_DISTANCE = 8


def pairwise_distances(values: list[int]) -> list[int]:
    """All pairwise Hamming distances of ``values``."""
    return [hamming_distance(a, b) for a, b in combinations(values, 2)]


def min_pairwise_distance(values: list[int]) -> int:
    """Minimum pairwise Hamming distance (``0`` for fewer than two values)."""
    distances = pairwise_distances(values)
    return min(distances) if distances else 0


def generate_diversified_constants(
    count: int,
    value_bytes: int = 4,
    min_distance: int = DEFAULT_MIN_DISTANCE,
    avoid: tuple[int, ...] = (0,),
) -> list[int]:
    """Generate ``count`` constants with pairwise Hamming distance ≥ ``min_distance``.

    Messages are taken from the sequence 1, 2, 3, ... (the paper generates a
    message for each number in ``[1, count]``); candidates whose ECC lands
    too close to an accepted value — or equals a value in ``avoid`` (0 is a
    terrible constant: a stuck-at-zero glitch produces it) — are skipped.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    max_messages = 1 << 16
    accepted: list[int] = []
    message = 1
    while len(accepted) < count:
        if message >= max_messages:
            raise ValueError(
                f"could not generate {count} constants with distance ≥ {min_distance}"
            )
        candidate = rs_encode_value(message, value_bytes=value_bytes)
        message += 1
        if candidate in avoid:
            continue
        if all(hamming_distance(candidate, value) >= min_distance for value in accepted):
            accepted.append(candidate)
    return accepted


__all__ = [
    "pairwise_distances",
    "min_pairwise_distance",
    "generate_diversified_constants",
    "DEFAULT_MIN_DISTANCE",
]

"""Reed-Solomon encoder/decoder over GF(2^8).

The encoder matches the classic systematic RS construction (generator
polynomial :math:`\\prod_i (x - \\alpha^i)`): the paper's constant
diversification encodes each small integer as a 2-byte message and uses the
``nsym``-byte ECC as the diversified constant.

A full decoder (syndromes, Berlekamp-Massey, Chien search, Forney) is
included both for completeness and because the test suite uses it as an
oracle: corrupting up to ``nsym // 2`` symbols of a codeword must decode
back to the original message. The decoder follows the well-known
"Reed-Solomon codes for coders" reference structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.gf256 import GF256


class ReedSolomonError(Exception):
    """Raised when decoding fails (too many symbol errors)."""


@dataclass(frozen=True)
class ReedSolomon:
    """An RS code with ``nsym`` parity symbols appended to each message."""

    nsym: int

    def generator_poly(self) -> list[int]:
        poly = [1]
        for i in range(self.nsym):
            poly = GF256.poly_mul(poly, [1, GF256.pow(2, i)])
        return poly

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, message: bytes) -> bytes:
        """Return the full systematic codeword ``message + ecc``."""
        return bytes(message) + self.ecc(message)

    def ecc(self, message: bytes) -> bytes:
        """Return only the parity symbols for ``message``."""
        generator = self.generator_poly()
        padded = list(message) + [0] * self.nsym
        _, remainder = GF256.poly_divmod(padded, generator)
        return bytes(remainder)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def syndromes(self, codeword: bytes) -> list[int]:
        return [GF256.poly_eval(list(codeword), GF256.pow(2, i)) for i in range(self.nsym)]

    def decode(self, codeword: bytes) -> bytes:
        """Correct up to ``nsym // 2`` symbol errors; return the message part."""
        codeword_list = list(codeword)
        syndromes = self.syndromes(codeword)
        if max(syndromes) == 0:
            return bytes(codeword_list[: len(codeword) - self.nsym])
        error_locator = self._berlekamp_massey(syndromes)
        error_positions = self._chien_search(error_locator, len(codeword))
        if len(error_positions) != len(error_locator) - 1:
            raise ReedSolomonError("could not locate all errors")
        corrected = self._forney(codeword_list, syndromes, error_positions)
        if max(self.syndromes(bytes(corrected))) != 0:
            raise ReedSolomonError("correction failed (residual syndromes)")
        return bytes(corrected[: len(codeword) - self.nsym])

    # -- decoder internals ------------------------------------------------

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        error_locator = [1]
        old_locator = [1]
        for i in range(self.nsym):
            old_locator.append(0)
            delta = syndromes[i]
            for j in range(1, len(error_locator)):
                delta ^= GF256.mul(error_locator[len(error_locator) - 1 - j], syndromes[i - j])
            if delta != 0:
                if len(old_locator) > len(error_locator):
                    new_locator = GF256.poly_scale(old_locator, delta)
                    old_locator = GF256.poly_scale(error_locator, GF256.inverse(delta))
                    error_locator = new_locator
                error_locator = GF256.poly_add(
                    error_locator, GF256.poly_scale(old_locator, delta)
                )
        while error_locator and error_locator[0] == 0:
            error_locator.pop(0)
        if len(error_locator) - 1 > self.nsym // 2:
            raise ReedSolomonError("too many errors to correct")
        return error_locator

    def _chien_search(self, error_locator: list[int], codeword_length: int) -> list[int]:
        """Return error positions (indices into the codeword).

        The locator σ(x) has roots at the *inverse* error locations, so the
        reversed polynomial is evaluated at α^i to find them directly.
        """
        reversed_locator = list(reversed(error_locator))
        positions = []
        for i in range(codeword_length):
            if GF256.poly_eval(reversed_locator, GF256.pow(2, i)) == 0:
                positions.append(codeword_length - 1 - i)
        return positions

    def _forney(
        self, codeword: list[int], syndromes: list[int], error_positions: list[int]
    ) -> list[int]:
        """Compute error magnitudes via Forney (product-form derivative)."""
        coefficient_positions = [len(codeword) - 1 - p for p in error_positions]
        # errata locator from the known positions
        locator = [1]
        for position in coefficient_positions:
            locator = GF256.poly_mul(locator, [GF256.pow(2, position), 1])
        # error evaluator = (syndromes_reversed * locator) mod x^(errors+1)
        _, evaluator = GF256.poly_divmod(
            GF256.poly_mul(list(reversed(syndromes)), locator),
            [1] + [0] * len(locator),
        )
        x_values = [GF256.pow(2, position) for position in coefficient_positions]
        corrected = list(codeword)
        for i, x_i in enumerate(x_values):
            x_i_inverse = GF256.inverse(x_i)
            # derivative of the locator evaluated at 1/X_i, in product form
            denominator = 1
            for j, x_j in enumerate(x_values):
                if j != i:
                    denominator = GF256.mul(
                        denominator, 1 ^ GF256.mul(x_i_inverse, x_j)
                    )
            if denominator == 0:
                raise ReedSolomonError("Forney denominator is zero")
            # e_i = X_i^(1-b) Ω(X_i^{-1}) / Λ'(X_i^{-1}); with b = 0 first root
            # the X_i factors cancel against Λ' = X_i·Π(1 ⊕ X_i^{-1} X_j).
            numerator = GF256.poly_eval(evaluator, x_i_inverse)
            magnitude = GF256.div(numerator, denominator)
            corrected[error_positions[i]] ^= magnitude
        return corrected


def rs_encode_value(number: int, value_bytes: int = 4, message_bytes: int = 2) -> int:
    """The paper's construction: ECC(``number`` as a ``message_bytes`` message).

    The ``value_bytes``-byte ECC becomes the diversified constant. With the
    paper's defaults (2-byte message, 4-byte ECC) this supports up to 2^16
    unique values per set.
    """
    if number < 0 or number >= (1 << (8 * message_bytes)):
        raise ValueError(f"number {number} does not fit in a {message_bytes}-byte message")
    rs = ReedSolomon(nsym=value_bytes)
    ecc = rs.ecc(number.to_bytes(message_bytes, "big"))
    return int.from_bytes(ecc, "big")


__all__ = ["ReedSolomon", "ReedSolomonError", "rs_encode_value"]

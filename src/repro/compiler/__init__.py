"""The MiniC compiler — the reproduction's stand-in for Clang/LLVM.

GlitchResistor (Section VI) is a set of Clang/LLVM passes; with no LLVM
available offline, this package provides an equivalent pipeline over a small
C dialect ("MiniC") that is rich enough for the paper's firmware:

``lexer → parser → sema (AST) → lowering → IR passes → codegen (Thumb-16)
→ layout (sections + image)``

The AST level hosts the ENUM rewriter (the paper implements it as a Clang
source rewriter for exactly the reason we do: enums are already constants
in the IR); every other defense is an IR pass (see :mod:`repro.resistor`).

MiniC supports: ``int/unsigned/short/char/void``, ``volatile``, enums,
globals with initializers, functions, ``if/else``, ``while``, ``for``,
``return``, all the usual integer operators with C semantics (including
short-circuit ``&&``/``||``), and the MMIO idiom
``*(volatile unsigned int *)0x48000014 = 1``.
"""

from repro.compiler.lexer import tokenize, Token
from repro.compiler.parser import parse
from repro.compiler.sema import analyze
from repro.compiler.lowering import lower
from repro.compiler.interp import Interpreter
from repro.compiler.driver import CompiledProgram, compile_source

__all__ = [
    "tokenize",
    "Token",
    "parse",
    "analyze",
    "lower",
    "Interpreter",
    "CompiledProgram",
    "compile_source",
]

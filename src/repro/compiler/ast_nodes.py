"""MiniC abstract syntax tree nodes.

Nodes are plain dataclasses; ``line`` carries the source location for
diagnostics. Types are represented by :class:`CType` — integers of a width
plus signedness and qualifiers, which is all MiniC has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class CType:
    """A MiniC type: ``void`` or an integer of 1/2/4 bytes."""

    name: str  # "void" | "char" | "short" | "int"
    signed: bool = True
    volatile: bool = False
    const: bool = False

    @property
    def size(self) -> int:
        return {"void": 0, "char": 1, "short": 2, "int": 4}[self.name]

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    def with_qualifiers(self, volatile: bool = False, const: bool = False) -> "CType":
        return CType(self.name, self.signed, self.volatile or volatile, self.const or const)


INT = CType("int")
UNSIGNED = CType("int", signed=False)
VOID = CType("void")


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberLit(Expr):
    value: int = 0


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MMIODeref(Expr):
    """``*(volatile TYPE *)address`` — as a load when read, store target when assigned."""

    target_type: CType = INT
    address: Expr = None


@dataclass
class Assign(Expr):
    """Assignment expression ``lhs = value`` (also +=, -=, ...)."""

    lhs: Expr = None  # Name or MMIODeref
    op: str = "="
    value: Expr = None


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Declaration(Stmt):
    ctype: CType = INT
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------

@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: list[Param]
    body: Optional[Block]  # None for declarations/prototypes
    line: int = 0


@dataclass
class GlobalVar:
    ctype: CType
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass
class Enumerator:
    name: str
    value: Optional[Expr]  # None = uninitialized (auto-numbered)
    line: int = 0


@dataclass
class EnumDef:
    name: Optional[str]
    enumerators: list[Enumerator]
    line: int = 0

    @property
    def fully_uninitialized(self) -> bool:
        """True when no enumerator has an explicit value — the only case the
        paper's ENUM Rewriter is allowed to diversify."""
        return all(e.value is None for e in self.enumerators)


TopLevel = Union[FunctionDef, GlobalVar, EnumDef]


@dataclass
class TranslationUnit:
    items: list[TopLevel] = field(default_factory=list)

    def functions(self) -> list[FunctionDef]:
        return [i for i in self.items if isinstance(i, FunctionDef) and i.body is not None]

    def globals(self) -> list[GlobalVar]:
        return [i for i in self.items if isinstance(i, GlobalVar)]

    def enums(self) -> list[EnumDef]:
        return [i for i in self.items if isinstance(i, EnumDef)]

    def function(self, name: str) -> FunctionDef:
        for item in self.items:
            if isinstance(item, FunctionDef) and item.name == name and item.body is not None:
                return item
        raise KeyError(name)


__all__ = [
    "CType", "INT", "UNSIGNED", "VOID",
    "Expr", "NumberLit", "Name", "Unary", "Binary", "Conditional", "Call",
    "MMIODeref", "Assign",
    "Stmt", "ExprStmt", "Declaration", "Block", "If", "While", "For",
    "Return", "Break", "Continue",
    "Param", "FunctionDef", "GlobalVar", "Enumerator", "EnumDef",
    "TranslationUnit", "TopLevel",
]

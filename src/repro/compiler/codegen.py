"""IR → Thumb-16 assembly code generation.

A deliberately simple "slot machine" backend: every IR temporary and local
lives in a stack slot; each instruction loads its operands into r0/r1,
computes, and stores the result back. One peephole matters for fidelity to
the paper's attack surface: a ``Cmp`` feeding its own block's ``CondBr``
is fused into the classic ``cmp``/``b<cc>`` pair — the exact instruction
sequence the glitching experiments target.

Far branches are emitted as a short conditional hop over an unconditional
branch, so conditional-branch range limits never bite while the guard
itself remains a genuine conditional branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.errors import CompileError

#: IR comparison op → branch condition suffix
_CC = {
    "eq": "eq", "ne": "ne",
    "slt": "lt", "sle": "le", "sgt": "gt", "sge": "ge",
    "ult": "cc", "ule": "ls", "ugt": "hi", "uge": "cs",
}

_DIV_RUNTIME = {"udiv": "__gr_udiv", "sdiv": "__gr_sdiv", "urem": "__gr_urem", "srem": "__gr_srem"}


@dataclass
class CodegenResult:
    text: str
    used_runtime: set = field(default_factory=set)


class FunctionCodegen:
    def __init__(self, function: ir.IRFunction):
        self.function = function
        self.lines: list[str] = []
        self.local_label = 0
        self.used_runtime: set[str] = set()
        self.temp_offsets: dict[int, int] = {}
        self.frame_size = 0
        self._assign_frame()

    # ------------------------------------------------------------------
    # frame layout
    # ------------------------------------------------------------------

    def _assign_frame(self) -> None:
        function = self.function
        slot_count = function.n_slots
        # which blocks does each temp appear in?
        appearances: dict[int, set[str]] = {}

        def note(temp: int, label: str) -> None:
            appearances.setdefault(temp, set()).add(label)

        for block in function.blocks.values():
            for instr in block.instrs:
                if instr.result is not None:
                    note(instr.result, block.label)
                for operand in instr.operands():
                    note(operand, block.label)
            terminator = block.terminator
            if isinstance(terminator, ir.CondBr):
                note(terminator.cond, block.label)
            elif isinstance(terminator, ir.Ret) and terminator.operand is not None:
                note(terminator.operand, block.label)

        cross_block = sorted(t for t, blocks in appearances.items() if len(blocks) > 1)
        next_index = slot_count
        for temp in cross_block:
            self.temp_offsets[temp] = next_index * 4
            next_index += 1

        # block-local temps share a reusable pool
        pool_base = next_index
        max_pool = 0
        for block in function.blocks.values():
            local = [
                t for t, blocks in appearances.items()
                if len(blocks) == 1 and next(iter(blocks)) == block.label
            ]
            last_use = self._last_uses(block, set(local))
            free: list[int] = []
            allocated: dict[int, int] = {}
            high_water = 0
            for index, instr in enumerate(block.instrs):
                if instr.result in last_use:
                    if free:
                        slot = free.pop()
                    else:
                        slot = high_water
                        high_water += 1
                    allocated[instr.result] = slot
                    self.temp_offsets[instr.result] = (pool_base + slot) * 4
                for operand in instr.operands():
                    if operand in last_use and last_use[operand] == index and operand in allocated:
                        free.append(allocated.pop(operand))
            max_pool = max(max_pool, high_water)
        self.frame_size = (pool_base + max_pool) * 4
        if self.frame_size + 4 > 1020:
            raise CompileError(
                f"function {function.name!r} frame too large "
                f"({self.frame_size} bytes); split the function"
            )

    def _last_uses(self, block: ir.Block, locals_set: set[int]) -> dict[int, int]:
        last: dict[int, int] = {}
        for index, instr in enumerate(block.instrs):
            if instr.result in locals_set:
                last.setdefault(instr.result, index)
                last[instr.result] = max(last[instr.result], index)
            for operand in instr.operands():
                if operand in locals_set:
                    last[operand] = index
        terminator = block.terminator
        sentinel = len(block.instrs)
        if isinstance(terminator, ir.CondBr) and terminator.cond in locals_set:
            last[terminator.cond] = sentinel
        if isinstance(terminator, ir.Ret) and terminator.operand in locals_set:
            last[terminator.operand] = sentinel
        return last

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def _label(self, text: str) -> None:
        self.lines.append(text + ":")

    def _fresh(self, hint: str) -> str:
        self.local_label += 1
        return f"{self._mangle(self.function.name)}__{hint}{self.local_label}"

    def _mangle(self, name: str) -> str:
        return name.replace(".", "_")

    def _block_label(self, block_label: str) -> str:
        return f"{self._mangle(self.function.name)}__{self._mangle(block_label)}"

    def _slot_offset(self, slot: int) -> int:
        return slot * 4

    def _temp_offset(self, temp: int) -> int:
        try:
            return self.temp_offsets[temp]
        except KeyError:
            raise CompileError(
                f"temp t{temp} has no frame slot in {self.function.name!r}"
            ) from None

    def _load_temp(self, register: int, temp: int) -> None:
        self._emit(f"ldr r{register}, [sp, #{self._temp_offset(temp)}]")

    def _store_temp(self, register: int, temp: int) -> None:
        self._emit(f"str r{register}, [sp, #{self._temp_offset(temp)}]")

    def _load_const(self, register: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if value <= 0xFF:
            self._emit(f"movs r{register}, #{value}")
        else:
            self._emit(f"ldr r{register}, =0x{value:08X}")

    def _far_branch(self, condition: str, target: str) -> None:
        """``b<cc>`` with unlimited range: short hop over an unconditional b."""
        skip = self._fresh("far")
        taken = self._fresh("tk")
        self._emit(f"b{condition} {taken}")
        self._emit(f"b {skip}")
        self._label(taken)
        self._emit(f"b {target}")
        self._label(skip)

    # ------------------------------------------------------------------
    # function body
    # ------------------------------------------------------------------

    def generate(self) -> list[str]:
        function = self.function
        self._label(self._mangle(function.name))
        self._emit("push {lr}")
        self._sp_adjust("sub", self.frame_size)
        for index in range(function.param_count):
            self._emit(f"str r{index}, [sp, #{self._slot_offset(index)}]")
        ordered = function.block_order()
        fused = self._find_fused()
        for position, block in enumerate(ordered):
            self._label(self._block_label(block.label))
            skip_last = block.label in fused
            instrs = block.instrs[:-1] if skip_last else block.instrs
            for instr in instrs:
                self._instruction(instr)
            next_label = ordered[position + 1].label if position + 1 < len(ordered) else None
            self._terminator(block, fused.get(block.label), next_label)
        self._label(f"{self._mangle(function.name)}__epilogue")
        self._sp_adjust("add", self.frame_size)
        self._emit("pop {pc}")
        self._emit(".pool")
        return self.lines

    def _sp_adjust(self, op: str, amount: int) -> None:
        while amount > 0:
            chunk = min(amount, 508)
            self._emit(f"{op} sp, #{chunk}")
            amount -= chunk

    def _find_fused(self) -> dict[str, ir.Cmp]:
        """Blocks whose trailing Cmp feeds only their own CondBr."""
        use_count: dict[int, int] = {}
        for block in self.function.blocks.values():
            for instr in block.instrs:
                for operand in instr.operands():
                    use_count[operand] = use_count.get(operand, 0) + 1
            terminator = block.terminator
            if isinstance(terminator, ir.CondBr):
                use_count[terminator.cond] = use_count.get(terminator.cond, 0) + 1
            elif isinstance(terminator, ir.Ret) and terminator.operand is not None:
                use_count[terminator.operand] = use_count.get(terminator.operand, 0) + 1
        fused: dict[str, ir.Cmp] = {}
        for block in self.function.blocks.values():
            terminator = block.terminator
            if not isinstance(terminator, ir.CondBr) or not block.instrs:
                continue
            last = block.instrs[-1]
            if (
                isinstance(last, ir.Cmp)
                and last.result == terminator.cond
                and use_count.get(last.result, 0) == 1
            ):
                fused[block.label] = last
        return fused

    # ------------------------------------------------------------------

    def _instruction(self, instr: ir.Instr) -> None:
        if isinstance(instr, ir.Const):
            self._load_const(0, instr.value)
            self._store_temp(0, instr.result)
        elif isinstance(instr, ir.BinOp):
            self._binop(instr)
        elif isinstance(instr, ir.Cmp):
            self._cmp_materialize(instr)
        elif isinstance(instr, ir.LoadLocal):
            self._emit(f"ldr r0, [sp, #{self._slot_offset(instr.slot)}]")
            self._store_temp(0, instr.result)
        elif isinstance(instr, ir.StoreLocal):
            self._load_temp(0, instr.operand)
            self._emit(f"str r0, [sp, #{self._slot_offset(instr.slot)}]")
        elif isinstance(instr, ir.LoadGlobal):
            self._emit(f"ldr r3, ={_global_symbol(instr.name)}")
            self._memory_load(instr.width, instr.signed)
            self._store_temp(0, instr.result)
        elif isinstance(instr, ir.StoreGlobal):
            self._load_temp(0, instr.operand)
            self._emit(f"ldr r3, ={_global_symbol(instr.name)}")
            self._memory_store(instr.width)
        elif isinstance(instr, ir.RawLoad):
            self._load_temp(3, instr.address)
            self._memory_load(instr.width, instr.signed)
            self._store_temp(0, instr.result)
        elif isinstance(instr, ir.RawStore):
            self._load_temp(0, instr.operand)
            self._load_temp(3, instr.address)
            self._memory_store(instr.width)
        elif isinstance(instr, ir.Call):
            self._call(instr)
        elif isinstance(instr, ir.Halt):
            self._emit("bkpt #0")
        else:  # pragma: no cover
            raise CompileError(f"cannot generate code for {instr!r}")

    def _memory_load(self, width: int, signed: bool) -> None:
        if width == 1:
            self._emit("ldrb r0, [r3]")
            if signed:
                self._emit("sxtb r0, r0")
        elif width == 2:
            self._emit("ldrh r0, [r3]")
            if signed:
                self._emit("sxth r0, r0")
        else:
            self._emit("ldr r0, [r3]")

    def _memory_store(self, width: int) -> None:
        mnemonic = {1: "strb", 2: "strh", 4: "str"}[width]
        self._emit(f"{mnemonic} r0, [r3]")

    def _binop(self, instr: ir.BinOp) -> None:
        if instr.op in _DIV_RUNTIME:
            self._load_temp(0, instr.lhs)
            self._load_temp(1, instr.rhs)
            runtime = _DIV_RUNTIME[instr.op]
            self.used_runtime.add(runtime)
            self._emit(f"bl {runtime}")
            self._store_temp(0, instr.result)
            return
        self._load_temp(0, instr.lhs)
        self._load_temp(1, instr.rhs)
        text = {
            "add": "adds r0, r0, r1",
            "sub": "subs r0, r0, r1",
            "mul": "muls r0, r1",
            "and": "ands r0, r1",
            "or": "orrs r0, r1",
            "xor": "eors r0, r1",
            "shl": "lsls r0, r1",
            "lshr": "lsrs r0, r1",
            "ashr": "asrs r0, r1",
        }[instr.op]
        self._emit(text)
        self._store_temp(0, instr.result)

    def _cmp_materialize(self, instr: ir.Cmp) -> None:
        self._load_temp(0, instr.lhs)
        self._load_temp(1, instr.rhs)
        self._emit("cmp r0, r1")
        true_label = self._fresh("ct")
        end_label = self._fresh("ce")
        self._emit(f"b{_CC[instr.op]} {true_label}")
        self._emit("movs r0, #0")
        self._emit(f"b {end_label}")
        self._label(true_label)
        self._emit("movs r0, #1")
        self._label(end_label)
        self._store_temp(0, instr.result)

    def _call(self, instr: ir.Call) -> None:
        if instr.func == "__nop":
            self._emit("nop")
            if instr.result is not None:
                self._emit("movs r0, #0")
                self._store_temp(0, instr.result)
            return
        if len(instr.args) > 4:
            raise CompileError(f"call to {instr.func!r} with more than 4 arguments")
        for index, arg in enumerate(instr.args):
            self._load_temp(index, arg)
        self._emit(f"bl {self._mangle(instr.func)}")
        if instr.result is not None:
            self._store_temp(0, instr.result)

    def _terminator(self, block: ir.Block, fused_cmp, next_label) -> None:
        terminator = block.terminator
        if isinstance(terminator, ir.Jump):
            if terminator.target != next_label:
                self._emit(f"b {self._block_label(terminator.target)}")
            return
        if isinstance(terminator, ir.CondBr):
            if fused_cmp is not None:
                self._load_temp(0, fused_cmp.lhs)
                self._load_temp(1, fused_cmp.rhs)
                self._emit("cmp r0, r1")
                condition = _CC[fused_cmp.op]
            else:
                self._load_temp(0, terminator.cond)
                self._emit("cmp r0, #0")
                condition = "ne"
            taken = self._fresh("br")
            self._emit(f"b{condition} {taken}")
            self._emit(f"b {self._block_label(terminator.if_false)}")
            self._label(taken)
            self._emit(f"b {self._block_label(terminator.if_true)}")
            return
        if isinstance(terminator, ir.Ret):
            if terminator.operand is not None:
                self._load_temp(0, terminator.operand)
            self._emit(f"b {self._mangle(self.function.name)}__epilogue")
            return
        if isinstance(terminator, ir.Unreachable):
            self._emit("bkpt #0xFF")
            return
        raise CompileError(f"block {block.label!r} has no terminator")  # pragma: no cover


def _global_symbol(name: str) -> str:
    return f"g_{name}"


def generate_module(module: ir.IRModule, function_order: list[str] | None = None) -> CodegenResult:
    """Generate assembly for every function in ``module``."""
    lines: list[str] = []
    used_runtime: set[str] = set()
    names = function_order or list(module.functions)
    for name in names:
        codegen = FunctionCodegen(module.functions[name])
        lines.extend(codegen.generate())
        used_runtime.update(codegen.used_runtime)
        lines.append("")
    return CodegenResult(text="\n".join(lines), used_runtime=used_runtime)


__all__ = ["FunctionCodegen", "CodegenResult", "generate_module", "_global_symbol"]

"""End-to-end compile driver: MiniC source → bootable flash image.

``compile_source`` runs the full pipeline and returns a
:class:`CompiledProgram` carrying the assembled image (loadable by
:class:`repro.hw.mcu.Board`), the IR module (for inspection), the final
assembly text, and the section sizes for Table V.

The integer-division runtime (``__gr_udiv`` and friends) is itself written
in MiniC (shift-subtract, no division) and compiled by the same pipeline
whenever a module needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.compiler import ir
from repro.compiler.codegen import generate_module
from repro.compiler.layout import FLASH_BASE, LayoutResult, SectionSizes, layout_module
from repro.compiler.lowering import lower
from repro.compiler.parser import parse
from repro.compiler.passes import DEFAULT_OPTIMIZATIONS, PassManager
from repro.compiler.passes.pass_manager import IRPass
from repro.compiler.sema import Program, analyze
from repro.isa.assembler import AssembledProgram, assemble

#: the division runtime, in MiniC (shift-subtract; must not use / or %)
RUNTIME_SOURCE = """
unsigned int __gr_udiv(unsigned int n, unsigned int d) {
    unsigned int q = 0;
    unsigned int bit = 1;
    if (d == 0) { __halt(); }
    while (d < n && (d & 0x80000000) == 0) {
        d = d << 1;
        bit = bit << 1;
    }
    while (bit != 0) {
        if (n >= d) {
            n = n - d;
            q = q | bit;
        }
        d = d >> 1;
        bit = bit >> 1;
    }
    return q;
}

unsigned int __gr_urem(unsigned int n, unsigned int d) {
    return n - __gr_udiv(n, d) * d;
}

int __gr_sdiv(int a, int b) {
    unsigned int ua = (a < 0) ? (unsigned int)(0 - a) : (unsigned int)a;
    unsigned int ub = (b < 0) ? (unsigned int)(0 - b) : (unsigned int)b;
    unsigned int uq = __gr_udiv(ua, ub);
    if ((a < 0) != (b < 0)) { return 0 - (int)uq; }
    return (int)uq;
}

int __gr_srem(int a, int b) {
    return a - __gr_sdiv(a, b) * b;
}
"""


@dataclass
class CompiledProgram:
    """Everything produced by one compile."""

    source: str
    program: Program
    module: ir.IRModule
    assembly: str
    image: AssembledProgram
    sizes: SectionSizes
    pass_log: list[tuple[str, str]] = field(default_factory=list)

    def symbol(self, name: str) -> int:
        return self.image.address_of(name)


def _module_needs_runtime(module: ir.IRModule) -> bool:
    for function in module.functions.values():
        for _, instr in function.instructions():
            if isinstance(instr, ir.BinOp) and instr.op in ("udiv", "sdiv", "urem", "srem"):
                return True
    return False


def _runtime_assembly() -> str:
    program = analyze(parse(RUNTIME_SOURCE))
    module = lower(program)
    manager = PassManager([cls() for cls in DEFAULT_OPTIMIZATIONS])
    manager.run(module)
    return generate_module(module).text


def compile_source(
    source: str,
    extra_passes: Sequence[IRPass] = (),
    optimize: bool = True,
    base: int = FLASH_BASE,
    entry_function: str = "main",
    init_function: Optional[str] = None,
    program_transform=None,
) -> CompiledProgram:
    """Compile MiniC ``source`` into a bootable image.

    ``extra_passes`` run *before* the baseline optimisations — this is where
    GlitchResistor's IR defenses plug in. ``program_transform`` (if given)
    runs on the analyzed AST program before lowering, which is where the
    AST-level ENUM rewriter plugs in. ``init_function`` is called by crt0
    before ``main`` (the random-delay seed update hook).
    """
    unit = parse(source)
    program = analyze(unit)
    if program_transform is not None:
        program = program_transform(program)
    module = lower(program)

    manager = PassManager(list(extra_passes))
    if optimize:
        for pass_class in DEFAULT_OPTIMIZATIONS:
            manager.add(pass_class())
    manager.run(module)

    runtime_assembly = _runtime_assembly() if _module_needs_runtime(module) else ""
    result: LayoutResult = layout_module(
        module,
        base=base,
        entry_function=entry_function,
        init_function=init_function,
        runtime_assembly=runtime_assembly,
    )
    image = assemble(result.assembly, base=base)
    return CompiledProgram(
        source=source,
        program=program,
        module=module,
        assembly=result.assembly,
        image=image,
        sizes=result.sizes,
        pass_log=list(manager.log),
    )


__all__ = ["CompiledProgram", "compile_source", "RUNTIME_SOURCE"]

"""Reference AST interpreter.

Executes MiniC directly, with C-like 32-bit integer semantics. Used as the
oracle for differential testing: ``interpret(source)`` must agree with
lowering → IR interpretation and with compiled code running on the
emulator. MMIO accesses are routed to a host-provided device map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compiler import ast_nodes as ast
from repro.compiler.sema import BUILTINS, Program, analyze
from repro.compiler.parser import parse
from repro.errors import CompileError

WORD_MASK = 0xFFFFFFFF


class HaltExecution(Exception):
    """Raised by ``__halt()``."""


class StepLimitExceeded(Exception):
    """The interpreter's instruction budget ran out."""


class _ReturnValue(Exception):
    def __init__(self, value: int):
        self.value = value


class _BreakLoop(Exception):
    pass


class _ContinueLoop(Exception):
    pass


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value & (1 << 31) else value


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


@dataclass
class Interpreter:
    """Interprets an analyzed MiniC program."""

    program: Program
    mmio_read: Optional[Callable[[int, int], int]] = None
    mmio_write: Optional[Callable[[int, int, int], None]] = None
    step_limit: int = 1_000_000
    globals: dict[str, int] = field(default_factory=dict)
    steps: int = 0
    call_trace: list[str] = field(default_factory=list)
    _fn_stack: list[str] = field(default_factory=list)
    _local_unsigned: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for info in self.program.globals.values():
            self.globals[info.name] = info.initial

    # ------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, **kwargs) -> "Interpreter":
        return cls(program=analyze(parse(source)), **kwargs)

    def run(self, entry: str = "main", args: tuple[int, ...] = ()) -> Optional[int]:
        """Call ``entry``; returns its value (None for void / on __halt)."""
        try:
            return self.call(entry, args)
        except HaltExecution:
            return None

    def call(self, name: str, args: tuple[int, ...] = ()) -> Optional[int]:
        function = self.program.unit.function(name)
        if len(args) != len(function.params):
            raise CompileError(f"{name!r} expects {len(function.params)} args")
        self.call_trace.append(name)
        self._fn_stack.append(name)
        scope = {param.name: value & WORD_MASK for param, value in zip(function.params, args)}
        for param in function.params:
            self._local_unsigned[(name, param.name)] = not param.ctype.signed
        try:
            self._exec_block(function.body, [scope])
        except _ReturnValue as ret:
            return None if function.return_type.is_void else ret.value & WORD_MASK
        finally:
            self._fn_stack.pop()
        return None if function.return_type.is_void else 0

    # ------------------------------------------------------------------

    def _tick(self, line: int) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise StepLimitExceeded(f"exceeded {self.step_limit} steps near line {line}")

    def _exec_block(self, block: ast.Block, scopes: list[dict[str, int]]) -> None:
        scopes.append({})
        try:
            for statement in block.statements:
                self._exec_stmt(statement, scopes)
        finally:
            scopes.pop()

    def _exec_stmt(self, stmt: ast.Stmt, scopes: list[dict[str, int]]) -> None:
        self._tick(stmt.line)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, scopes)
        elif isinstance(stmt, ast.Declaration):
            value = self._eval(stmt.init, scopes) if stmt.init is not None else 0
            scopes[-1][stmt.name] = value & WORD_MASK
            if self._fn_stack:
                self._local_unsigned[(self._fn_stack[-1], stmt.name)] = not stmt.ctype.signed
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, scopes)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond, scopes):
                self._exec_stmt(stmt.then, scopes)
            elif stmt.other is not None:
                self._exec_stmt(stmt.other, scopes)
        elif isinstance(stmt, ast.While):
            while self._eval(stmt.cond, scopes):
                self._tick(stmt.line)
                try:
                    self._exec_stmt(stmt.body, scopes)
                except _BreakLoop:
                    break
                except _ContinueLoop:
                    continue
        elif isinstance(stmt, ast.For):
            scopes.append({})
            try:
                if stmt.init is not None:
                    self._exec_stmt(stmt.init, scopes)
                while stmt.cond is None or self._eval(stmt.cond, scopes):
                    self._tick(stmt.line)
                    try:
                        self._exec_stmt(stmt.body, scopes)
                    except _BreakLoop:
                        break
                    except _ContinueLoop:
                        pass
                    if stmt.step is not None:
                        self._eval(stmt.step, scopes)
            finally:
                scopes.pop()
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, scopes) if stmt.value is not None else 0
            raise _ReturnValue(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakLoop()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueLoop()
        else:  # pragma: no cover
            raise CompileError(f"cannot interpret {stmt!r}", stmt.line)

    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, scopes: list[dict[str, int]]) -> int:
        self._tick(expr.line)
        if isinstance(expr, ast.NumberLit):
            return expr.value & WORD_MASK
        if isinstance(expr, ast.Name):
            return self._read_name(expr, scopes)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, scopes)
            if expr.op == "-":
                return (-operand) & WORD_MASK
            if expr.op == "~":
                return (~operand) & WORD_MASK
            if expr.op == "!":
                return 0 if operand else 1
            raise CompileError(f"unsupported unary {expr.op!r}", expr.line)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scopes)
        if isinstance(expr, ast.Conditional):
            if self._eval(expr.cond, scopes):
                return self._eval(expr.then, scopes)
            return self._eval(expr.other, scopes)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, scopes)
        if isinstance(expr, ast.MMIODeref):
            address = self._eval(expr.address, scopes)
            width = max(1, expr.target_type.size)
            if self.mmio_read is None:
                raise CompileError(f"MMIO read at {address:#x} without a device map", expr.line)
            value = self.mmio_read(address, width) & ((1 << (8 * width)) - 1)
            if expr.target_type.signed and value & (1 << (8 * width - 1)):
                value -= 1 << (8 * width)
            return value & WORD_MASK
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, scopes)
        raise CompileError(f"cannot interpret {expr!r}", expr.line)  # pragma: no cover

    def _read_name(self, expr: ast.Name, scopes: list[dict[str, int]]) -> int:
        for scope in reversed(scopes):
            if expr.ident in scope:
                return scope[expr.ident]
        if expr.ident in self.program.enum_values:
            return self.program.enum_values[expr.ident] & WORD_MASK
        info = self.program.globals.get(expr.ident)
        if info is None:
            raise CompileError(f"undefined identifier {expr.ident!r}", expr.line)
        raw = self.globals[expr.ident] & ((1 << (8 * info.ctype.size)) - 1)
        if info.ctype.signed and raw & (1 << (8 * info.ctype.size - 1)):
            raw -= 1 << (8 * info.ctype.size)
        return raw & WORD_MASK

    def _eval_binary(self, expr: ast.Binary, scopes: list[dict[str, int]]) -> int:
        if expr.op == "&&":
            return int(bool(self._eval(expr.left, scopes)) and bool(self._eval(expr.right, scopes)))
        if expr.op == "||":
            return int(bool(self._eval(expr.left, scopes)) or bool(self._eval(expr.right, scopes)))
        left = self._eval(expr.left, scopes)
        right = self._eval(expr.right, scopes)
        unsigned = self._is_unsigned(expr.left, scopes) or self._is_unsigned(expr.right, scopes)
        op = expr.op
        if op == "+":
            return (left + right) & WORD_MASK
        if op == "-":
            return (left - right) & WORD_MASK
        if op == "*":
            return (left * right) & WORD_MASK
        if op == "/":
            if unsigned:
                if right == 0:
                    raise ZeroDivisionError("division by zero")
                return (left // right) & WORD_MASK
            return _c_div(_signed(left), _signed(right)) & WORD_MASK
        if op == "%":
            if unsigned:
                if right == 0:
                    raise ZeroDivisionError("modulo by zero")
                return (left % right) & WORD_MASK
            signed_left, signed_right = _signed(left), _signed(right)
            return (signed_left - _c_div(signed_left, signed_right) * signed_right) & WORD_MASK
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return (left << (right & 31)) & WORD_MASK
        if op == ">>":
            if unsigned:
                return left >> (right & 31)
            return (_signed(left) >> (right & 31)) & WORD_MASK
        comparisons = {
            "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
        }
        if op in comparisons:
            if unsigned:
                return int(comparisons[op](left, right))
            return int(comparisons[op](_signed(left), _signed(right)))
        raise CompileError(f"unsupported operator {op!r}", expr.line)

    def _is_unsigned(self, expr: ast.Expr, scopes: list[dict[str, int]]) -> bool:
        if isinstance(expr, ast.NumberLit):
            return expr.value >= (1 << 31)
        if isinstance(expr, ast.Name):
            if self._fn_stack:
                key = (self._fn_stack[-1], expr.ident)
                if key in self._local_unsigned:
                    return self._local_unsigned[key]
            info = self.program.globals.get(expr.ident)
            return info is not None and not info.ctype.signed
        if isinstance(expr, ast.MMIODeref):
            return not expr.target_type.signed
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
                return False
            return self._is_unsigned(expr.left, scopes) or self._is_unsigned(expr.right, scopes)
        if isinstance(expr, ast.Call):
            info = self.program.functions.get(expr.func)
            return info is not None and not info.return_type.signed
        if isinstance(expr, ast.Assign):
            return self._is_unsigned(expr.value, scopes)
        if isinstance(expr, ast.Unary):
            return self._is_unsigned(expr.operand, scopes) and expr.op != "!"
        return False

    def _eval_call(self, expr: ast.Call, scopes: list[dict[str, int]]) -> int:
        if expr.func == "__halt":
            raise HaltExecution()
        if expr.func == "__nop":
            return 0
        if expr.func in BUILTINS and expr.func not in self.program.functions:
            return 0
        args = tuple(self._eval(arg, scopes) for arg in expr.args)
        result = self.call(expr.func, args)
        return 0 if result is None else result

    def _eval_assign(self, expr: ast.Assign, scopes: list[dict[str, int]]) -> int:
        if expr.op != "=":
            read: ast.Expr
            if isinstance(expr.lhs, ast.Name):
                read = ast.Name(line=expr.line, ident=expr.lhs.ident)
            else:
                read = ast.MMIODeref(
                    line=expr.line, target_type=expr.lhs.target_type, address=expr.lhs.address
                )
            value = self._eval(
                ast.Binary(line=expr.line, op=expr.op[:-1], left=read, right=expr.value),
                scopes,
            )
        else:
            value = self._eval(expr.value, scopes)

        if isinstance(expr.lhs, ast.Name):
            for scope in reversed(scopes):
                if expr.lhs.ident in scope:
                    scope[expr.lhs.ident] = value & WORD_MASK
                    return value & WORD_MASK
            info = self.program.globals.get(expr.lhs.ident)
            if info is None:
                raise CompileError(f"undefined identifier {expr.lhs.ident!r}", expr.line)
            self.globals[expr.lhs.ident] = value & ((1 << (8 * info.ctype.size)) - 1)
            return value & WORD_MASK
        address = self._eval(expr.lhs.address, scopes)
        width = max(1, expr.lhs.target_type.size)
        if self.mmio_write is None:
            raise CompileError(f"MMIO write at {address:#x} without a device map", expr.line)
        self.mmio_write(address, width, value & ((1 << (8 * width)) - 1))
        return value & WORD_MASK


def interpret(source: str, entry: str = "main", **kwargs) -> Optional[int]:
    """Parse, analyze, and run ``source``; returns ``entry``'s return value."""
    return Interpreter.from_source(source, **kwargs).run(entry)


__all__ = ["Interpreter", "interpret", "HaltExecution", "StepLimitExceeded"]

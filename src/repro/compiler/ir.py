"""The MiniC intermediate representation.

A deliberately small, non-SSA IR: temporaries are write-once integers
(``t0, t1, ...``), locals live in numbered stack slots, and control flow is
explicit basic blocks with one terminator each. This is the level at which
GlitchResistor's redundancy, integrity, and delay passes operate — the
moral equivalent of the paper's LLVM ``FunctionPass``/``ModulePass`` layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from repro.compiler.sema import GlobalInfo
from repro.errors import PassError

BINARY_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
CMP_OPS = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

#: complement of each comparison (used to negate branch conditions)
CMP_INVERSE = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
}


# ----------------------------------------------------------------------
# instructions
# ----------------------------------------------------------------------

@dataclass
class Instr:
    result: Optional[int] = None

    def operands(self) -> tuple[int, ...]:
        return ()

    def replace_operands(self, mapping: dict[int, int]) -> "Instr":
        return self


@dataclass
class Const(Instr):
    value: int = 0

    def render(self) -> str:
        return f"t{self.result} = const {self.value:#x}"


@dataclass
class BinOp(Instr):
    op: str = "add"
    lhs: int = 0
    rhs: int = 0

    def operands(self) -> tuple[int, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping: dict[int, int]) -> "BinOp":
        return replace(self, lhs=mapping.get(self.lhs, self.lhs), rhs=mapping.get(self.rhs, self.rhs))

    def render(self) -> str:
        return f"t{self.result} = {self.op} t{self.lhs}, t{self.rhs}"


@dataclass
class Cmp(Instr):
    op: str = "eq"
    lhs: int = 0
    rhs: int = 0

    def operands(self) -> tuple[int, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping: dict[int, int]) -> "Cmp":
        return replace(self, lhs=mapping.get(self.lhs, self.lhs), rhs=mapping.get(self.rhs, self.rhs))

    def render(self) -> str:
        return f"t{self.result} = cmp {self.op} t{self.lhs}, t{self.rhs}"


@dataclass
class LoadGlobal(Instr):
    name: str = ""
    width: int = 4
    signed: bool = True
    volatile: bool = False

    def render(self) -> str:
        keyword = "volatile load" if self.volatile else "load"
        return f"t{self.result} = {keyword} @{self.name} (w{self.width})"


@dataclass
class StoreGlobal(Instr):
    name: str = ""
    operand: int = 0
    width: int = 4
    volatile: bool = False

    def operands(self) -> tuple[int, ...]:
        return (self.operand,)

    def replace_operands(self, mapping: dict[int, int]) -> "StoreGlobal":
        return replace(self, operand=mapping.get(self.operand, self.operand))

    def render(self) -> str:
        keyword = "volatile store" if self.volatile else "store"
        return f"{keyword} @{self.name} = t{self.operand} (w{self.width})"


@dataclass
class LoadLocal(Instr):
    slot: int = 0

    def render(self) -> str:
        return f"t{self.result} = local[{self.slot}]"


@dataclass
class StoreLocal(Instr):
    slot: int = 0
    operand: int = 0

    def operands(self) -> tuple[int, ...]:
        return (self.operand,)

    def replace_operands(self, mapping: dict[int, int]) -> "StoreLocal":
        return replace(self, operand=mapping.get(self.operand, self.operand))

    def render(self) -> str:
        return f"local[{self.slot}] = t{self.operand}"


@dataclass
class RawLoad(Instr):
    address: int = 0
    width: int = 4
    signed: bool = False

    def operands(self) -> tuple[int, ...]:
        return (self.address,)

    def replace_operands(self, mapping: dict[int, int]) -> "RawLoad":
        return replace(self, address=mapping.get(self.address, self.address))

    def render(self) -> str:
        return f"t{self.result} = mmio_load [t{self.address}] (w{self.width})"


@dataclass
class RawStore(Instr):
    address: int = 0
    operand: int = 0
    width: int = 4

    def operands(self) -> tuple[int, ...]:
        return (self.address, self.operand)

    def replace_operands(self, mapping: dict[int, int]) -> "RawStore":
        return replace(
            self,
            address=mapping.get(self.address, self.address),
            operand=mapping.get(self.operand, self.operand),
        )

    def render(self) -> str:
        return f"mmio_store [t{self.address}] = t{self.operand} (w{self.width})"


@dataclass
class Call(Instr):
    func: str = ""
    args: tuple[int, ...] = ()

    def operands(self) -> tuple[int, ...]:
        return self.args

    def replace_operands(self, mapping: dict[int, int]) -> "Call":
        return replace(self, args=tuple(mapping.get(a, a) for a in self.args))

    def render(self) -> str:
        args = ", ".join(f"t{a}" for a in self.args)
        target = f"t{self.result} = " if self.result is not None else ""
        return f"{target}call {self.func}({args})"


@dataclass
class Halt(Instr):
    def render(self) -> str:
        return "halt"


# ----------------------------------------------------------------------
# terminators
# ----------------------------------------------------------------------

@dataclass
class Terminator:
    def successors(self) -> tuple[str, ...]:
        return ()


@dataclass
class Jump(Terminator):
    target: str = ""

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def render(self) -> str:
        return f"jump {self.target}"


@dataclass
class CondBr(Terminator):
    cond: int = 0
    if_true: str = ""
    if_false: str = ""
    #: loop-guard metadata recorded by lowering; consumed by GlitchResistor
    is_loop_guard: bool = False
    #: set by the redundancy passes so a branch is not instrumented twice
    redundant_clone: bool = False

    def successors(self) -> tuple[str, ...]:
        return (self.if_true, self.if_false)

    def render(self) -> str:
        guard = " [loop-guard]" if self.is_loop_guard else ""
        return f"condbr t{self.cond} ? {self.if_true} : {self.if_false}{guard}"


@dataclass
class Ret(Terminator):
    operand: Optional[int] = None

    def render(self) -> str:
        return f"ret t{self.operand}" if self.operand is not None else "ret"


@dataclass
class Unreachable(Terminator):
    def render(self) -> str:
        return "unreachable"


# ----------------------------------------------------------------------
# containers
# ----------------------------------------------------------------------

@dataclass
class Block:
    label: str
    instrs: list[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def render(self) -> str:
        lines = [f"{self.label}:"]
        for instr in self.instrs:
            lines.append(f"  {instr.render()}")
        if self.terminator is not None:
            lines.append(f"  {self.terminator.render()}")
        return "\n".join(lines)


@dataclass
class IRFunction:
    name: str
    param_count: int
    returns_value: bool
    blocks: dict[str, Block] = field(default_factory=dict)
    entry: str = "entry"
    n_temps: int = 0
    n_slots: int = 0
    slot_names: dict[int, str] = field(default_factory=dict)
    _label_counter: int = 0

    # -- construction helpers -------------------------------------------

    def new_temp(self) -> int:
        temp = self.n_temps
        self.n_temps += 1
        return temp

    def new_slot(self, name: str = "") -> int:
        slot = self.n_slots
        self.n_slots += 1
        if name:
            self.slot_names[slot] = name
        return slot

    def new_block(self, hint: str) -> Block:
        label = f"{hint}.{self._label_counter}"
        self._label_counter += 1
        block = Block(label=label)
        self.blocks[label] = block
        return block

    def block_order(self) -> list[Block]:
        """Blocks in reverse-postorder from the entry (unreachable last)."""
        seen: set[str] = set()
        order: list[str] = []

        def visit(label: str) -> None:
            if label in seen or label not in self.blocks:
                return
            seen.add(label)
            terminator = self.blocks[label].terminator
            if terminator is not None:
                for successor in terminator.successors():
                    visit(successor)
            order.append(label)

        visit(self.entry)
        ordered = list(reversed(order))
        ordered.extend(label for label in self.blocks if label not in seen)
        return [self.blocks[label] for label in ordered]

    def split_block(self, label: str, index: int, hint: str = "split") -> Block:
        """Split ``label`` before instruction ``index``; returns the new tail block."""
        block = self.blocks[label]
        if not 0 <= index <= len(block.instrs):
            raise PassError(f"split index {index} out of range in {label}")
        tail = self.new_block(hint)
        tail.instrs = block.instrs[index:]
        tail.terminator = block.terminator
        block.instrs = block.instrs[:index]
        block.terminator = Jump(target=tail.label)
        return tail

    def instructions(self) -> Iterator[tuple[Block, Instr]]:
        for block in self.blocks.values():
            for instr in block.instrs:
                yield block, instr

    def defining_instr(self, temp: int) -> Optional[Instr]:
        for _, instr in self.instructions():
            if instr.result == temp:
                return instr
        return None

    def render(self) -> str:
        header = f"function {self.name}({self.param_count} params)"
        return header + "\n" + "\n".join(block.render() for block in self.block_order())


@dataclass
class IRModule:
    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    #: enum metadata carried through for reporting
    enum_values: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        parts = [
            f"global @{g.name} (w{g.ctype.size}) = {g.initial:#x}"
            for g in self.globals.values()
        ]
        parts.extend(f.render() for f in self.functions.values())
        return "\n\n".join(parts)


__all__ = [
    "BINARY_OPS", "CMP_OPS", "CMP_INVERSE",
    "Instr", "Const", "BinOp", "Cmp",
    "LoadGlobal", "StoreGlobal", "LoadLocal", "StoreLocal",
    "RawLoad", "RawStore", "Call", "Halt",
    "Terminator", "Jump", "CondBr", "Ret", "Unreachable",
    "Block", "IRFunction", "IRModule",
]

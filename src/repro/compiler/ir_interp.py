"""IR interpreter — executes :class:`~repro.compiler.ir.IRModule` directly.

Used to (a) differentially test lowering against the AST interpreter, and
(b) verify that GlitchResistor's IR transformations preserve semantics
without going through codegen and the emulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compiler import ir
from repro.errors import PassError

WORD_MASK = 0xFFFFFFFF


class IRHalt(Exception):
    """Raised by the ``halt`` instruction."""


class IRStepLimit(Exception):
    pass


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value & (1 << 31) else value


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "lshr": lambda a, b: a >> (b & 31),
    "ashr": lambda a, b: _signed(a) >> (b & 31),
    "udiv": lambda a, b: a // b if b else _raise_div(),
    "urem": lambda a, b: a % b if b else _raise_div(),
    "sdiv": lambda a, b: _c_div(_signed(a), _signed(b)),
    "srem": lambda a, b: _signed(a) - _c_div(_signed(a), _signed(b)) * _signed(b),
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
    "slt": lambda a, b: _signed(a) < _signed(b),
    "sle": lambda a, b: _signed(a) <= _signed(b),
    "sgt": lambda a, b: _signed(a) > _signed(b),
    "sge": lambda a, b: _signed(a) >= _signed(b),
}


def _raise_div():
    raise ZeroDivisionError("division by zero")


@dataclass
class IRInterpreter:
    module: ir.IRModule
    mmio_read: Optional[Callable[[int, int], int]] = None
    mmio_write: Optional[Callable[[int, int, int], None]] = None
    step_limit: int = 2_000_000
    globals: dict[str, int] = field(default_factory=dict)
    steps: int = 0
    call_trace: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for info in self.module.globals.values():
            self.globals.setdefault(info.name, info.initial)

    # ------------------------------------------------------------------

    def run(self, entry: str = "main", args: tuple[int, ...] = ()) -> Optional[int]:
        try:
            return self.call(entry, args)
        except IRHalt:
            return None

    def call(self, name: str, args: tuple[int, ...] = ()) -> Optional[int]:
        function = self.module.functions.get(name)
        if function is None:
            if name == "__nop":
                return None
            raise PassError(f"call to unknown IR function {name!r}")
        if len(args) != function.param_count:
            raise PassError(f"{name!r} expects {function.param_count} args, got {len(args)}")
        self.call_trace.append(name)
        temps: dict[int, int] = {}
        slots: dict[int, int] = {i: (args[i] & WORD_MASK) for i in range(len(args))}
        label = function.entry
        while True:
            block = function.blocks.get(label)
            if block is None:
                raise PassError(f"jump to unknown block {label!r} in {name!r}")
            for instr in block.instrs:
                self.steps += 1
                if self.steps > self.step_limit:
                    raise IRStepLimit(f"exceeded {self.step_limit} IR steps")
                self._execute(instr, temps, slots)
            terminator = block.terminator
            if isinstance(terminator, ir.Jump):
                label = terminator.target
            elif isinstance(terminator, ir.CondBr):
                label = terminator.if_true if temps[terminator.cond] else terminator.if_false
            elif isinstance(terminator, ir.Ret):
                if terminator.operand is None:
                    return None
                return temps[terminator.operand] & WORD_MASK
            elif isinstance(terminator, ir.Unreachable):
                raise PassError(f"executed unreachable in {name!r}")
            else:
                raise PassError(f"block {label!r} has no terminator")

    # ------------------------------------------------------------------

    def _execute(self, instr: ir.Instr, temps: dict[int, int], slots: dict[int, int]) -> None:
        if isinstance(instr, ir.Const):
            temps[instr.result] = instr.value & WORD_MASK
        elif isinstance(instr, ir.BinOp):
            temps[instr.result] = _BIN[instr.op](temps[instr.lhs], temps[instr.rhs]) & WORD_MASK
        elif isinstance(instr, ir.Cmp):
            temps[instr.result] = int(_CMP[instr.op](temps[instr.lhs], temps[instr.rhs]))
        elif isinstance(instr, ir.LoadLocal):
            temps[instr.result] = slots.get(instr.slot, 0)
        elif isinstance(instr, ir.StoreLocal):
            slots[instr.slot] = temps[instr.operand] & WORD_MASK
        elif isinstance(instr, ir.LoadGlobal):
            raw = self.globals.get(instr.name, 0) & ((1 << (8 * instr.width)) - 1)
            if instr.signed and raw & (1 << (8 * instr.width - 1)):
                raw -= 1 << (8 * instr.width)
            temps[instr.result] = raw & WORD_MASK
        elif isinstance(instr, ir.StoreGlobal):
            self.globals[instr.name] = temps[instr.operand] & ((1 << (8 * instr.width)) - 1)
        elif isinstance(instr, ir.RawLoad):
            if self.mmio_read is None:
                raise PassError("mmio_load without a device map")
            value = self.mmio_read(temps[instr.address], instr.width)
            value &= (1 << (8 * instr.width)) - 1
            if instr.signed and value & (1 << (8 * instr.width - 1)):
                value -= 1 << (8 * instr.width)
            temps[instr.result] = value & WORD_MASK
        elif isinstance(instr, ir.RawStore):
            if self.mmio_write is None:
                raise PassError("mmio_store without a device map")
            self.mmio_write(
                temps[instr.address],
                instr.width,
                temps[instr.operand] & ((1 << (8 * instr.width)) - 1),
            )
        elif isinstance(instr, ir.Call):
            result = self.call(instr.func, tuple(temps[a] for a in instr.args))
            if instr.result is not None:
                temps[instr.result] = 0 if result is None else result & WORD_MASK
        elif isinstance(instr, ir.Halt):
            raise IRHalt()
        else:  # pragma: no cover
            raise PassError(f"unknown IR instruction {instr!r}")


__all__ = ["IRInterpreter", "IRHalt", "IRStepLimit"]

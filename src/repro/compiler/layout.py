"""Image layout: crt0, sections, global placement, and size accounting.

Produces the flash image the board boots:

- ``_start`` (crt0): copy the ``.data`` initialisation image from flash to
  SRAM, zero ``.bss``, optionally call ``__gr_init`` (GlitchResistor's
  boot-time hook — PRNG seed update), then ``bl main`` and halt.
- function code (+ per-function literal pools), runtime helpers.
- the ``.data`` image.

Globals live in SRAM. GlitchResistor's integrity shadows ask for the
``far`` region — a separately-placed block "to ensure that it is not
physically co-located with the initial variable" (§VI-B).

Section sizes (.text / .data / .bss) feed Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.compiler.codegen import CodegenResult, _global_symbol, generate_module
from repro.errors import LayoutError

FLASH_BASE = 0x0800_0000
SRAM_BASE = 0x2000_0000
NEAR_GLOBALS_BASE = SRAM_BASE + 0x100
FAR_GLOBALS_BASE = SRAM_BASE + 0x3000


@dataclass
class SectionSizes:
    """Byte counts per section (the paper's Table V columns)."""

    text: int = 0
    data: int = 0
    bss: int = 0

    @property
    def total(self) -> int:
        return self.text + self.data + self.bss


@dataclass
class LayoutResult:
    assembly: str
    sizes: SectionSizes
    global_addresses: dict[str, int] = field(default_factory=dict)




def layout_module(
    module: ir.IRModule,
    base: int = FLASH_BASE,
    entry_function: str = "main",
    init_function: str | None = None,
    runtime_assembly: str = "",
) -> LayoutResult:
    """Lay out ``module`` into a complete assembly program."""
    if entry_function not in module.functions:
        raise LayoutError(f"no {entry_function!r} function to boot into")
    if init_function is not None and init_function not in module.functions:
        raise LayoutError(f"init function {init_function!r} is not defined")

    addresses = _place_globals(module)
    initialized = [g for g in module.globals.values() if g.has_initializer]
    zeroed = [g for g in module.globals.values() if not g.has_initializer]

    lines: list[str] = []
    for name, address in addresses.items():
        lines.append(f".equ {_global_symbol(name)}, 0x{address:08X}")
    lines.append("")
    lines.extend(_crt0(module, addresses, entry_function, init_function))

    code = generate_module(module)
    lines.append(code.text)
    if code.used_runtime:
        if not runtime_assembly:
            raise LayoutError(
                f"module needs runtime helpers {sorted(code.used_runtime)} "
                "but no runtime assembly was provided"
            )
        lines.append(runtime_assembly)

    lines.append(".align")
    lines.append("__data_image:")
    for info in initialized:
        lines.append(f"    .word 0x{info.initial:08X}  ; {info.name}")
    lines.append("__data_image_end:")

    assembly = "\n".join(lines)

    from repro.isa.assembler import assemble

    program = assemble(assembly, base=base)
    data_bytes = 4 * len(initialized)
    sizes = SectionSizes(
        text=len(program.code) - data_bytes,
        data=data_bytes,
        bss=4 * len(zeroed),
    )
    return LayoutResult(assembly=assembly, sizes=sizes, global_addresses=addresses)


def _place_globals(module: ir.IRModule) -> dict[str, int]:
    """Assign SRAM addresses.

    Initialized near-globals come first (so crt0's copy loop is one
    contiguous run), then zero-initialized near-globals, then the ``far``
    block used by integrity shadows.
    """
    addresses: dict[str, int] = {}
    near = NEAR_GLOBALS_BASE
    ordered = [g for g in module.globals.values() if getattr(g, "region", "near") != "far"]
    initialized = [g for g in ordered if g.has_initializer]
    zeroed = [g for g in ordered if not g.has_initializer]
    for info in initialized + zeroed:
        addresses[info.name] = near
        near += 4
    if near > FAR_GLOBALS_BASE:
        raise LayoutError("near-global region overflowed into the far region")
    far = FAR_GLOBALS_BASE
    for info in module.globals.values():
        if getattr(info, "region", "near") == "far":
            addresses[info.name] = far
            far += 4
    return addresses


def _crt0(module: ir.IRModule, addresses: dict[str, int],
          entry_function: str, init_function: str | None) -> list[str]:
    ordered = [g for g in module.globals.values() if getattr(g, "region", "near") != "far"]
    initialized = [g for g in ordered if g.has_initializer]
    zeroed = [g for g in ordered if not g.has_initializer]
    far = [g for g in module.globals.values() if getattr(g, "region", "near") == "far"]

    lines = ["_start:"]
    if initialized:
        lines += [
            "    ldr r0, =__data_image",
            f"    ldr r1, ={_global_symbol(initialized[0].name)}",
            f"    movs r2, #{len(initialized)}" if len(initialized) <= 255
            else f"    ldr r2, ={len(initialized)}",
            "__crt_copy:",
            "    ldr r3, [r0]",
            "    str r3, [r1]",
            "    adds r0, #4",
            "    adds r1, #4",
            "    subs r2, r2, #1",
            "    bne __crt_copy",
        ]
    for label, group in (("__crt_zero", zeroed), ("__crt_zero_far", far)):
        if not group:
            continue
        lines += [
            f"    ldr r1, ={_global_symbol(group[0].name)}",
            f"    movs r2, #{len(group)}" if len(group) <= 255 else f"    ldr r2, ={len(group)}",
            "    movs r3, #0",
            f"{label}:",
            "    str r3, [r1]",
            "    adds r1, #4",
            "    subs r2, r2, #1",
            f"    bne {label}",
        ]
    if init_function is not None:
        lines.append(f"    bl {init_function}")
    lines += [
        f"    bl {entry_function}",
        "__crt_halt:",
        "    bkpt #0",
        "    .pool",
        "",
    ]
    return lines


__all__ = [
    "SectionSizes",
    "LayoutResult",
    "layout_module",
    "FLASH_BASE",
    "SRAM_BASE",
    "NEAR_GLOBALS_BASE",
    "FAR_GLOBALS_BASE",
]

"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import CompileError

KEYWORDS = {
    "int", "unsigned", "signed", "short", "char", "void", "volatile", "const",
    "enum", "if", "else", "while", "for", "return", "break", "continue",
}

#: multi-character operators, longest first
_OPERATORS = (
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "number" | "op" | "eof"
    text: str
    line: int
    col: int

    @property
    def value(self) -> int:
        if self.kind != "number":
            raise CompileError(f"token {self.text!r} is not a number", self.line, self.col)
        if self.text.startswith("'"):
            return ord(self.text[1:-1])
        return int(self.text, 0)


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens (comments stripped, EOF appended)."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            col = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            col += 1
            continue
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line, col)
            skipped = source[index:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            index = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += index - start
            continue
        if ch.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            elif source.startswith("0b", index) or source.startswith("0B", index):
                index += 2
                while index < length and source[index] in "01":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            # tolerate C suffixes (u, U, l, L)
            while index < length and source[index] in "uUlL":
                index += 1
            text = source[start:index].rstrip("uUlL")
            yield Token("number", text, line, col)
            col += index - start
            continue
        if ch == "'":
            if index + 2 < length and source[index + 2] == "'":
                yield Token("number", source[index:index + 3], line, col)
                index += 3
                col += 3
                continue
            if source.startswith("'\\", index):
                escape = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'"}
                if index + 3 < length and source[index + 3] == "'" and source[index + 2] in escape:
                    literal = escape[source[index + 2]]
                    yield Token("number", f"'{literal}'", line, col)
                    index += 4
                    col += 4
                    continue
            raise CompileError("malformed character literal", line, col)
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                yield Token("op", operator, line, col)
                index += len(operator)
                col += len(operator)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)


__all__ = ["Token", "tokenize", "KEYWORDS"]

"""AST → IR lowering."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compiler import ast_nodes as ast
from repro.compiler import ir
from repro.compiler.sema import BUILTINS, Program
from repro.errors import CompileError

WORD_MASK = 0xFFFFFFFF


@dataclass
class _LoopContext:
    break_target: str
    continue_target: str


class _FunctionLowerer:
    def __init__(self, program: Program, function: ast.FunctionDef):
        self.program = program
        self.function = function
        self.ir = ir.IRFunction(
            name=function.name,
            param_count=len(function.params),
            returns_value=not function.return_type.is_void,
        )
        entry = ir.Block(label="entry")
        self.ir.blocks["entry"] = entry
        self.current = entry
        self.scopes: list[dict[str, int]] = [{}]
        self.loops: list[_LoopContext] = []
        self.slot_unsigned: dict[int, bool] = {}

    # ------------------------------------------------------------------

    def run(self) -> ir.IRFunction:
        # Parameters arrive in r0-r3; codegen stores them into slots 0..n-1.
        for param in self.function.params:
            slot = self.ir.new_slot(param.name)
            self.scopes[0][param.name] = slot
            self.slot_unsigned[slot] = not param.ctype.signed
        self._block(self.function.body)
        if self.current.terminator is None:
            if self.ir.returns_value:
                zero = self._const(0)
                self.current.terminator = ir.Ret(operand=zero)
            else:
                self.current.terminator = ir.Ret()
        self._seal_dangling_blocks()
        return self.ir

    def _seal_dangling_blocks(self) -> None:
        for block in self.ir.blocks.values():
            if block.terminator is None:
                block.terminator = ir.Ret() if not self.ir.returns_value else ir.Unreachable()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _emit(self, instr: ir.Instr) -> Optional[int]:
        self.current.instrs.append(instr)
        return instr.result

    def _const(self, value: int) -> int:
        temp = self.ir.new_temp()
        self._emit(ir.Const(result=temp, value=value & WORD_MASK))
        return temp

    def _switch_to(self, block: ir.Block) -> None:
        self.current = block

    def _lookup(self, name: str) -> Optional[int]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for statement in block.statements:
            self._statement(statement)
        self.scopes.pop()

    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.Declaration):
            slot = self.ir.new_slot(stmt.name)
            self.scopes[-1][stmt.name] = slot
            self.slot_unsigned[slot] = not stmt.ctype.signed
            if stmt.init is not None:
                value, _ = self._expr(stmt.init)
                self._emit(ir.StoreLocal(slot=slot, operand=value))
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value, _ = self._expr(stmt.value)
                self.current.terminator = ir.Ret(operand=value)
            else:
                self.current.terminator = ir.Ret()
            self._switch_to(self.ir.new_block("dead"))
        elif isinstance(stmt, ast.Break):
            if not self.loops:
                raise CompileError("break outside a loop", stmt.line)
            self.current.terminator = ir.Jump(target=self.loops[-1].break_target)
            self._switch_to(self.ir.new_block("dead"))
        elif isinstance(stmt, ast.Continue):
            if not self.loops:
                raise CompileError("continue outside a loop", stmt.line)
            self.current.terminator = ir.Jump(target=self.loops[-1].continue_target)
            self._switch_to(self.ir.new_block("dead"))
        else:  # pragma: no cover
            raise CompileError(f"cannot lower statement {stmt!r}", stmt.line)

    def _if(self, stmt: ast.If) -> None:
        cond, _ = self._expr(stmt.cond)
        then_block = self.ir.new_block("if.then")
        end_block = self.ir.new_block("if.end")
        else_block = self.ir.new_block("if.else") if stmt.other is not None else end_block
        self.current.terminator = ir.CondBr(
            cond=cond, if_true=then_block.label, if_false=else_block.label
        )
        self._switch_to(then_block)
        self._statement(stmt.then)
        if self.current.terminator is None:
            self.current.terminator = ir.Jump(target=end_block.label)
        if stmt.other is not None:
            self._switch_to(else_block)
            self._statement(stmt.other)
            if self.current.terminator is None:
                self.current.terminator = ir.Jump(target=end_block.label)
        self._switch_to(end_block)

    def _while(self, stmt: ast.While) -> None:
        cond_block = self.ir.new_block("while.cond")
        body_block = self.ir.new_block("while.body")
        end_block = self.ir.new_block("while.end")
        self.current.terminator = ir.Jump(target=cond_block.label)
        self._switch_to(cond_block)
        cond, _ = self._expr(stmt.cond)
        self.current.terminator = ir.CondBr(
            cond=cond, if_true=body_block.label, if_false=end_block.label,
            is_loop_guard=True,
        )
        self.loops.append(_LoopContext(break_target=end_block.label, continue_target=cond_block.label))
        self._switch_to(body_block)
        self._statement(stmt.body)
        if self.current.terminator is None:
            self.current.terminator = ir.Jump(target=cond_block.label)
        self.loops.pop()
        self._switch_to(end_block)

    def _for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._statement(stmt.init)
        cond_block = self.ir.new_block("for.cond")
        body_block = self.ir.new_block("for.body")
        step_block = self.ir.new_block("for.step")
        end_block = self.ir.new_block("for.end")
        self.current.terminator = ir.Jump(target=cond_block.label)
        self._switch_to(cond_block)
        if stmt.cond is not None:
            cond, _ = self._expr(stmt.cond)
            self.current.terminator = ir.CondBr(
                cond=cond, if_true=body_block.label, if_false=end_block.label,
                is_loop_guard=True,
            )
        else:
            self.current.terminator = ir.Jump(target=body_block.label)
        self.loops.append(_LoopContext(break_target=end_block.label, continue_target=step_block.label))
        self._switch_to(body_block)
        self._statement(stmt.body)
        if self.current.terminator is None:
            self.current.terminator = ir.Jump(target=step_block.label)
        self._switch_to(step_block)
        if stmt.step is not None:
            self._expr(stmt.step)
        self.current.terminator = ir.Jump(target=cond_block.label)
        self.loops.pop()
        self._switch_to(end_block)
        self.scopes.pop()

    # ------------------------------------------------------------------
    # expressions → (temp, is_unsigned)
    # ------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> tuple[int, bool]:
        if isinstance(expr, ast.NumberLit):
            return self._const(expr.value), expr.value >= (1 << 31)
        if isinstance(expr, ast.Name):
            return self._name_value(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._ternary(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.MMIODeref):
            address, _ = self._expr(expr.address)
            temp = self.ir.new_temp()
            self._emit(
                ir.RawLoad(
                    result=temp, address=address,
                    width=max(1, expr.target_type.size),
                    signed=expr.target_type.signed,
                )
            )
            return temp, not expr.target_type.signed
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        raise CompileError(f"cannot lower expression {expr!r}", expr.line)  # pragma: no cover

    def _name_value(self, expr: ast.Name) -> tuple[int, bool]:
        slot = self._lookup(expr.ident)
        if slot is not None:
            temp = self.ir.new_temp()
            self._emit(ir.LoadLocal(result=temp, slot=slot))
            return temp, self.slot_unsigned.get(slot, False)
        if expr.ident in self.program.enum_values:
            return self._const(self.program.enum_values[expr.ident]), False
        info = self.program.globals.get(expr.ident)
        if info is None:
            raise CompileError(f"undefined identifier {expr.ident!r}", expr.line)
        temp = self.ir.new_temp()
        self._emit(
            ir.LoadGlobal(
                result=temp, name=info.name, width=info.ctype.size,
                signed=info.ctype.signed, volatile=info.ctype.volatile,
            )
        )
        return temp, not info.ctype.signed

    def _unary(self, expr: ast.Unary) -> tuple[int, bool]:
        operand, unsigned = self._expr(expr.operand)
        temp = self.ir.new_temp()
        if expr.op == "-":
            zero = self._const(0)
            self._emit(ir.BinOp(result=temp, op="sub", lhs=zero, rhs=operand))
            return temp, unsigned
        if expr.op == "~":
            ones = self._const(WORD_MASK)
            self._emit(ir.BinOp(result=temp, op="xor", lhs=operand, rhs=ones))
            return temp, unsigned
        if expr.op == "!":
            zero = self._const(0)
            self._emit(ir.Cmp(result=temp, op="eq", lhs=operand, rhs=zero))
            return temp, False
        raise CompileError(f"unsupported unary operator {expr.op!r}", expr.line)

    _CMP_MAP = {
        "==": ("eq", "eq"), "!=": ("ne", "ne"),
        "<": ("slt", "ult"), "<=": ("sle", "ule"),
        ">": ("sgt", "ugt"), ">=": ("sge", "uge"),
    }

    def _binary(self, expr: ast.Binary) -> tuple[int, bool]:
        if expr.op in ("&&", "||"):
            return self._short_circuit(expr)
        left, left_unsigned = self._expr(expr.left)
        right, right_unsigned = self._expr(expr.right)
        unsigned = left_unsigned or right_unsigned
        temp = self.ir.new_temp()
        if expr.op in self._CMP_MAP:
            signed_op, unsigned_op = self._CMP_MAP[expr.op]
            self._emit(
                ir.Cmp(
                    result=temp, op=unsigned_op if unsigned else signed_op,
                    lhs=left, rhs=right,
                )
            )
            return temp, False
        op = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "udiv" if unsigned else "sdiv",
            "%": "urem" if unsigned else "srem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "lshr" if unsigned else "ashr",
        }.get(expr.op)
        if op is None:
            raise CompileError(f"unsupported binary operator {expr.op!r}", expr.line)
        self._emit(ir.BinOp(result=temp, op=op, lhs=left, rhs=right))
        return temp, unsigned

    def _short_circuit(self, expr: ast.Binary) -> tuple[int, bool]:
        slot = self.ir.new_slot()
        right_block = self.ir.new_block("sc.rhs")
        end_block = self.ir.new_block("sc.end")
        left, _ = self._expr(expr.left)
        zero = self._const(0)
        left_bool = self.ir.new_temp()
        self._emit(ir.Cmp(result=left_bool, op="ne", lhs=left, rhs=zero))
        self._emit(ir.StoreLocal(slot=slot, operand=left_bool))
        if expr.op == "&&":
            self.current.terminator = ir.CondBr(
                cond=left_bool, if_true=right_block.label, if_false=end_block.label
            )
        else:
            self.current.terminator = ir.CondBr(
                cond=left_bool, if_true=end_block.label, if_false=right_block.label
            )
        self._switch_to(right_block)
        right, _ = self._expr(expr.right)
        zero2 = self._const(0)
        right_bool = self.ir.new_temp()
        self._emit(ir.Cmp(result=right_bool, op="ne", lhs=right, rhs=zero2))
        self._emit(ir.StoreLocal(slot=slot, operand=right_bool))
        self.current.terminator = ir.Jump(target=end_block.label)
        self._switch_to(end_block)
        temp = self.ir.new_temp()
        self._emit(ir.LoadLocal(result=temp, slot=slot))
        return temp, False

    def _ternary(self, expr: ast.Conditional) -> tuple[int, bool]:
        slot = self.ir.new_slot()
        cond, _ = self._expr(expr.cond)
        then_block = self.ir.new_block("sel.then")
        else_block = self.ir.new_block("sel.else")
        end_block = self.ir.new_block("sel.end")
        self.current.terminator = ir.CondBr(
            cond=cond, if_true=then_block.label, if_false=else_block.label
        )
        self._switch_to(then_block)
        then_value, then_unsigned = self._expr(expr.then)
        self._emit(ir.StoreLocal(slot=slot, operand=then_value))
        self.current.terminator = ir.Jump(target=end_block.label)
        self._switch_to(else_block)
        else_value, else_unsigned = self._expr(expr.other)
        self._emit(ir.StoreLocal(slot=slot, operand=else_value))
        self.current.terminator = ir.Jump(target=end_block.label)
        self._switch_to(end_block)
        temp = self.ir.new_temp()
        self._emit(ir.LoadLocal(result=temp, slot=slot))
        return temp, then_unsigned or else_unsigned

    def _call(self, expr: ast.Call) -> tuple[int, bool]:
        if expr.func == "__halt":
            self._emit(ir.Halt())
            return self._const(0), False
        args = tuple(self._expr(arg)[0] for arg in expr.args)
        info = self.program.functions.get(expr.func)
        returns_value = (
            info is not None and not info.return_type.is_void
            if info is not None
            else not BUILTINS[expr.func][0].is_void
        )
        result = self.ir.new_temp() if returns_value else None
        self._emit(ir.Call(result=result, func=expr.func, args=args))
        if result is None:
            return self._const(0), False
        unsigned = info is not None and not info.return_type.signed
        return result, unsigned

    def _assign(self, expr: ast.Assign) -> tuple[int, bool]:
        if expr.op != "=":
            # compound assignment: lhs = lhs <op> value
            base_op = expr.op[:-1]
            read = (
                ast.Name(line=expr.line, ident=expr.lhs.ident)
                if isinstance(expr.lhs, ast.Name)
                else ast.MMIODeref(
                    line=expr.line,
                    target_type=expr.lhs.target_type,
                    address=expr.lhs.address,
                )
            )
            value_expr = ast.Binary(line=expr.line, op=base_op, left=read, right=expr.value)
        else:
            value_expr = expr.value
        value, unsigned = self._expr(value_expr)

        if isinstance(expr.lhs, ast.Name):
            slot = self._lookup(expr.lhs.ident)
            if slot is not None:
                self._emit(ir.StoreLocal(slot=slot, operand=value))
                return value, unsigned
            info = self.program.globals.get(expr.lhs.ident)
            if info is None:
                raise CompileError(f"undefined identifier {expr.lhs.ident!r}", expr.line)
            self._emit(
                ir.StoreGlobal(
                    name=info.name, operand=value, width=info.ctype.size,
                    volatile=info.ctype.volatile,
                )
            )
            return value, unsigned
        address, _ = self._expr(expr.lhs.address)
        self._emit(
            ir.RawStore(
                address=address, operand=value,
                width=max(1, expr.lhs.target_type.size),
            )
        )
        return value, unsigned


def lower(program: Program) -> ir.IRModule:
    """Lower an analyzed program to an IR module."""
    module = ir.IRModule(
        globals=dict(program.globals),
        enum_values=dict(program.enum_values),
    )
    for function in program.unit.functions():
        module.functions[function.name] = _FunctionLowerer(program, function).run()
    return module


__all__ = ["lower"]

"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import Optional

from repro.compiler import ast_nodes as ast
from repro.compiler.lexer import Token, tokenize
from repro.errors import CompileError

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_TYPE_KEYWORDS = {"int", "unsigned", "signed", "short", "char", "void", "volatile", "const"}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.current
        if token.text != text:
            raise CompileError(f"expected {text!r}, found {token.text!r}", token.line, token.col)
        return self.advance()

    def accept(self, text: str) -> bool:
        if self.current.text == text:
            self.advance()
            return True
        return False

    def at_type(self) -> bool:
        return self.current.kind == "keyword" and self.current.text in _TYPE_KEYWORDS

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.current.kind != "eof":
            if self.current.text == "enum" and self._is_enum_definition():
                unit.items.append(self._enum_definition())
                continue
            unit.items.append(self._function_or_global())
        return unit

    def _is_enum_definition(self) -> bool:
        # `enum [Name] {` at top level is a definition; `enum Name ident`
        # would be a variable declaration of enum type (treated as int).
        offset = 1
        if self.peek(offset).kind == "ident":
            offset += 1
        return self.peek(offset).text == "{"

    def _enum_definition(self) -> ast.EnumDef:
        start = self.expect("enum")
        name = None
        if self.current.kind == "ident":
            name = self.advance().text
        self.expect("{")
        enumerators: list[ast.Enumerator] = []
        while not self.accept("}"):
            ident = self.advance()
            if ident.kind != "ident":
                raise CompileError(f"expected enumerator name, found {ident.text!r}", ident.line, ident.col)
            value = None
            if self.accept("="):
                value = self._expression()
            enumerators.append(ast.Enumerator(name=ident.text, value=value, line=ident.line))
            if not self.accept(","):
                self.expect("}")
                break
        self.expect(";")
        return ast.EnumDef(name=name, enumerators=enumerators, line=start.line)

    def _function_or_global(self):
        line = self.current.line
        ctype = self._type()
        ident = self.advance()
        if ident.kind != "ident":
            raise CompileError(f"expected identifier, found {ident.text!r}", ident.line, ident.col)
        if self.current.text == "(":
            return self._function(ctype, ident.text, line)
        init = None
        if self.accept("="):
            init = self._expression()
        self.expect(";")
        return ast.GlobalVar(ctype=ctype, name=ident.text, init=init, line=line)

    def _function(self, return_type: ast.CType, name: str, line: int) -> ast.FunctionDef:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.accept(")"):
            if self.current.text == "void" and self.peek().text == ")":
                self.advance()
                self.expect(")")
            else:
                while True:
                    ptype = self._type()
                    pname = self.advance()
                    if pname.kind != "ident":
                        raise CompileError(
                            f"expected parameter name, found {pname.text!r}", pname.line, pname.col
                        )
                    params.append(ast.Param(ctype=ptype, name=pname.text))
                    if not self.accept(","):
                        break
                self.expect(")")
        if self.accept(";"):
            return ast.FunctionDef(name=name, return_type=return_type, params=params, body=None, line=line)
        body = self._block()
        return ast.FunctionDef(name=name, return_type=return_type, params=params, body=body, line=line)

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def _type(self) -> ast.CType:
        volatile = False
        const = False
        signed: Optional[bool] = None
        base: Optional[str] = None
        while self.at_type() or self.current.text == "enum":
            text = self.current.text
            if text == "volatile":
                volatile = True
            elif text == "const":
                const = True
            elif text == "unsigned":
                signed = False
            elif text == "signed":
                signed = True
            elif text == "enum":
                self.advance()
                if self.current.kind == "ident":
                    self.advance()
                base = "int"
                continue
            elif text in ("int", "short", "char", "void"):
                if base is not None and not (base == "short" and text == "int"):
                    raise CompileError(
                        f"duplicate type keyword {text!r}", self.current.line, self.current.col
                    )
                if not (base == "short" and text == "int"):
                    base = text
            self.advance()
        if base is None:
            if signed is None and not volatile and not const:
                token = self.current
                raise CompileError(f"expected a type, found {token.text!r}", token.line, token.col)
            base = "int"
        if signed is None:
            signed = True
        return ast.CType(base, signed=signed, volatile=volatile, const=const)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _block(self) -> ast.Block:
        start = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.accept("}"):
            statements.append(self._statement())
        return ast.Block(line=start.line, statements=statements)

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.text == "{":
            return self._block()
        if token.text == "if":
            return self._if()
        if token.text == "while":
            return self._while()
        if token.text == "for":
            return self._for()
        if token.text == "return":
            self.advance()
            value = None if self.current.text == ";" else self._expression()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if token.text == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.text == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if token.text == ";":
            self.advance()
            return ast.Block(line=token.line, statements=[])
        if self.at_type():
            return self._declaration()
        expr = self._expression()
        self.expect(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _declaration(self) -> ast.Declaration:
        line = self.current.line
        ctype = self._type()
        name = self.advance()
        if name.kind != "ident":
            raise CompileError(f"expected variable name, found {name.text!r}", name.line, name.col)
        init = None
        if self.accept("="):
            init = self._expression()
        self.expect(";")
        return ast.Declaration(line=line, ctype=ctype, name=name.text, init=init)

    def _if(self) -> ast.If:
        start = self.expect("if")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then = self._statement()
        other = self._statement() if self.accept("else") else None
        return ast.If(line=start.line, cond=cond, then=then, other=other)

    def _while(self) -> ast.While:
        start = self.expect("while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._statement()
        return ast.While(line=start.line, cond=cond, body=body)

    def _for(self) -> ast.For:
        start = self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.accept(";"):
            if self.at_type():
                init = self._declaration()
            else:
                init = ast.ExprStmt(line=self.current.line, expr=self._expression())
                self.expect(";")
        cond = None if self.current.text == ";" else self._expression()
        self.expect(";")
        step = None if self.current.text == ")" else self._expression()
        self.expect(")")
        body = self._statement()
        return ast.For(line=start.line, init=init, cond=cond, step=step, body=body)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._ternary()
        if self.current.text in _ASSIGN_OPS:
            op = self.advance().text
            if not isinstance(left, (ast.Name, ast.MMIODeref)):
                raise CompileError(
                    "assignment target must be a variable or MMIO dereference",
                    self.current.line, self.current.col,
                )
            value = self._assignment()
            return ast.Assign(line=left.line, lhs=left, op=op, value=value)
        return left

    def _ternary(self) -> ast.Expr:
        cond = self._binary(1)
        if self.accept("?"):
            then = self._expression()
            self.expect(":")
            other = self._ternary()
            return ast.Conditional(line=cond.line, cond=cond, then=then, other=other)
        return cond

    def _binary(self, min_precedence: int) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.current.text
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            line = self.current.line
            self.advance()
            right = self._binary(precedence + 1)
            left = ast.Binary(line=line, op=op, left=left, right=right)

    def _unary(self) -> ast.Expr:
        token = self.current
        if token.text in ("!", "~", "-", "+"):
            self.advance()
            operand = self._unary()
            if token.text == "+":
                return operand
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.text == "*":
            # the MMIO idiom: *(volatile TYPE *) expr
            return self._mmio_deref()
        return self._postfix()

    def _mmio_deref(self) -> ast.MMIODeref:
        star = self.expect("*")
        self.expect("(")
        ctype = self._type()
        self.expect("*")
        self.expect(")")
        address = self._unary()
        return ast.MMIODeref(line=star.line, target_type=ctype, address=address)

    def _postfix(self) -> ast.Expr:
        token = self.current
        if token.text == "(":
            # parenthesized expression (casts to int are tolerated and ignored)
            self.advance()
            if self.at_type():
                self._type()
                self.expect(")")
                return self._unary()
            expr = self._expression()
            self.expect(")")
            return expr
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(line=token.line, value=token.value)
        if token.kind == "ident":
            self.advance()
            if self.current.text == "(":
                return self._call(token)
            return ast.Name(line=token.line, ident=token.text)
        raise CompileError(f"unexpected token {token.text!r}", token.line, token.col)

    def _call(self, name: Token) -> ast.Call:
        self.expect("(")
        args: list[ast.Expr] = []
        if not self.accept(")"):
            while True:
                args.append(self._expression())
                if not self.accept(","):
                    break
            self.expect(")")
        return ast.Call(line=name.line, func=name.text, args=args)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC ``source`` into a translation unit."""
    return Parser(source).parse()


__all__ = ["Parser", "parse"]

"""IR pass framework plus the baseline optimisation passes.

GlitchResistor's defenses (in :mod:`repro.resistor`) are passes in the same
framework — exactly how the paper layers its defenses as LLVM
``FunctionPass``/``ModulePass`` plugins.
"""

from repro.compiler.passes.pass_manager import IRPass, PassManager
from repro.compiler.passes.constfold import ConstantFoldPass
from repro.compiler.passes.dce import DeadCodeEliminationPass

DEFAULT_OPTIMIZATIONS = (ConstantFoldPass, DeadCodeEliminationPass)

__all__ = [
    "IRPass",
    "PassManager",
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "DEFAULT_OPTIMIZATIONS",
]

"""Constant folding over the IR.

Folds ``BinOp``/``Cmp`` whose operands are ``Const`` definitions in the
same function, iterating to a fixed point. Volatile loads are opaque, so
GlitchResistor's redundancy code (whose loads are marked volatile, as the
paper requires) survives folding untouched.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.ir_interp import _BIN, _CMP
from repro.compiler.passes.pass_manager import IRPass

WORD_MASK = 0xFFFFFFFF


class ConstantFoldPass(IRPass):
    name = "constfold"

    def run(self, module: ir.IRModule) -> str:
        folded = 0
        for function in module.functions.values():
            folded += self._fold_function(function)
        return f"folded {folded} instructions"

    def _fold_function(self, function: ir.IRFunction) -> int:
        folded = 0
        changed = True
        while changed:
            changed = False
            constants: dict[int, int] = {}
            for block in function.blocks.values():
                for instr in block.instrs:
                    if isinstance(instr, ir.Const):
                        constants[instr.result] = instr.value
            for block in function.blocks.values():
                for index, instr in enumerate(block.instrs):
                    replacement = self._try_fold(instr, constants)
                    if replacement is not None:
                        block.instrs[index] = replacement
                        folded += 1
                        changed = True
        return folded

    def _try_fold(self, instr: ir.Instr, constants: dict[int, int]):
        if isinstance(instr, ir.BinOp) and instr.lhs in constants and instr.rhs in constants:
            try:
                value = _BIN[instr.op](constants[instr.lhs], constants[instr.rhs]) & WORD_MASK
            except ZeroDivisionError:
                return None  # leave the trap to runtime
            return ir.Const(result=instr.result, value=value)
        if isinstance(instr, ir.Cmp) and instr.lhs in constants and instr.rhs in constants:
            value = int(_CMP[instr.op](constants[instr.lhs], constants[instr.rhs]))
            return ir.Const(result=instr.result, value=value)
        return None


__all__ = ["ConstantFoldPass"]

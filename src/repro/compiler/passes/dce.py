"""Dead-code elimination.

Removes (a) blocks unreachable from the entry and (b) side-effect-free
instructions whose results are never used. Side effects — stores, MMIO,
calls, ``halt``, and *volatile* loads — are never removed; this is the
property the paper relies on when it marks its redundancy instrumentation
volatile so "code added for redundancy is not optimized out".
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass


def _has_side_effects(instr: ir.Instr) -> bool:
    if isinstance(instr, (ir.StoreGlobal, ir.StoreLocal, ir.RawStore, ir.Call, ir.Halt)):
        return True
    if isinstance(instr, ir.LoadGlobal) and instr.volatile:
        return True
    if isinstance(instr, ir.RawLoad):
        return True  # MMIO reads always have side effects
    return False


class DeadCodeEliminationPass(IRPass):
    name = "dce"

    def run(self, module: ir.IRModule) -> str:
        removed_instrs = 0
        removed_blocks = 0
        for function in module.functions.values():
            removed_blocks += self._remove_unreachable(function)
            removed_instrs += self._remove_dead(function)
        return f"removed {removed_instrs} instructions, {removed_blocks} blocks"

    def _remove_unreachable(self, function: ir.IRFunction) -> int:
        reachable: set[str] = set()
        worklist = [function.entry]
        while worklist:
            label = worklist.pop()
            if label in reachable or label not in function.blocks:
                continue
            reachable.add(label)
            terminator = function.blocks[label].terminator
            if terminator is not None:
                worklist.extend(terminator.successors())
        dead = [label for label in function.blocks if label not in reachable]
        for label in dead:
            del function.blocks[label]
        return len(dead)

    def _remove_dead(self, function: ir.IRFunction) -> int:
        removed = 0
        changed = True
        while changed:
            changed = False
            used: set[int] = set()
            for block in function.blocks.values():
                for instr in block.instrs:
                    used.update(instr.operands())
                terminator = block.terminator
                if isinstance(terminator, ir.CondBr):
                    used.add(terminator.cond)
                elif isinstance(terminator, ir.Ret) and terminator.operand is not None:
                    used.add(terminator.operand)
            for block in function.blocks.values():
                keep: list[ir.Instr] = []
                for instr in block.instrs:
                    if (
                        instr.result is not None
                        and instr.result not in used
                        and not _has_side_effects(instr)
                    ):
                        removed += 1
                        changed = True
                        continue
                    keep.append(instr)
                block.instrs = keep
        return removed


__all__ = ["DeadCodeEliminationPass"]

"""Pass manager: runs module passes in order and records what they did."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import IRModule


class IRPass:
    """Base class for module passes. Subclasses set :attr:`name` and
    implement :meth:`run`, returning a short human-readable note."""

    name = "pass"

    def run(self, module: IRModule) -> str:
        raise NotImplementedError


@dataclass
class PassManager:
    passes: list[IRPass] = field(default_factory=list)
    log: list[tuple[str, str]] = field(default_factory=list)

    def add(self, ir_pass: IRPass) -> "PassManager":
        self.passes.append(ir_pass)
        return self

    def run(self, module: IRModule) -> IRModule:
        for ir_pass in self.passes:
            note = ir_pass.run(module)
            self.log.append((ir_pass.name, note or ""))
        return module

    def report(self) -> str:
        return "\n".join(f"{name}: {note}" for name, note in self.log)


__all__ = ["IRPass", "PassManager"]

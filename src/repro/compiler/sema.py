"""Semantic analysis: symbol resolution, enum expansion, constant evaluation.

Produces a :class:`Program` — the analyzed translation unit plus the symbol
information lowering needs. MiniC's type discipline is C-like and lenient:
everything is an integer; widths matter only for global storage and MMIO
access sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.compiler import ast_nodes as ast
from repro.errors import CompileError

#: builtin functions lowering knows how to emit
BUILTINS = {
    "__halt": (ast.VOID, 0),
    "__nop": (ast.VOID, 0),
}


@dataclass
class GlobalInfo:
    name: str
    ctype: ast.CType
    initial: int  # evaluated initializer (0 if none)
    has_initializer: bool
    sensitive: bool = False  # set by GlitchResistor's config


@dataclass
class FunctionInfo:
    name: str
    return_type: ast.CType
    param_count: int
    defined: bool


@dataclass
class Program:
    """An analyzed translation unit."""

    unit: ast.TranslationUnit
    enum_values: dict[str, int] = field(default_factory=dict)
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def constant_value(self, name: str) -> Optional[int]:
        return self.enum_values.get(name)


class _Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.program = Program(unit=unit)

    def run(self) -> Program:
        self._collect_enums()
        self._collect_globals()
        self._collect_functions()
        for function in self.unit.functions():
            self._check_function(function)
        return self.program

    # ------------------------------------------------------------------

    def _collect_enums(self) -> None:
        for enum in self.unit.enums():
            next_value = 0
            for enumerator in enum.enumerators:
                if enumerator.name in self.program.enum_values:
                    raise CompileError(
                        f"duplicate enumerator {enumerator.name!r}", enumerator.line
                    )
                if enumerator.value is not None:
                    next_value = self.eval_constant(enumerator.value)
                self.program.enum_values[enumerator.name] = next_value
                next_value += 1

    def _collect_globals(self) -> None:
        for item in self.unit.globals():
            if item.name in self.program.globals:
                raise CompileError(f"duplicate global {item.name!r}", item.line)
            if item.ctype.is_void:
                raise CompileError(f"global {item.name!r} cannot be void", item.line)
            initial = 0
            if item.init is not None:
                initial = self.eval_constant(item.init) & ((1 << (8 * item.ctype.size)) - 1)
            self.program.globals[item.name] = GlobalInfo(
                name=item.name,
                ctype=item.ctype,
                initial=initial,
                has_initializer=item.init is not None,
            )

    def _collect_functions(self) -> None:
        for item in self.unit.items:
            if not isinstance(item, ast.FunctionDef):
                continue
            existing = self.program.functions.get(item.name)
            info = FunctionInfo(
                name=item.name,
                return_type=item.return_type,
                param_count=len(item.params),
                defined=item.body is not None,
            )
            if existing is not None:
                if existing.param_count != info.param_count:
                    raise CompileError(
                        f"conflicting declarations of {item.name!r}", item.line
                    )
                if existing.defined and info.defined:
                    raise CompileError(f"redefinition of {item.name!r}", item.line)
                if info.defined:
                    self.program.functions[item.name] = info
            else:
                self.program.functions[item.name] = info
            if info.param_count > 4:
                raise CompileError(
                    f"function {item.name!r} has more than 4 parameters "
                    "(MiniC passes arguments in r0-r3)", item.line,
                )

    # ------------------------------------------------------------------

    def _check_function(self, function: ast.FunctionDef) -> None:
        scope = {param.name for param in function.params}
        if len(scope) != len(function.params):
            raise CompileError(f"duplicate parameter in {function.name!r}", function.line)
        self._check_block(function.body, [scope], function)

    def _check_block(self, block: ast.Block, scopes: list[set[str]], function: ast.FunctionDef) -> None:
        scopes.append(set())
        for statement in block.statements:
            self._check_statement(statement, scopes, function)
        scopes.pop()

    def _check_statement(self, stmt: ast.Stmt, scopes: list[set[str]], function: ast.FunctionDef) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scopes, function)
        elif isinstance(stmt, ast.Declaration):
            if stmt.name in scopes[-1]:
                raise CompileError(f"redeclaration of {stmt.name!r}", stmt.line)
            if stmt.init is not None:
                self._check_expression(stmt.init, scopes)
            scopes[-1].add(stmt.name)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expression(stmt.expr, scopes)
        elif isinstance(stmt, ast.If):
            self._check_expression(stmt.cond, scopes)
            self._check_statement(stmt.then, scopes, function)
            if stmt.other is not None:
                self._check_statement(stmt.other, scopes, function)
        elif isinstance(stmt, ast.While):
            self._check_expression(stmt.cond, scopes)
            self._check_statement(stmt.body, scopes, function)
        elif isinstance(stmt, ast.For):
            scopes.append(set())
            if stmt.init is not None:
                self._check_statement(stmt.init, scopes, function)
            if stmt.cond is not None:
                self._check_expression(stmt.cond, scopes)
            if stmt.step is not None:
                self._check_expression(stmt.step, scopes)
            self._check_statement(stmt.body, scopes, function)
            scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if function.return_type.is_void:
                    raise CompileError(
                        f"void function {function.name!r} returns a value", stmt.line
                    )
                self._check_expression(stmt.value, scopes)
            elif not function.return_type.is_void:
                raise CompileError(
                    f"non-void function {function.name!r} returns nothing", stmt.line
                )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unknown statement {stmt!r}", stmt.line)

    def _check_expression(self, expr: ast.Expr, scopes: list[set[str]]) -> None:
        if isinstance(expr, ast.NumberLit):
            return
        if isinstance(expr, ast.Name):
            if not self._resolves(expr.ident, scopes):
                raise CompileError(f"undefined identifier {expr.ident!r}", expr.line)
            return
        if isinstance(expr, ast.Unary):
            self._check_expression(expr.operand, scopes)
            return
        if isinstance(expr, ast.Binary):
            self._check_expression(expr.left, scopes)
            self._check_expression(expr.right, scopes)
            return
        if isinstance(expr, ast.Conditional):
            self._check_expression(expr.cond, scopes)
            self._check_expression(expr.then, scopes)
            self._check_expression(expr.other, scopes)
            return
        if isinstance(expr, ast.Call):
            if expr.func not in self.program.functions and expr.func not in BUILTINS:
                raise CompileError(f"call to undefined function {expr.func!r}", expr.line)
            expected = (
                self.program.functions[expr.func].param_count
                if expr.func in self.program.functions
                else BUILTINS[expr.func][1]
            )
            if len(expr.args) != expected:
                raise CompileError(
                    f"{expr.func!r} expects {expected} arguments, got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self._check_expression(arg, scopes)
            return
        if isinstance(expr, ast.MMIODeref):
            self._check_expression(expr.address, scopes)
            return
        if isinstance(expr, ast.Assign):
            if isinstance(expr.lhs, ast.Name):
                if not self._resolves(expr.lhs.ident, scopes):
                    raise CompileError(f"undefined identifier {expr.lhs.ident!r}", expr.line)
                if expr.lhs.ident in self.program.enum_values:
                    raise CompileError(
                        f"cannot assign to enumerator {expr.lhs.ident!r}", expr.line
                    )
                info = self.program.globals.get(expr.lhs.ident)
                if info is not None and info.ctype.const:
                    raise CompileError(f"assignment to const {expr.lhs.ident!r}", expr.line)
            else:
                self._check_expression(expr.lhs.address, scopes)
            self._check_expression(expr.value, scopes)
            return
        raise CompileError(f"unknown expression {expr!r}", expr.line)  # pragma: no cover

    def _resolves(self, name: str, scopes: list[set[str]]) -> bool:
        if any(name in scope for scope in scopes):
            return True
        return name in self.program.globals or name in self.program.enum_values

    # ------------------------------------------------------------------

    def eval_constant(self, expr: ast.Expr) -> int:
        """Fold a compile-time constant expression (enums allowed)."""
        if isinstance(expr, ast.NumberLit):
            return expr.value
        if isinstance(expr, ast.Name):
            value = self.program.enum_values.get(expr.ident)
            if value is None:
                raise CompileError(f"{expr.ident!r} is not a constant", expr.line)
            return value
        if isinstance(expr, ast.Unary):
            operand = self.eval_constant(expr.operand)
            if expr.op == "-":
                return -operand
            if expr.op == "~":
                return ~operand
            if expr.op == "!":
                return 0 if operand else 1
        if isinstance(expr, ast.Binary):
            left = self.eval_constant(expr.left)
            right = self.eval_constant(expr.right)
            return _fold_binary(expr.op, left, right, expr.line)
        raise CompileError("expression is not a compile-time constant", expr.line)


def _fold_binary(op: str, left: int, right: int, line: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op in ("/", "%"):
        if right == 0:
            raise CompileError("constant division by zero", line)
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        if op == "/":
            return quotient
        return left - quotient * right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << (right & 31)
    if op == ">>":
        return left >> (right & 31)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise CompileError(f"unsupported constant operator {op!r}", line)


def analyze(unit: ast.TranslationUnit) -> Program:
    """Run semantic analysis over a parsed translation unit."""
    return _Analyzer(unit).run()


__all__ = ["Program", "GlobalInfo", "FunctionInfo", "analyze", "BUILTINS"]

"""Architectural (non-pipelined) Thumb CPU emulator.

This is the Unicorn replacement used by the Section IV glitch-emulation
campaigns: it executes decoded instructions one at a time against a mapped
memory space and surfaces abnormal conditions as the typed faults the
campaign classifier understands (bad fetch / bad read / invalid
instruction / ...).

The cycle-accurate pipelined core used for the "real-world" experiments
lives in :mod:`repro.hw.pipeline` and reuses this package's memory model
and instruction semantics.
"""

from repro.emu.memory import Memory, MemoryRegion, MMIORegion
from repro.emu.cpu import CPU, RunResult

__all__ = ["Memory", "MemoryRegion", "MMIORegion", "CPU", "RunResult"]

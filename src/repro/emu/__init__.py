"""Architectural (non-pipelined) Thumb CPU emulator.

This is the Unicorn replacement used by the Section IV glitch-emulation
campaigns: it executes decoded instructions one at a time against a mapped
memory space and surfaces abnormal conditions as the typed faults the
campaign classifier understands (bad fetch / bad read / invalid
instruction / ...).

The cycle-accurate pipelined core used for the "real-world" experiments
lives in :mod:`repro.hw.pipeline` and reuses this package's memory model
and instruction semantics.

Campaign hot paths use the snapshot engine
(:meth:`Memory.snapshot`/:meth:`Memory.restore`,
:meth:`CPU.snapshot`/:meth:`CPU.reset_from`, and ``CPU.decode_cache``)
to replay thousands of corrupted executions against one pre-built
machine instead of rebuilding it per attempt; see
``docs/ARCHITECTURE.md`` for the invariants.
"""

from repro.emu.memory import Memory, MemoryRegion, MemorySnapshot, MMIORegion, PAGE_SIZE
from repro.emu.cpu import CPU, CPUSnapshot, RunResult

__all__ = [
    "Memory",
    "MemoryRegion",
    "MemorySnapshot",
    "MMIORegion",
    "PAGE_SIZE",
    "CPU",
    "CPUSnapshot",
    "RunResult",
]

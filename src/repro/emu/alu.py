"""ALU helpers implementing the ARM flag semantics for Thumb data processing.

Every function operates on 32-bit unsigned words and returns the result plus
whichever flags the operation defines, matching the ARM ARM pseudocode
(``AddWithCarry``, ``Shift_C``).
"""

from __future__ import annotations

from repro.bits import truncate

WORD = 32
WORD_MASK = 0xFFFFFFFF


def add_with_carry(a: int, b: int, carry_in: bool) -> tuple[int, bool, bool]:
    """ARM ``AddWithCarry``: returns ``(result, carry_out, overflow)``."""
    a &= WORD_MASK
    b &= WORD_MASK
    unsigned_sum = a + b + (1 if carry_in else 0)
    result = unsigned_sum & WORD_MASK
    carry_out = unsigned_sum > WORD_MASK
    signed_a = _signed(a)
    signed_b = _signed(b)
    signed_sum = signed_a + signed_b + (1 if carry_in else 0)
    overflow = not (-(1 << 31) <= signed_sum < (1 << 31))
    return result, carry_out, overflow


def subtract(a: int, b: int) -> tuple[int, bool, bool]:
    """``a - b`` via ``AddWithCarry(a, ~b, 1)`` — carry means *no borrow*."""
    return add_with_carry(a, (~b) & WORD_MASK, True)


def lsl_carry(value: int, amount: int, carry_in: bool) -> tuple[int, bool]:
    """Logical shift left with carry-out; ``amount`` may exceed 32."""
    value &= WORD_MASK
    if amount == 0:
        return value, carry_in
    if amount < WORD:
        result = truncate(value << amount, WORD)
        carry = bool((value >> (WORD - amount)) & 1)
        return result, carry
    if amount == WORD:
        return 0, bool(value & 1)
    return 0, False


def lsr_carry(value: int, amount: int, carry_in: bool) -> tuple[int, bool]:
    """Logical shift right with carry-out; ``amount`` may exceed 32."""
    value &= WORD_MASK
    if amount == 0:
        return value, carry_in
    if amount < WORD:
        return value >> amount, bool((value >> (amount - 1)) & 1)
    if amount == WORD:
        return 0, bool((value >> 31) & 1)
    return 0, False


def asr_carry(value: int, amount: int, carry_in: bool) -> tuple[int, bool]:
    """Arithmetic shift right with carry-out; amounts ≥ 32 saturate to the sign."""
    value &= WORD_MASK
    if amount == 0:
        return value, carry_in
    sign = (value >> 31) & 1
    if amount >= WORD:
        result = WORD_MASK if sign else 0
        return result, bool(sign)
    result = (_signed(value) >> amount) & WORD_MASK
    carry = bool((value >> (amount - 1)) & 1)
    return result, carry


def ror_carry(value: int, amount: int, carry_in: bool) -> tuple[int, bool]:
    """Rotate right with carry-out."""
    value &= WORD_MASK
    if amount == 0:
        return value, carry_in
    shift = amount % WORD
    if shift == 0:
        return value, bool((value >> 31) & 1)
    result = ((value >> shift) | (value << (WORD - shift))) & WORD_MASK
    return result, bool((result >> 31) & 1)


def _signed(value: int) -> int:
    return value - (1 << WORD) if value & (1 << (WORD - 1)) else value


__all__ = [
    "add_with_carry",
    "subtract",
    "lsl_carry",
    "lsr_carry",
    "asr_carry",
    "ror_carry",
    "WORD_MASK",
]

"""The architectural Thumb CPU: fetch → decode → execute, one step at a time.

Semantics follow the ARMv6-M architecture manual for the Thumb-16 subset
decoded by :mod:`repro.isa.decoder`. Abnormal conditions surface as the
typed faults in :mod:`repro.errors`, which the glitch campaigns classify.

The CPU is deliberately *architectural*: no pipeline, no cycle timing —
that belongs to :mod:`repro.hw.pipeline`, which reuses
:meth:`CPU.execute` for its execute stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.emu import alu
from repro.emu.memory import Memory
from repro.errors import (
    AlignmentFault,
    BadFetch,
    EmulationFault,
    ExecutionLimitExceeded,
    InvalidInstruction,
)
from repro.isa.conditions import Flags, condition_holds
from repro.isa.decoder import decode
from repro.isa.instruction import Instruction
from repro.isa.registers import LR, PC, SP

WORD_MASK = alu.WORD_MASK
_PC_MASK = WORD_MASK & ~1

# Interned NZCV combinations: flag writes happen on almost every step, and
# Flags is frozen, so the sixteen possible values are shared singletons.
_FLAGS_BY_INDEX = tuple(
    Flags(n=bool(i & 8), z=bool(i & 4), c=bool(i & 2), v=bool(i & 1))
    for i in range(16)
)


@dataclass
class RunResult:
    """Outcome of :meth:`CPU.run`."""

    steps: int
    reason: str  # "halted" | "stop_addr" | "limit"
    stop_address: Optional[int] = None


@dataclass(frozen=True)
class CPUSnapshot:
    """Architectural register/flag state captured by :meth:`CPU.snapshot`.

    Attributes
    ----------
    regs : tuple of int
        All sixteen core registers (r0–r12, SP, LR, PC).
    flags : Flags
        The NZCV condition flags (immutable, shared by reference).
    halted : bool
        Whether the core had executed ``bkpt``/``wfi``/``wfe``.
    instruction_count : int
        Retired-instruction counter at capture time.
    """

    regs: tuple
    flags: Flags
    halted: bool
    instruction_count: int


class CPU:
    """A single Thumb core over a :class:`~repro.emu.memory.Memory` space."""

    def __init__(self, memory: Memory, zero_is_invalid: bool = False):
        self.memory = memory
        self.regs: list[int] = [0] * 16
        self.flags = Flags()
        self.halted = False
        self.zero_is_invalid = zero_is_invalid
        self.instruction_count = 0
        #: Optional hooks called as ``hook(cpu, address, instruction)`` before execute.
        self.pre_execute_hooks: list[Callable[["CPU", int, Instruction], None]] = []
        #: Optional handler for SVC; ``handler(cpu, imm)``. Default: fault.
        self.svc_handler: Optional[Callable[["CPU", int], None]] = None
        #: Optional decode memo keyed by ``(halfword, next_halfword)``.
        #: Decoding is a pure function of the fetched encoding (and the
        #: per-CPU ``zero_is_invalid`` knob), so entries never need
        #: invalidation — not even when the campaign corrupts a slot,
        #: because the corrupted slot fetches a *different* halfword and
        #: therefore hits a different key.  Share one dict across CPUs
        #: only if they agree on ``zero_is_invalid``.
        self.decode_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    # register access
    # ------------------------------------------------------------------

    @property
    def pc(self) -> int:
        return self.regs[PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.regs[PC] = value & WORD_MASK & ~1

    @property
    def sp(self) -> int:
        return self.regs[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[SP] = value & WORD_MASK

    def read_reg(self, number: int, instr_address: int) -> int:
        """Register read as seen by an instruction at ``instr_address`` (PC reads +4)."""
        if number == PC:
            return (instr_address + 4) & WORD_MASK
        return self.regs[number]

    def write_reg(self, number: int, value: int) -> None:
        if number == PC:
            self.pc = value
        else:
            self.regs[number] = value & WORD_MASK

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def fetch_and_decode(self, address: int) -> Instruction:
        halfword = self.memory.fetch_u16(address)
        next_halfword = None
        if (halfword >> 11) == 0b11110:
            next_halfword = self.memory.try_fetch_u16(address + 2)
        cache = self.decode_cache
        if cache is None:
            return decode(halfword, next_halfword, zero_is_invalid=self.zero_is_invalid)
        # Bare int key for the common 16-bit case; only BL pairs need the
        # tuple (int and tuple keys cannot collide).
        key = halfword if next_halfword is None else (halfword, next_halfword)
        hit = cache.get(key)
        if hit is None:
            try:
                hit = decode(halfword, next_halfword, zero_is_invalid=self.zero_is_invalid)
            except InvalidInstruction as exc:
                cache[key] = exc
                raise
            cache[key] = hit
            return hit
        if isinstance(hit, InvalidInstruction):
            raise hit
        return hit

    def step(self) -> Instruction:
        """Execute one instruction; returns it. Faults propagate to the caller."""
        address = self.regs[PC]
        instr = self.fetch_and_decode(address)
        if self.pre_execute_hooks:
            for hook in self.pre_execute_hooks:
                hook(self, address, instr)
        self.regs[PC] = (address + instr.size) & _PC_MASK
        # Inline of execute(): dispatch sits on the hot path of every step.
        handler = _DISPATCH.get(instr.mnemonic)
        if handler is None:  # pragma: no cover - decoder emits known mnemonics
            raise InvalidInstruction(f"no semantics for mnemonic {instr.mnemonic!r}")
        handler(self, instr, address)
        self.instruction_count += 1
        return instr

    def run(
        self,
        max_steps: int,
        stop_addresses: Iterable[int] = (),
        raise_on_limit: bool = False,
    ) -> RunResult:
        """Step until halted, a stop address is reached, or the budget runs out."""
        stops = frozenset(stop_addresses) if stop_addresses else None
        step = self.step
        for step_index in range(max_steps):
            if self.halted:
                return RunResult(steps=step_index, reason="halted")
            if stops is not None and self.regs[PC] in stops:
                return RunResult(steps=step_index, reason="stop_addr", stop_address=self.regs[PC])
            step()
        if self.halted:
            return RunResult(steps=max_steps, reason="halted")
        if stops is not None and self.regs[PC] in stops:
            return RunResult(steps=max_steps, reason="stop_addr", stop_address=self.regs[PC])
        if raise_on_limit:
            raise ExecutionLimitExceeded(f"no terminal state after {max_steps} steps", self.pc)
        return RunResult(steps=max_steps, reason="limit")

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> CPUSnapshot:
        """Capture the architectural state (registers, flags, halted, count).

        Memory is *not* captured — pair this with
        :meth:`repro.emu.memory.Memory.snapshot` to checkpoint a whole
        machine.

        Returns
        -------
        CPUSnapshot
            Immutable state token for :meth:`reset_from`.
        """
        return CPUSnapshot(
            regs=tuple(self.regs),
            flags=self.flags,
            halted=self.halted,
            instruction_count=self.instruction_count,
        )

    def reset_from(self, snapshot: CPUSnapshot) -> None:
        """Rewind the architectural state to a :meth:`snapshot` capture.

        Hooks, the SVC handler, the decode cache, and the memory binding
        are deliberately left alone — only register/flag/halt state is
        architectural.

        Parameters
        ----------
        snapshot : CPUSnapshot
            The capture to restore; snapshots are immutable and may be
            restored any number of times.
        """
        self.regs = list(snapshot.regs)
        self.flags = snapshot.flags
        self.halted = snapshot.halted
        self.instruction_count = snapshot.instruction_count

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, instr: Instruction, address: int) -> None:
        """Execute a decoded instruction whose first halfword sits at ``address``.

        The caller must already have advanced PC past the instruction
        (``address + instr.size``); branches overwrite it.
        """
        m = instr.mnemonic
        handler = _DISPATCH.get(m)
        if handler is None:
            raise InvalidInstruction(f"no semantics for mnemonic {m!r}")  # pragma: no cover
        handler(self, instr, address)

    # -- helpers ---------------------------------------------------------

    def _set_nz(self, result: int) -> None:
        old = self.flags
        self.flags = _FLAGS_BY_INDEX[
            (8 if result & 0x80000000 else 0) | (4 if result == 0 else 0)
            | (2 if old.c else 0) | (1 if old.v else 0)
        ]

    def _set_nzc(self, result: int, carry: bool) -> None:
        self.flags = _FLAGS_BY_INDEX[
            (8 if result & 0x80000000 else 0) | (4 if result == 0 else 0)
            | (2 if carry else 0) | (1 if self.flags.v else 0)
        ]

    def _set_nzcv(self, result: int, carry: bool, overflow: bool) -> None:
        self.flags = _FLAGS_BY_INDEX[
            (8 if result & 0x80000000 else 0) | (4 if result == 0 else 0)
            | (2 if carry else 0) | (1 if overflow else 0)
        ]

    def _load(self, address: int, length: int, align: int) -> int:
        if align > 1 and address % align:
            raise AlignmentFault(f"unaligned {length}-byte load at {address:#010x}", address)
        return int.from_bytes(self.memory.read(address, length), "little")

    def _store(self, address: int, value: int, length: int, align: int) -> None:
        if align > 1 and address % align:
            raise AlignmentFault(f"unaligned {length}-byte store at {address:#010x}", address)
        self.memory.write(address, (value & ((1 << (8 * length)) - 1)).to_bytes(length, "little"))


# ----------------------------------------------------------------------
# instruction semantics
# ----------------------------------------------------------------------

def _exec_shift_imm(cpu: CPU, instr: Instruction, address: int) -> None:
    value = cpu.read_reg(instr.rs, address)
    shifter = {"lsls": alu.lsl_carry, "lsrs": alu.lsr_carry, "asrs": alu.asr_carry}[instr.mnemonic]
    amount = instr.imm
    if instr.mnemonic in ("lsrs", "asrs") and amount == 0:
        amount = 32  # encoding quirk: #0 means shift-by-32 for LSR/ASR
    result, carry = shifter(value, amount, cpu.flags.c)
    cpu.write_reg(instr.rd, result)
    cpu._set_nzc(result, carry)


def _exec_add_sub(cpu: CPU, instr: Instruction, address: int) -> None:
    lhs = cpu.read_reg(instr.rs, address) if instr.fmt == 2 else cpu.read_reg(instr.rd, address)
    if instr.fmt == 3 and instr.mnemonic == "movs":  # pragma: no cover - routed elsewhere
        raise AssertionError
    rhs = cpu.read_reg(instr.ro, address) if instr.ro is not None else instr.imm
    if instr.mnemonic == "adds":
        result, carry, overflow = alu.add_with_carry(lhs, rhs, False)
    else:
        result, carry, overflow = alu.subtract(lhs, rhs)
    cpu.write_reg(instr.rd, result)
    cpu._set_nzcv(result, carry, overflow)


def _exec_movs_imm(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.write_reg(instr.rd, instr.imm)
    cpu._set_nz(instr.imm)


def _exec_cmp(cpu: CPU, instr: Instruction, address: int) -> None:
    lhs = cpu.read_reg(instr.rd, address)
    rhs = cpu.read_reg(instr.rs, address) if instr.rs is not None else instr.imm
    result, carry, overflow = alu.subtract(lhs, rhs)
    cpu._set_nzcv(result, carry, overflow)


def _exec_cmn(cpu: CPU, instr: Instruction, address: int) -> None:
    result, carry, overflow = alu.add_with_carry(
        cpu.read_reg(instr.rd, address), cpu.read_reg(instr.rs, address), False
    )
    cpu._set_nzcv(result, carry, overflow)


def _exec_logic(cpu: CPU, instr: Instruction, address: int) -> None:
    lhs = cpu.read_reg(instr.rd, address)
    rhs = cpu.read_reg(instr.rs, address)
    op = instr.mnemonic
    if op == "ands":
        result = lhs & rhs
    elif op == "eors":
        result = lhs ^ rhs
    elif op == "orrs":
        result = lhs | rhs
    elif op == "bics":
        result = lhs & ~rhs & WORD_MASK
    else:  # pragma: no cover
        raise AssertionError(op)
    cpu.write_reg(instr.rd, result)
    cpu._set_nz(result)


def _exec_tst(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu._set_nz(cpu.read_reg(instr.rd, address) & cpu.read_reg(instr.rs, address))


def _exec_shift_reg(cpu: CPU, instr: Instruction, address: int) -> None:
    shifter = {
        "lsls": alu.lsl_carry, "lsrs": alu.lsr_carry,
        "asrs": alu.asr_carry, "rors": alu.ror_carry,
    }[instr.mnemonic]
    amount = cpu.read_reg(instr.rs, address) & 0xFF
    result, carry = shifter(cpu.read_reg(instr.rd, address), amount, cpu.flags.c)
    cpu.write_reg(instr.rd, result)
    cpu._set_nzc(result, carry)


def _exec_adc_sbc(cpu: CPU, instr: Instruction, address: int) -> None:
    lhs = cpu.read_reg(instr.rd, address)
    rhs = cpu.read_reg(instr.rs, address)
    if instr.mnemonic == "adcs":
        result, carry, overflow = alu.add_with_carry(lhs, rhs, cpu.flags.c)
    else:
        result, carry, overflow = alu.add_with_carry(lhs, (~rhs) & WORD_MASK, cpu.flags.c)
    cpu.write_reg(instr.rd, result)
    cpu._set_nzcv(result, carry, overflow)


def _exec_neg(cpu: CPU, instr: Instruction, address: int) -> None:
    result, carry, overflow = alu.subtract(0, cpu.read_reg(instr.rs, address))
    cpu.write_reg(instr.rd, result)
    cpu._set_nzcv(result, carry, overflow)


def _exec_mul(cpu: CPU, instr: Instruction, address: int) -> None:
    result = (cpu.read_reg(instr.rd, address) * cpu.read_reg(instr.rs, address)) & WORD_MASK
    cpu.write_reg(instr.rd, result)
    cpu._set_nz(result)


def _exec_mvn(cpu: CPU, instr: Instruction, address: int) -> None:
    result = (~cpu.read_reg(instr.rs, address)) & WORD_MASK
    cpu.write_reg(instr.rd, result)
    cpu._set_nz(result)


def _exec_hi_ops(cpu: CPU, instr: Instruction, address: int) -> None:
    m = instr.mnemonic
    if m == "add":
        result = (cpu.read_reg(instr.rd, address) + cpu.read_reg(instr.rs, address)) & WORD_MASK
        cpu.write_reg(instr.rd, result)
    elif m == "mov":
        cpu.write_reg(instr.rd, cpu.read_reg(instr.rs, address))
    elif m == "cmp":
        result, carry, overflow = alu.subtract(
            cpu.read_reg(instr.rd, address), cpu.read_reg(instr.rs, address)
        )
        cpu._set_nzcv(result, carry, overflow)
    else:  # pragma: no cover
        raise AssertionError(m)


def _exec_bx(cpu: CPU, instr: Instruction, address: int) -> None:
    target = cpu.read_reg(instr.rs, address)
    if not target & 1:
        raise BadFetch(f"bx/blx to ARM state (bit0 clear) at target {target:#010x}", target)
    if instr.mnemonic == "blx":
        cpu.write_reg(LR, (address + 2) | 1)
    cpu.pc = target & ~1


def _exec_load_store(cpu: CPU, instr: Instruction, address: int) -> None:
    m = instr.mnemonic
    if instr.base == PC:
        base = (address + 4) & ~3
    else:
        base = cpu.read_reg(instr.base, address)
    offset = cpu.read_reg(instr.ro, address) if instr.ro is not None else (instr.imm or 0)
    target = (base + offset) & WORD_MASK
    if m == "ldr":
        cpu.write_reg(instr.rd, cpu._load(target, 4, 4))
    elif m == "ldrb":
        cpu.write_reg(instr.rd, cpu._load(target, 1, 1))
    elif m == "ldrh":
        cpu.write_reg(instr.rd, cpu._load(target, 2, 2))
    elif m == "ldrsb":
        value = cpu._load(target, 1, 1)
        cpu.write_reg(instr.rd, value - 0x100 if value & 0x80 else value)
    elif m == "ldrsh":
        value = cpu._load(target, 2, 2)
        cpu.write_reg(instr.rd, value - 0x10000 if value & 0x8000 else value)
    elif m == "str":
        cpu._store(target, cpu.read_reg(instr.rd, address), 4, 4)
    elif m == "strb":
        cpu._store(target, cpu.read_reg(instr.rd, address), 1, 1)
    elif m == "strh":
        cpu._store(target, cpu.read_reg(instr.rd, address), 2, 2)
    else:  # pragma: no cover
        raise AssertionError(m)


def _exec_adr(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.write_reg(instr.rd, ((address + 4) & ~3) + instr.imm)


def _exec_add_sp_imm(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.write_reg(instr.rd, (cpu.sp + instr.imm) & WORD_MASK)


def _exec_adjust_sp(cpu: CPU, instr: Instruction, address: int) -> None:
    delta = instr.imm if instr.mnemonic == "add_sp" else -instr.imm
    cpu.sp = (cpu.sp + delta) & WORD_MASK


def _exec_push(cpu: CPU, instr: Instruction, address: int) -> None:
    regs = sorted(instr.reg_list)
    new_sp = (cpu.sp - 4 * len(regs)) & WORD_MASK
    slot = new_sp
    for reg in regs:
        cpu._store(slot, cpu.regs[reg], 4, 4)
        slot += 4
    cpu.sp = new_sp


def _exec_pop(cpu: CPU, instr: Instruction, address: int) -> None:
    regs = sorted(instr.reg_list)
    slot = cpu.sp
    loaded: list[tuple[int, int]] = []
    for reg in regs:
        loaded.append((reg, cpu._load(slot, 4, 4)))
        slot += 4
    cpu.sp = slot
    for reg, value in loaded:
        if reg == PC:
            cpu.pc = value & ~1
        else:
            cpu.write_reg(reg, value)


def _exec_stmia(cpu: CPU, instr: Instruction, address: int) -> None:
    base = cpu.read_reg(instr.base, address)
    slot = base
    for reg in sorted(instr.reg_list):
        cpu._store(slot, cpu.regs[reg], 4, 4)
        slot += 4
    if instr.base not in instr.reg_list:
        cpu.write_reg(instr.base, slot)
    else:
        cpu.write_reg(instr.base, slot)  # base in list: stored value was the original


def _exec_ldmia(cpu: CPU, instr: Instruction, address: int) -> None:
    slot = cpu.read_reg(instr.base, address)
    writeback = instr.base not in instr.reg_list
    for reg in sorted(instr.reg_list):
        cpu.write_reg(reg, cpu._load(slot, 4, 4))
        slot += 4
    if writeback:
        cpu.write_reg(instr.base, slot)


def _exec_cond_branch(cpu: CPU, instr: Instruction, address: int) -> None:
    if condition_holds(instr.cond, cpu.flags):
        cpu.pc = address + 4 + instr.imm


def _exec_branch(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.pc = address + 4 + instr.imm


def _exec_bl(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.write_reg(LR, (address + 4) | 1)
    cpu.pc = address + 4 + instr.imm


def _exec_svc(cpu: CPU, instr: Instruction, address: int) -> None:
    if cpu.svc_handler is not None:
        cpu.svc_handler(cpu, instr.imm)
        return
    raise EmulationFault(f"unhandled svc #{instr.imm} at {address:#010x}", address)


def _exec_bkpt(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.halted = True


def _exec_halt_hint(cpu: CPU, instr: Instruction, address: int) -> None:
    cpu.halted = True


def _exec_nop(cpu: CPU, instr: Instruction, address: int) -> None:
    pass


def _exec_extend(cpu: CPU, instr: Instruction, address: int) -> None:
    value = cpu.read_reg(instr.rs, address)
    m = instr.mnemonic
    if m == "sxth":
        result = value & 0xFFFF
        result = result - 0x10000 if result & 0x8000 else result
    elif m == "sxtb":
        result = value & 0xFF
        result = result - 0x100 if result & 0x80 else result
    elif m == "uxth":
        result = value & 0xFFFF
    elif m == "uxtb":
        result = value & 0xFF
    else:  # pragma: no cover
        raise AssertionError(m)
    cpu.write_reg(instr.rd, result)


def _exec_rev(cpu: CPU, instr: Instruction, address: int) -> None:
    value = cpu.read_reg(instr.rs, address)
    b = value.to_bytes(4, "little")
    m = instr.mnemonic
    if m == "rev":
        result = int.from_bytes(b, "big")
    elif m == "rev16":
        result = int.from_bytes(bytes([b[1], b[0], b[3], b[2]]), "little")
    else:  # revsh
        half = int.from_bytes(bytes([b[1], b[0]]), "little")
        result = half - 0x10000 if half & 0x8000 else half
    cpu.write_reg(instr.rd, result & WORD_MASK)


def _dispatch_addsub(cpu: CPU, instr: Instruction, address: int) -> None:
    _exec_add_sub(cpu, instr, address)


_DISPATCH: dict[str, Callable[[CPU, Instruction, int], None]] = {}


def _register_semantics() -> None:
    table = _DISPATCH
    for m in ("lsls", "lsrs", "asrs"):
        pass  # populated contextually below

    def shift_dispatch(mnemonic: str) -> Callable[[CPU, Instruction, int], None]:
        def run(cpu: CPU, instr: Instruction, address: int) -> None:
            if instr.fmt == 1:
                _exec_shift_imm(cpu, instr, address)
            else:
                _exec_shift_reg(cpu, instr, address)
        return run

    for m in ("lsls", "lsrs", "asrs"):
        table[m] = shift_dispatch(m)
    table["rors"] = _exec_shift_reg

    def cmp_dispatch(cpu: CPU, instr: Instruction, address: int) -> None:
        _exec_cmp(cpu, instr, address)

    table["adds"] = _dispatch_addsub
    table["subs"] = _dispatch_addsub
    table["movs"] = _exec_movs_imm
    table["cmp"] = cmp_dispatch
    table["cmn"] = _exec_cmn
    table["ands"] = _exec_logic
    table["eors"] = _exec_logic
    table["orrs"] = _exec_logic
    table["bics"] = _exec_logic
    table["tst"] = _exec_tst
    table["adcs"] = _exec_adc_sbc
    table["sbcs"] = _exec_adc_sbc
    table["negs"] = _exec_neg
    table["muls"] = _exec_mul
    table["mvns"] = _exec_mvn
    table["add"] = _exec_hi_ops
    table["mov"] = _exec_hi_ops
    table["bx"] = _exec_bx
    table["blx"] = _exec_bx
    for m in ("ldr", "ldrb", "ldrh", "ldrsb", "ldrsh", "str", "strb", "strh"):
        table[m] = _exec_load_store
    table["adr"] = _exec_adr
    table["add_sp_imm"] = _exec_add_sp_imm
    table["add_sp"] = _exec_adjust_sp
    table["sub_sp"] = _exec_adjust_sp
    table["push"] = _exec_push
    table["pop"] = _exec_pop
    table["stmia"] = _exec_stmia
    table["ldmia"] = _exec_ldmia
    from repro.isa.conditions import CONDITION_NAMES

    for name in CONDITION_NAMES:
        table[f"b{name}"] = _exec_cond_branch
    table["b"] = _exec_branch
    table["bl"] = _exec_bl
    table["svc"] = _exec_svc
    table["bkpt"] = _exec_bkpt
    table["wfi"] = _exec_halt_hint
    table["wfe"] = _exec_halt_hint
    table["nop"] = _exec_nop
    table["yield"] = _exec_nop
    table["sev"] = _exec_nop
    table["cps"] = _exec_nop
    for m in ("sxth", "sxtb", "uxth", "uxtb"):
        table[m] = _exec_extend
    for m in ("rev", "rev16", "revsh"):
        table[m] = _exec_rev


_register_semantics()


__all__ = ["CPU", "CPUSnapshot", "RunResult"]

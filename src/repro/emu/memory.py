"""Mapped memory with access permissions, typed access faults, and snapshots.

The Section IV campaigns classify *bad read* and *bad fetch* outcomes by
catching :class:`repro.errors.BadRead` / :class:`repro.errors.BadFetch`,
so the memory model must fault on unmapped and permission-violating
accesses exactly like Unicorn's ``UC_ERR_READ_UNMAPPED`` /
``UC_ERR_FETCH_UNMAPPED`` did for the paper.

Snapshot/restore (:meth:`Memory.snapshot` / :meth:`Memory.restore`) is the
foundation of the campaign fast path: a campaign builds its address space
once, snapshots it, and undoes only the pages each corrupted execution
dirtied instead of rebuilding the world per attempt.  The journal is
copy-on-write at page granularity — the first write that lands on a page
after the snapshot saves the page's original bytes; ``restore`` writes
those saved pages back and unmaps any region mapped after the snapshot.

The journal only observes writes issued through the :class:`Memory`
interface (:meth:`Memory.write` and :meth:`Memory.load`).  Mutating a
region's ``data`` bytearray directly, or calling ``region.write``,
bypasses the journal and will not be undone — callers that poke region
data behind memory's back (e.g. test fixtures) must do so before taking
the snapshot or accept that restore cannot see the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import BadFetch, BadRead, BadWrite

#: Copy-on-write journal granularity, in bytes.  Small enough that a
#: campaign attempt touching a couple of RAM words journals ~1 page,
#: large enough that the per-page bookkeeping stays negligible.
PAGE_SIZE = 64


@dataclass(frozen=True)
class MemorySnapshot:
    """An opaque restore point returned by :meth:`Memory.snapshot`.

    Attributes
    ----------
    regions : tuple of MemoryRegion
        The regions mapped at snapshot time, in address order.  Restore
        reinstates exactly this mapping (regions mapped afterwards are
        dropped).  Region *identity* is what matters — the snapshot does
        not copy region contents; the copy-on-write journal does that
        lazily as writes land.
    region_ids : frozenset of int
        ``id()`` of each snapshot region, precomputed because restore
        runs once per campaign replay.
    """

    regions: tuple  # tuple[MemoryRegion, ...]
    region_ids: frozenset


@dataclass
class MemoryRegion:
    """A contiguous byte-addressable region."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise ValueError(
                f"region {self.name!r}: data length {len(self.data)} != size {self.size}"
            )
        # Plain attribute (not a property): ``contains`` sits on the
        # fetch/load/store hot path of every emulated step.
        self.end = self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def read(self, address: int, length: int) -> bytes:
        offset = address - self.base
        return bytes(self.data[offset:offset + length])

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        self.data[offset:offset + len(payload)] = payload


class MMIORegion(MemoryRegion):
    """A region backed by callbacks, for device registers (GPIO, flash ctrl, ...).

    ``on_read(offset, length) -> int`` and ``on_write(offset, length, value)``
    receive offsets relative to the region base.
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        on_read: Optional[Callable[[int, int], int]] = None,
        on_write: Optional[Callable[[int, int, int], None]] = None,
    ):
        super().__init__(name=name, base=base, size=size, readable=True, writable=True)
        self._on_read = on_read
        self._on_write = on_write

    def read(self, address: int, length: int) -> bytes:
        offset = address - self.base
        if self._on_read is None:
            return super().read(address, length)
        value = self._on_read(offset, length) & ((1 << (8 * length)) - 1)
        return value.to_bytes(length, "little")

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        if self._on_write is None:
            super().write(address, payload)
            return
        self._on_write(offset, len(payload), int.from_bytes(payload, "little"))


class Memory:
    """An address space made of non-overlapping regions."""

    def __init__(self) -> None:
        self.regions: list[MemoryRegion] = []
        # Most-recently-hit region; consecutive accesses overwhelmingly
        # target the same region (straight-line fetches), so checking it
        # first short-circuits the linear scan in region_at.
        self._hot_region: Optional[MemoryRegion] = None
        # Active restore point + copy-on-write page journal, keyed by
        # id(region) because MemoryRegion is a mutable (unhashable)
        # dataclass.  Values: (region, {page_index: original page bytes}).
        self._snapshot: Optional[MemorySnapshot] = None
        self._journal: dict[int, tuple[MemoryRegion, dict[int, bytes]]] = {}

    def map_region(self, region: MemoryRegion) -> MemoryRegion:
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r} "
                    f"([{region.base:#x}, {region.end:#x}) vs [{existing.base:#x}, {existing.end:#x}))"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return region

    def map(self, name: str, base: int, size: int, **permissions: bool) -> MemoryRegion:
        return self.map_region(MemoryRegion(name=name, base=base, size=size, **permissions))

    def region_at(self, address: int, length: int = 1) -> Optional[MemoryRegion]:
        hot = self._hot_region
        if hot is not None and hot.base <= address and address + length <= hot.end:
            return hot
        for region in self.regions:
            if region.base <= address and address + length <= region.end:
                self._hot_region = region
                return region
        return None

    # -- data accesses -------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        region = self.region_at(address, length)
        if region is None or not region.readable:
            raise BadRead(f"read of {length} bytes at unmapped address {address:#010x}", address)
        return region.read(address, length)

    def write(self, address: int, payload: bytes) -> None:
        region = self.region_at(address, len(payload))
        if region is None:
            raise BadWrite(f"write of {len(payload)} bytes at unmapped address {address:#010x}", address)
        if not region.writable:
            raise BadWrite(f"write to read-only region {region.name!r} at {address:#010x}", address)
        if self._snapshot is not None:
            self._journal_pages(region, address, len(payload))
        region.write(address, payload)

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # -- instruction fetches --------------------------------------------

    def fetch_u16(self, address: int) -> int:
        if address % 2:
            raise BadFetch(f"unaligned instruction fetch at {address:#010x}", address)
        region = self.region_at(address, 2)
        if region is None or not region.executable:
            raise BadFetch(f"instruction fetch from non-executable address {address:#010x}", address)
        # Executable regions are plain byte-backed regions (MMIO is never
        # executable), so fetch straight from the backing store.
        offset = address - region.base
        data = region.data
        return data[offset] | (data[offset + 1] << 8)

    def try_fetch_u16(self, address: int) -> Optional[int]:
        """Fetch that returns None instead of faulting (used for BL suffix lookahead)."""
        try:
            return self.fetch_u16(address)
        except BadFetch:
            return None

    def load(self, address: int, payload: bytes) -> None:
        """Bulk-load bytes (e.g. a firmware image), bypassing write permissions."""
        region = self.region_at(address, len(payload))
        if region is None:
            raise BadWrite(f"load target {address:#010x} (+{len(payload)}) is unmapped", address)
        if self._snapshot is not None:
            self._journal_pages(region, address, len(payload))
        region.write(address, payload)

    # -- snapshot / restore ---------------------------------------------

    def snapshot(self) -> MemorySnapshot:
        """Arm the copy-on-write journal and return a restore point.

        Subsequent writes issued through :meth:`write` or :meth:`load`
        save each touched page's original bytes on first touch;
        :meth:`restore` writes them back.  Only the most recent snapshot
        is restorable — taking a new one discards the previous journal.

        Returns
        -------
        MemorySnapshot
            Token identifying this restore point; pass it to
            :meth:`restore`.
        """
        regions = tuple(self.regions)
        self._snapshot = MemorySnapshot(
            regions=regions,
            region_ids=frozenset(id(region) for region in regions),
        )
        self._journal = {}
        return self._snapshot

    def restore(self, snapshot: MemorySnapshot) -> None:
        """Rewind memory to the state captured by :meth:`snapshot`.

        Undoes every page dirtied through the :class:`Memory` interface
        since the snapshot (or since the last restore) and unmaps any
        region mapped after the snapshot.  The journal stays armed, so
        the same snapshot can be restored again after further writes —
        this is the campaign replay loop.

        Parameters
        ----------
        snapshot : MemorySnapshot
            The token returned by the *most recent* :meth:`snapshot`
            call on this Memory.

        Raises
        ------
        ValueError
            If ``snapshot`` is not the active restore point (stale or
            from another Memory).
        """
        if snapshot is not self._snapshot:
            raise ValueError("snapshot is stale: only the most recent Memory.snapshot() is restorable")
        journal = self._journal
        if journal:
            snapshot_ids = snapshot.region_ids
            for region_id, (region, pages) in journal.items():
                if region_id not in snapshot_ids:
                    continue  # region mapped after the snapshot; about to be dropped
                for page_index, original in pages.items():
                    start = page_index * PAGE_SIZE
                    region.data[start:start + len(original)] = original
            self._journal = {}
        if len(self.regions) != len(snapshot.regions):
            self.regions = list(snapshot.regions)
            self._hot_region = None  # may point at a dropped region

    def dirtied_regions(self) -> list[MemoryRegion]:
        """Regions with journaled (not yet restored) writes since the snapshot.

        Returns
        -------
        list of MemoryRegion
            Regions that received at least one :meth:`write`/:meth:`load`
            since the snapshot was taken or last restored.  Empty when no
            snapshot is armed.
        """
        return [region for region, pages in self._journal.values() if pages]

    def _journal_pages(self, region: MemoryRegion, address: int, length: int) -> None:
        """Save the original bytes of every page the write will touch."""
        entry = self._journal.get(id(region))
        if entry is None:
            entry = (region, {})
            self._journal[id(region)] = entry
        pages = entry[1]
        first = (address - region.base) // PAGE_SIZE
        last = (address - region.base + length - 1) // PAGE_SIZE
        data = region.data
        for page_index in range(first, last + 1):
            if page_index not in pages:
                start = page_index * PAGE_SIZE
                pages[page_index] = bytes(data[start:start + PAGE_SIZE])


__all__ = ["Memory", "MemoryRegion", "MemorySnapshot", "MMIORegion", "PAGE_SIZE"]

"""Mapped memory with access permissions and typed access faults.

The Section IV campaigns classify *bad read* and *bad fetch* outcomes by
catching :class:`repro.errors.BadRead` / :class:`repro.errors.BadFetch`,
so the memory model must fault on unmapped and permission-violating
accesses exactly like Unicorn's ``UC_ERR_READ_UNMAPPED`` /
``UC_ERR_FETCH_UNMAPPED`` did for the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import BadFetch, BadRead, BadWrite


@dataclass
class MemoryRegion:
    """A contiguous byte-addressable region."""

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if not self.data:
            self.data = bytearray(self.size)
        elif len(self.data) != self.size:
            raise ValueError(
                f"region {self.name!r}: data length {len(self.data)} != size {self.size}"
            )

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base <= address and address + length <= self.end

    def read(self, address: int, length: int) -> bytes:
        offset = address - self.base
        return bytes(self.data[offset:offset + length])

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        self.data[offset:offset + len(payload)] = payload


class MMIORegion(MemoryRegion):
    """A region backed by callbacks, for device registers (GPIO, flash ctrl, ...).

    ``on_read(offset, length) -> int`` and ``on_write(offset, length, value)``
    receive offsets relative to the region base.
    """

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        on_read: Optional[Callable[[int, int], int]] = None,
        on_write: Optional[Callable[[int, int, int], None]] = None,
    ):
        super().__init__(name=name, base=base, size=size, readable=True, writable=True)
        self._on_read = on_read
        self._on_write = on_write

    def read(self, address: int, length: int) -> bytes:
        offset = address - self.base
        if self._on_read is None:
            return super().read(address, length)
        value = self._on_read(offset, length) & ((1 << (8 * length)) - 1)
        return value.to_bytes(length, "little")

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        if self._on_write is None:
            super().write(address, payload)
            return
        self._on_write(offset, len(payload), int.from_bytes(payload, "little"))


class Memory:
    """An address space made of non-overlapping regions."""

    def __init__(self) -> None:
        self.regions: list[MemoryRegion] = []

    def map_region(self, region: MemoryRegion) -> MemoryRegion:
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r} "
                    f"([{region.base:#x}, {region.end:#x}) vs [{existing.base:#x}, {existing.end:#x}))"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return region

    def map(self, name: str, base: int, size: int, **permissions: bool) -> MemoryRegion:
        return self.map_region(MemoryRegion(name=name, base=base, size=size, **permissions))

    def region_at(self, address: int, length: int = 1) -> Optional[MemoryRegion]:
        for region in self.regions:
            if region.contains(address, length):
                return region
        return None

    # -- data accesses -------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        region = self.region_at(address, length)
        if region is None or not region.readable:
            raise BadRead(f"read of {length} bytes at unmapped address {address:#010x}", address)
        return region.read(address, length)

    def write(self, address: int, payload: bytes) -> None:
        region = self.region_at(address, len(payload))
        if region is None:
            raise BadWrite(f"write of {len(payload)} bytes at unmapped address {address:#010x}", address)
        if not region.writable:
            raise BadWrite(f"write to read-only region {region.name!r} at {address:#010x}", address)
        region.write(address, payload)

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # -- instruction fetches --------------------------------------------

    def fetch_u16(self, address: int) -> int:
        if address % 2:
            raise BadFetch(f"unaligned instruction fetch at {address:#010x}", address)
        region = self.region_at(address, 2)
        if region is None or not region.executable:
            raise BadFetch(f"instruction fetch from non-executable address {address:#010x}", address)
        return int.from_bytes(region.read(address, 2), "little")

    def try_fetch_u16(self, address: int) -> Optional[int]:
        """Fetch that returns None instead of faulting (used for BL suffix lookahead)."""
        try:
            return self.fetch_u16(address)
        except BadFetch:
            return None

    def load(self, address: int, payload: bytes) -> None:
        """Bulk-load bytes (e.g. a firmware image), bypassing write permissions."""
        region = self.region_at(address, len(payload))
        if region is None:
            raise BadWrite(f"load target {address:#010x} (+{len(payload)}) is unmapped", address)
        region.write(address, payload)


__all__ = ["Memory", "MemoryRegion", "MMIORegion"]

"""Vectorized lock-step batch engine: one NumPy lane per corrupted word.

The Figure 2 workload is "same program, one corrupted halfword, tens of
thousands of variants": every lane of a :meth:`SnippetHarness.run_many`
batch starts from the *same* post-prefix machine snapshot and differs only
in the 16-bit word overlaid on the target flash slot.  That is exactly the
shape that vectorizes — so this module holds the architectural state of
every lane as struct-of-arrays (registers ``(16, N)``, NZCV flags, a
halted bit, a terminal status) and steps all live lanes in lock-step:

- **fetch** reads the shared flash image with a per-lane overlay at the
  target slot (both for the fetched halfword and for a BL-suffix
  lookahead at ``target ± 2``, and byte-wise for data loads that read the
  slot), so the base image is never mutated;
- **decode** is a 65,536-row operand table built lazily *through the
  scalar decoder* (:func:`repro.isa.decoder.decode`) and shared
  process-wide per ``zero_is_invalid`` setting — each unique halfword is
  decoded exactly once, and the per-harness decode cache is consulted and
  seeded so the scalar replay engine sees the same memo;
- **execute** groups live lanes by opcode and runs one vectorized handler
  per group, mirroring :mod:`repro.emu.cpu` / :mod:`repro.emu.alu`
  bit-for-bit (including the LSR/ASR ``#0 == 32`` quirk, shift-by-zero
  carry passthrough, and ``AddWithCarry`` flag algebra);
- **memory** is a copy-on-write RAM plane: row 0 is the shared
  post-prefix RAM image and a lane is given a private row only right
  before its first successful store, so a 65k-lane batch allocates a few
  MB rather than lanes × RAM_SIZE;
- **divergence** is handled by retirement: lanes that halt, fault, hit a
  marker stop, or exhaust the shared step budget leave the active set and
  keep their terminal status, so classification happens per lane while
  stepping stays dense.

The engine is *deliberately* a re-implementation of the scalar semantics:
``engine="snapshot"`` remains the differential oracle (the test suite
sweeps the full 2^16 word space against it), the same way
``tally="enumerate"`` backs ``tally="algebra"``.  Lanes whose fetched
halfword decodes to a mnemonic listed in ``fallback_mnemonics`` (or, in a
defensive future case, one with no vector handler) retire with
``ST_FALLBACK`` and are re-executed by the caller on the scalar engine.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.bits import bits, sign_extend
from repro.errors import InvalidInstruction
from repro.exec.cache import CATEGORY_CODES, default_cache_root
from repro.isa.conditions import Flags
from repro.isa.decoder import decode
from repro.isa.instruction import Instruction

M32 = 0xFFFFFFFF
_TWO31 = 1 << 31
_TWO32 = 1 << 32

# ----------------------------------------------------------------------
# terminal lane statuses
# ----------------------------------------------------------------------

ST_RUNNING = 0    # transient: lane is still stepping
ST_HALTED = 1     # bkpt/wfi/wfe — classify from final registers
ST_STOPPED = 2    # reached a marker stop with ≥2 budget steps left
ST_LIMIT = 3      # ran out of step budget without halting
ST_INVALID = 4    # fetched word decoded as InvalidInstruction
ST_BAD_FETCH = 5  # unfetchable PC, or bx/blx into ARM state
ST_BAD_READ = 6   # load/store fault (unmapped / unaligned / read-only)
ST_FAILED = 7     # unhandled svc (EmulationFault in the scalar engine)
ST_FALLBACK = 8   # lane touched an op the caller wants scalar-executed

#: scalar Outcome category per terminal status (STOPPED/HALTED need registers)
STATUS_CATEGORIES = {
    ST_LIMIT: "failed",
    ST_INVALID: "invalid_instruction",
    ST_BAD_FETCH: "bad_fetch",
    ST_BAD_READ: "bad_read",
    ST_FAILED: "failed",
}

# ----------------------------------------------------------------------
# operand-table opcodes (one vector handler each)
# ----------------------------------------------------------------------

OP_INVALID = 0
OP_SHIFT_IMM = 1    # aux: 0 lsl / 1 lsr / 2 asr; imm pre-normalized (#0 → 32)
OP_SHIFT_REG = 2    # aux: 0 lsl / 1 lsr / 2 asr / 3 ror
OP_ADDS = 3         # rs = lhs reg; rhs = reg ro if ro >= 0 else imm
OP_SUBS = 4
OP_MOVS_IMM = 5
OP_CMP_IMM = 6
OP_CMP_REG = 7      # rd/rs may be high registers (format 5)
OP_CMN = 8
OP_LOGIC = 9        # aux: 0 and / 1 eor / 2 orr / 3 bic
OP_TST = 10
OP_ADC = 11
OP_SBC = 12
OP_NEG = 13
OP_MUL = 14
OP_MVN = 15
OP_HI_ADD = 16
OP_HI_MOV = 17
OP_BX = 18          # aux: 1 = blx
OP_LOAD = 19        # aux: 0 ldr / 1 ldrh / 2 ldrb / 3 ldrsh / 4 ldrsb
OP_STORE = 20       # aux: 0 str / 1 strh / 2 strb
OP_ADR = 21
OP_ADD_SP_IMM = 22
OP_ADJ_SP = 23      # imm signed (negative = sub sp)
OP_PUSH = 24
OP_POP = 25
OP_STMIA = 26
OP_LDMIA = 27
OP_BCOND = 28
OP_B = 29
OP_BL_PREFIX = 30   # imm = sign-extended offset_high << 12
OP_SVC = 31
OP_HALT = 32        # bkpt / wfi / wfe
OP_NOP = 33         # nop / yield / sev / cps
OP_EXTEND = 34      # aux: 0 sxth / 1 sxtb / 2 uxth / 3 uxtb
OP_REV = 35         # aux: 0 rev / 1 rev16 / 2 revsh

def _present(values: np.ndarray, bound: int) -> list[int]:
    """Distinct codes in a small-nonneg-int array, ascending.

    Dispatch-loop replacement for ``np.unique(values).tolist()``: a
    bincount over a known ``bound`` is a single O(n) pass, without the
    hash/sort machinery ``np.unique`` drags into the per-step hot loop.
    """
    return np.nonzero(np.bincount(values, minlength=bound))[0].tolist()


_LOAD_AUX = {"ldr": 0, "ldrh": 1, "ldrb": 2, "ldrsh": 3, "ldrsb": 4}
_LOAD_WIDTH = (4, 2, 1, 2, 1)
_STORE_AUX = {"str": 0, "strh": 1, "strb": 2}
_STORE_WIDTH = (4, 2, 1)
_SHIFT_AUX = {"lsls": 0, "lsrs": 1, "asrs": 2, "rors": 3}
_LOGIC_AUX = {"ands": 0, "eors": 1, "orrs": 2, "bics": 3}
_EXTEND_AUX = {"sxth": 0, "sxtb": 1, "uxth": 2, "uxtb": 3}
_REV_AUX = {"rev": 0, "rev16": 1, "revsh": 2}


class _OperandTable:
    """Lazily-filled decoded-operand columns for all 65,536 halfwords."""

    def __init__(self, zero_is_invalid: bool):
        n = 1 << 16
        self.zero_is_invalid = zero_is_invalid
        #: True once every row is decoded — lets the engine's per-step
        #: missing-row scan (an np.unique over the fetched halfwords)
        #: be skipped entirely on the hot path
        self.complete = False
        self.filled = np.zeros(n, dtype=bool)
        self.op = np.zeros(n, dtype=np.uint8)
        self.aux = np.zeros(n, dtype=np.uint8)
        self.rd = np.full(n, -1, dtype=np.int8)
        self.rs = np.full(n, -1, dtype=np.int8)
        self.base = np.full(n, -1, dtype=np.int8)
        self.ro = np.full(n, -1, dtype=np.int8)
        self.imm = np.zeros(n, dtype=np.int64)
        self.cond = np.full(n, -1, dtype=np.int8)
        self.reg_list = np.zeros(n, dtype=np.uint16)
        #: decoded mnemonic per row (None = invalid) — drives fallback sets
        self.mnemonic: list = [None] * n

    def ensure(self, halfwords: Iterable[int], decode_cache: Optional[dict] = None) -> None:
        """Decode (once, via the scalar decoder) any still-missing rows.

        ``decode_cache`` is the per-harness decode memo: rows already
        memoised there (including memoised :class:`InvalidInstruction`)
        are reused, and fresh decodes are written back, so the scalar
        replay engine and the vector engine share one decode per word.
        BL *prefixes* are next-halfword-dependent in the scalar cache
        (tuple keys) and are therefore materialised directly here from
        the encoding, leaving the tuple-keyed entries alone.

        The hardened-ISA table differs from the base table only at
        0x0000 (the one word ``zero_is_invalid`` affects), so any row the
        base table has already decoded is adopted by bulk column copy
        instead of re-decoded.

        Every row filled here is counted on the ambient observer as
        ``vector.table_rows_decoded`` — a table loaded from a persisted
        artifact (``complete`` is set, so this is a no-op) keeps that
        counter at zero, which is how tests prove workers reuse the
        memmapped table instead of re-decoding.
        """
        if self.complete:
            return
        halfwords = list(halfwords)
        filled = self.filled
        filled_before = int(filled.sum())
        if self.zero_is_invalid:
            base = _TABLES.get(False)
            if base is not None:
                adopt = np.asarray(
                    [hw for hw in halfwords if hw and base.filled[hw] and not filled[hw]],
                    dtype=np.int64,
                )
                if adopt.size:
                    for column in (
                        "op", "aux", "rd", "rs", "base", "ro",
                        "imm", "cond", "reg_list",
                    ):
                        getattr(self, column)[adopt] = getattr(base, column)[adopt]
                    for hw in adopt.tolist():
                        self.mnemonic[hw] = base.mnemonic[hw]
                    filled[adopt] = True
        for hw in halfwords:
            hw = int(hw)
            if filled[hw]:
                continue
            if (hw >> 11) == 0b11110:
                # BL prefix: the row stores offset_high; the suffix (and
                # hence validity) is resolved per lane at execute time.
                self._set_row(hw, "bl", OP_BL_PREFIX, imm=sign_extend(bits(hw, 10, 0), 11) << 12)
                continue
            instr: Optional[Instruction] = None
            hit = decode_cache.get(hw) if decode_cache is not None else None
            if hit is None:
                try:
                    instr = decode(hw, None, zero_is_invalid=self.zero_is_invalid)
                except InvalidInstruction as exc:
                    if decode_cache is not None:
                        decode_cache[hw] = exc
                else:
                    if decode_cache is not None:
                        decode_cache[hw] = instr
            elif not isinstance(hit, InvalidInstruction):
                instr = hit
            if instr is None:
                self.filled[hw] = True  # op stays OP_INVALID
                continue
            self._fill_from_instruction(hw, instr)
        decoded = int(filled.sum()) - filled_before
        if decoded:
            from repro.obs import current

            current().count("vector.table_rows_decoded", decoded)

    def fill_all(self, decode_cache: Optional[dict] = None) -> None:
        """Decode every still-missing row and mark the table complete."""
        missing = np.nonzero(~self.filled)[0]
        if missing.size:
            self.ensure(missing.tolist(), decode_cache)
        self.complete = True

    # -- row construction ------------------------------------------------

    def _set_row(
        self, hw: int, mnemonic: str, op: int, aux: int = 0,
        rd: int = -1, rs: int = -1, base: int = -1, ro: int = -1,
        imm: int = 0, cond: int = -1, reg_list: int = 0,
    ) -> None:
        self.op[hw] = op
        self.aux[hw] = aux
        self.rd[hw] = rd
        self.rs[hw] = rs
        self.base[hw] = base
        self.ro[hw] = ro
        self.imm[hw] = imm
        self.cond[hw] = cond
        self.reg_list[hw] = reg_list
        self.mnemonic[hw] = mnemonic
        self.filled[hw] = True

    def _fill_from_instruction(self, hw: int, instr: Instruction) -> None:
        m = instr.mnemonic
        none = -1

        def reg(value):
            return none if value is None else value

        if m in ("lsls", "lsrs", "asrs") and instr.fmt == 1:
            amount = instr.imm
            if m in ("lsrs", "asrs") and amount == 0:
                amount = 32  # encoding quirk: #0 means shift-by-32
            self._set_row(hw, m, OP_SHIFT_IMM, aux=_SHIFT_AUX[m],
                          rd=instr.rd, rs=instr.rs, imm=amount)
        elif m in ("lsls", "lsrs", "asrs", "rors"):  # format 4 register shifts
            self._set_row(hw, m, OP_SHIFT_REG, aux=_SHIFT_AUX[m],
                          rd=instr.rd, rs=instr.rs)
        elif m in ("adds", "subs"):
            # normalise: the left-hand register always sits in the rs column
            lhs = instr.rs if instr.fmt == 2 else instr.rd
            self._set_row(hw, m, OP_ADDS if m == "adds" else OP_SUBS,
                          rd=instr.rd, rs=lhs, ro=reg(instr.ro),
                          imm=instr.imm if instr.ro is None else 0)
        elif m == "movs":
            self._set_row(hw, m, OP_MOVS_IMM, rd=instr.rd, imm=instr.imm)
        elif m == "cmp":
            if instr.rs is None:
                self._set_row(hw, m, OP_CMP_IMM, rd=instr.rd, imm=instr.imm)
            else:
                self._set_row(hw, m, OP_CMP_REG, rd=instr.rd, rs=instr.rs)
        elif m == "cmn":
            self._set_row(hw, m, OP_CMN, rd=instr.rd, rs=instr.rs)
        elif m in _LOGIC_AUX:
            self._set_row(hw, m, OP_LOGIC, aux=_LOGIC_AUX[m], rd=instr.rd, rs=instr.rs)
        elif m == "tst":
            self._set_row(hw, m, OP_TST, rd=instr.rd, rs=instr.rs)
        elif m == "adcs":
            self._set_row(hw, m, OP_ADC, rd=instr.rd, rs=instr.rs)
        elif m == "sbcs":
            self._set_row(hw, m, OP_SBC, rd=instr.rd, rs=instr.rs)
        elif m == "negs":
            self._set_row(hw, m, OP_NEG, rd=instr.rd, rs=instr.rs)
        elif m == "muls":
            self._set_row(hw, m, OP_MUL, rd=instr.rd, rs=instr.rs)
        elif m == "mvns":
            self._set_row(hw, m, OP_MVN, rd=instr.rd, rs=instr.rs)
        elif m == "add" and instr.fmt == 5:
            self._set_row(hw, m, OP_HI_ADD, rd=instr.rd, rs=instr.rs)
        elif m == "mov" and instr.fmt == 5:
            self._set_row(hw, m, OP_HI_MOV, rd=instr.rd, rs=instr.rs)
        elif m in ("bx", "blx"):
            self._set_row(hw, m, OP_BX, aux=1 if m == "blx" else 0, rs=instr.rs)
        elif m in _LOAD_AUX:
            self._set_row(hw, m, OP_LOAD, aux=_LOAD_AUX[m], rd=instr.rd,
                          base=reg(instr.base), ro=reg(instr.ro), imm=instr.imm or 0)
        elif m in _STORE_AUX:
            self._set_row(hw, m, OP_STORE, aux=_STORE_AUX[m], rd=instr.rd,
                          base=reg(instr.base), ro=reg(instr.ro), imm=instr.imm or 0)
        elif m == "adr":
            self._set_row(hw, m, OP_ADR, rd=instr.rd, imm=instr.imm)
        elif m == "add_sp_imm":
            self._set_row(hw, m, OP_ADD_SP_IMM, rd=instr.rd, imm=instr.imm)
        elif m in ("add_sp", "sub_sp"):
            self._set_row(hw, m, OP_ADJ_SP, imm=instr.imm if m == "add_sp" else -instr.imm)
        elif m in ("push", "pop"):
            mask = 0
            for r in instr.reg_list:
                mask |= 1 << r
            self._set_row(hw, m, OP_PUSH if m == "push" else OP_POP, reg_list=mask)
        elif m in ("stmia", "ldmia"):
            mask = 0
            for r in instr.reg_list:
                mask |= 1 << r
            self._set_row(hw, m, OP_STMIA if m == "stmia" else OP_LDMIA,
                          base=instr.base, reg_list=mask)
        elif m.startswith("b") and instr.fmt == 16:
            self._set_row(hw, m, OP_BCOND, cond=instr.cond, imm=instr.imm)
        elif m == "b":
            self._set_row(hw, m, OP_B, imm=instr.imm)
        elif m == "svc":
            self._set_row(hw, m, OP_SVC, imm=instr.imm)
        elif m in ("bkpt", "wfi", "wfe"):
            self._set_row(hw, m, OP_HALT)
        elif m in ("nop", "yield", "sev", "cps"):
            self._set_row(hw, m, OP_NOP)
        elif m in _EXTEND_AUX:
            self._set_row(hw, m, OP_EXTEND, aux=_EXTEND_AUX[m], rd=instr.rd, rs=instr.rs)
        elif m in _REV_AUX:
            self._set_row(hw, m, OP_REV, aux=_REV_AUX[m], rd=instr.rd, rs=instr.rs)
        else:  # pragma: no cover - decoder emits only the mnemonics above
            # unknown mnemonic: flag the lane back to the scalar engine
            self._set_row(hw, m, OP_INVALID)
            self.mnemonic[hw] = m
            self.op[hw] = OP_INVALID


_TABLES: dict[bool, _OperandTable] = {}

# ----------------------------------------------------------------------
# operand-table persistence (build once, memmap everywhere)
# ----------------------------------------------------------------------

#: bump when the on-disk matrix layout or any opcode/aux encoding changes
TABLE_FORMAT_VERSION = 1

#: matrix row order; the final extra row holds mnemonic codes
_TABLE_COLUMNS = ("op", "aux", "rd", "rs", "base", "ro", "imm", "cond", "reg_list")


def table_path(zero_is_invalid: bool, root: Union[str, os.PathLike, None] = None) -> Path:
    """Where the persisted operand table for one decode mode lives."""
    base = Path(root) if root is not None else default_cache_root()
    suffix = "-0invalid" if zero_is_invalid else ""
    return base / "tables" / f"operands-v{TABLE_FORMAT_VERSION}-thumb16{suffix}.npy"


def _meta_path(path: Path) -> Path:
    return path.with_name(path.name + ".meta.json")


def save_operand_table(
    table: _OperandTable, root: Union[str, os.PathLike, None] = None
) -> Path:
    """Persist a fully-decoded table as one ``(10, 65536)`` int64 ``.npy``.

    Rows are the :data:`_TABLE_COLUMNS` in order plus a final row of
    mnemonic codes (``-1`` = invalid word, else an index into the sorted
    mnemonic list stored in the JSON sidecar). Everything is widened to
    int64 so a single matrix serves all columns; loaders take zero-copy
    row views, so the width costs only page-cache (5 MiB, shared across
    every worker that maps it). The ``.npy`` is written atomically first
    and the sidecar second — the loader requires the sidecar, so a torn
    write is simply ignored.
    """
    if not bool(table.filled.all()):
        raise ValueError("refusing to persist a partially-decoded operand table")
    path = table_path(table.zero_is_invalid, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = sorted({name for name in table.mnemonic if name is not None})
    code_of = {name: code for code, name in enumerate(names)}
    matrix = np.empty((len(_TABLE_COLUMNS) + 1, 1 << 16), dtype=np.int64)
    for row, column in enumerate(_TABLE_COLUMNS):
        matrix[row] = getattr(table, column)
    matrix[-1] = np.fromiter(
        (-1 if name is None else code_of[name] for name in table.mnemonic),
        dtype=np.int64,
        count=1 << 16,
    )
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, matrix)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    meta = {
        "format": TABLE_FORMAT_VERSION,
        "isa": "thumb16",
        "zero_is_invalid": table.zero_is_invalid,
        "columns": list(_TABLE_COLUMNS),
        "mnemonics": names,
    }
    meta_path = _meta_path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=meta_path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(meta, handle)
        os.replace(tmp, meta_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_operand_table(
    zero_is_invalid: bool, root: Union[str, os.PathLike, None] = None
) -> Optional[_OperandTable]:
    """Load a persisted table as zero-copy memmap row views, or ``None``.

    ``np.load(..., mmap_mode="r")`` maps the matrix read-only, so every
    process (fork *or* spawn) that loads the same artifact shares one
    page-cache copy — workers never re-decode, and the read-only mapping
    makes accidental mutation of a complete table a hard error. Any
    validation failure (missing/torn files, version or mode mismatch)
    falls back to ``None`` and the caller lazily fills a fresh table.
    """
    path = table_path(zero_is_invalid, root)
    try:
        meta = json.loads(_meta_path(path).read_text())
        if (
            meta.get("format") != TABLE_FORMAT_VERSION
            or meta.get("isa") != "thumb16"
            or meta.get("zero_is_invalid") is not zero_is_invalid
            or meta.get("columns") != list(_TABLE_COLUMNS)
        ):
            return None
        names = meta["mnemonics"]
        matrix = np.load(path, mmap_mode="r", allow_pickle=False)
        if matrix.shape != (len(_TABLE_COLUMNS) + 1, 1 << 16) or matrix.dtype != np.int64:
            return None
        table = _OperandTable(zero_is_invalid)
        for row, column in enumerate(_TABLE_COLUMNS):
            # Base-class view of the mapped buffer: same shared pages,
            # without np.memmap's per-indexing subclass dispatch overhead.
            setattr(table, column, matrix[row].view(np.ndarray))
        lookup = [None] + list(names)
        table.mnemonic = [lookup[code + 1] for code in matrix[-1].tolist()]
        table.filled = np.ones(1 << 16, dtype=bool)
        table.complete = True
        table._matrix = matrix  # keep the memmap alive alongside its row views
        return table
    except Exception:
        return None


def operand_table(
    zero_is_invalid: bool, root: Union[str, os.PathLike, None] = None
) -> _OperandTable:
    """The process-wide operand table for one ``zero_is_invalid`` setting.

    First use per process tries the persisted artifact (under ``root`` if
    given, else the default cache root — see ``repro warm-tables``); when
    none validates, rows are decoded lazily through the scalar decoder as
    before. Successful loads count ``vector.table_loads`` on the ambient
    observer.
    """
    table = _TABLES.get(zero_is_invalid)
    if table is None:
        candidates = []
        if root is not None:
            candidates.append(root)
        candidates.append(None)  # default cache root
        for candidate in candidates:
            table = load_operand_table(zero_is_invalid, candidate)
            if table is not None:
                from repro.obs import current

                current().count("vector.table_loads")
                break
        if table is None:
            table = _OperandTable(zero_is_invalid)
        _TABLES[zero_is_invalid] = table
    return table


def warm_tables(
    root: Union[str, os.PathLike, None] = None,
    settings: Sequence[bool] = (False, True),
) -> list:
    """Decode and persist the operand table for each decode mode.

    The build-once half of the deployment story: run this (via
    ``repro warm-tables``) and every later process — including every
    ``ParallelExecutor`` worker via :func:`preload_operand_tables` —
    memmaps the finished artifact instead of re-decoding 65,536 words.
    The base (``False``) mode is warmed first so the hardened table can
    adopt its rows by bulk copy.
    """
    paths = []
    for zero_is_invalid in settings:
        table = operand_table(zero_is_invalid, root)
        if not table.complete:
            table.fill_all()
        paths.append(save_operand_table(table, root))
    return paths


def preload_operand_tables(
    root: Union[str, os.PathLike, None] = None,
    settings: Sequence[bool] = (False, True),
) -> None:
    """Worker ``initializer``: map persisted tables before any unit runs.

    Safe under both fork and spawn start methods; when no artifact exists
    the worker simply falls back to lazy fill on first use.
    """
    for zero_is_invalid in settings:
        operand_table(zero_is_invalid, root)


# ----------------------------------------------------------------------
# per-batch result
# ----------------------------------------------------------------------

@dataclass
class VectorRun:
    """Final per-lane state of one :meth:`VectorEngine.run` batch."""

    words: np.ndarray       # the corrupted words, lane order == input order
    status: np.ndarray      # terminal ST_* per lane (never ST_RUNNING)
    stop_pc: np.ndarray     # for ST_STOPPED lanes: the marker address reached
    regs: np.ndarray        # (16, N) final architectural registers
    lane_row: np.ndarray    # RAM plane row per lane (0 = shared pristine row)
    ram: np.ndarray         # (rows, ram_size) copy-on-write RAM plane
    ram_base: int

    def read_ram_u32(self, address: int) -> np.ndarray:
        """Little-endian u32 at ``address`` as seen by each lane."""
        off = address - self.ram_base
        rows = self.lane_row
        value = self.ram[rows, off].astype(np.int64)
        for i in range(1, 4):
            value |= self.ram[rows, off + i].astype(np.int64) << (8 * i)
        return value

    def classify_branch(
        self,
        *,
        success_address: int,
        success_register: int,
        success_marker: int,
        normal_register: int,
        normal_marker: int,
    ) -> np.ndarray:
        """Per-lane Figure 2 outcome category codes (``0`` = scalar fallback).

        Mirrors :meth:`SnippetHarness._classify_replay`: a marker-stop lane
        is a success iff it stopped at the fall-through block (or already
        holds the success marker); a halted lane classifies by markers.
        Nonzero values are the shard codes from
        :data:`repro.exec.cache.CATEGORY_CODES`, so a batch result scatters
        straight into the harness memo and the binary cache shards without
        any per-lane Python.
        """
        status = self.status
        r_success = self.regs[success_register]
        r_normal = self.regs[normal_register]
        stopped = status == ST_STOPPED
        halted = status == ST_HALTED
        success = (stopped & ((self.stop_pc == success_address) | (r_success == success_marker))) | (
            halted & (r_success == success_marker)
        )
        no_effect = (stopped | (halted & (r_normal == normal_marker))) & ~success
        return np.select(
            [
                success,
                no_effect,
                status == ST_INVALID,
                status == ST_BAD_FETCH,
                status == ST_BAD_READ,
                halted | (status == ST_LIMIT) | (status == ST_FAILED),
            ],
            [
                CATEGORY_CODES["success"],
                CATEGORY_CODES["no_effect"],
                CATEGORY_CODES["invalid_instruction"],
                CATEGORY_CODES["bad_fetch"],
                CATEGORY_CODES["bad_read"],
                CATEGORY_CODES["failed"],
            ],
            default=0,
        ).astype(np.uint8)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

class VectorEngine:
    """Lock-step executor for one replay point (flash image + snapshot state).

    One engine is built per harness from its post-prefix snapshot; every
    :meth:`run` call executes a fresh batch of corrupted words against it
    without mutating the shared state.
    """

    def __init__(
        self,
        *,
        flash_base: int,
        flash_bytes: bytes,
        target_address: int,
        ram_base: int,
        ram_bytes: bytes,
        init_regs: Sequence[int],
        init_flags: Flags,
        budget: int,
        zero_is_invalid: bool,
        marker_stops: Sequence[int] = (),
        decode_cache: Optional[dict] = None,
        fallback_mnemonics: Iterable[str] = (),
        table_root: Union[str, os.PathLike, None] = None,
    ):
        if len(flash_bytes) % 2:
            raise ValueError("flash image must be an even number of bytes")
        self.table = operand_table(zero_is_invalid, root=table_root)
        self.decode_cache = decode_cache
        self.flash_base = flash_base
        self.flash_end = flash_base + len(flash_bytes)
        self.flash8 = np.frombuffer(flash_bytes, dtype=np.uint8).astype(np.int64)
        self.flash16 = np.frombuffer(flash_bytes, dtype="<u2").astype(np.int64)
        self.target_address = target_address
        self.ram_base = ram_base
        self.ram_size = len(ram_bytes)
        self.ram_end = ram_base + self.ram_size
        self.base_ram = np.frombuffer(ram_bytes, dtype=np.uint8).copy()
        self.init_regs = tuple(int(r) & M32 for r in init_regs)
        self.init_flags = init_flags
        self.budget = budget
        self.stops = tuple(int(s) for s in marker_stops)
        self.fallback_mnemonics = frozenset(fallback_mnemonics)
        # per-halfword fallback verdicts, resolved lazily as rows fill in
        self._fb_mask = np.zeros(1 << 16, dtype=bool)
        self._fb_known = np.zeros(1 << 16, dtype=bool)

    # ------------------------------------------------------------------

    def run(self, word_batch) -> VectorRun:
        """Execute every corrupted word as one lane; returns terminal states."""
        tbl = self.table
        fb_base, fb_end = self.flash_base, self.flash_end
        rb, re_ = self.ram_base, self.ram_end
        ta = self.target_address
        flash8, flash16 = self.flash8, self.flash16

        words = np.asarray(list(word_batch), dtype=np.int64) & 0xFFFF
        n = words.size
        regs = np.empty((16, n), dtype=np.int64)
        for i, value in enumerate(self.init_regs):
            regs[i] = value
        fn = np.full(n, self.init_flags.n, dtype=bool)
        fz = np.full(n, self.init_flags.z, dtype=bool)
        fc = np.full(n, self.init_flags.c, dtype=bool)
        fv = np.full(n, self.init_flags.v, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        status = np.zeros(n, dtype=np.int8)
        stop_pc = np.zeros(n, dtype=np.int64)
        lane_row = np.zeros(n, dtype=np.int64)
        ram = self.base_ram[np.newaxis, :].copy()
        active = np.arange(n)

        # -- lane-state helpers (close over the arrays above) ------------

        def privatize(lanes: np.ndarray) -> None:
            """Give each storing lane a private RAM row (copy of row 0)."""
            nonlocal ram
            fresh = lane_row[lanes] == 0
            if fresh.any():
                new_lanes = lanes[fresh]
                start = ram.shape[0]
                ram = np.concatenate([ram, np.tile(ram[0], (new_lanes.size, 1))])
                lane_row[new_lanes] = start + np.arange(new_lanes.size)

        def rread(reg: np.ndarray, lanes: np.ndarray, addr: np.ndarray) -> np.ndarray:
            """read_reg: the PC reads as instruction address + 4."""
            values = regs[reg, lanes]
            is_pc = reg == 15
            if is_pc.any():
                values = np.where(is_pc, (addr + 4) & M32, values)
            return values

        def rwrite(reg: np.ndarray, lanes: np.ndarray, values: np.ndarray) -> None:
            """write_reg: the PC setter clears bit 0."""
            values = values & M32
            values = np.where(reg == 15, values & ~1, values)
            regs[reg, lanes] = values

        def set_nz(lanes: np.ndarray, result: np.ndarray) -> None:
            fn[lanes] = (result & 0x80000000) != 0
            fz[lanes] = result == 0

        def set_nzc(lanes: np.ndarray, result: np.ndarray, carry: np.ndarray) -> None:
            set_nz(lanes, result)
            fc[lanes] = carry

        def set_nzcv(lanes, result, carry, overflow) -> None:
            set_nzc(lanes, result, carry)
            fv[lanes] = overflow

        def vadd(a, b, carry_in):
            """ARM AddWithCarry on int64 words already masked to 32 bits."""
            ci = carry_in.astype(np.int64) if isinstance(carry_in, np.ndarray) else int(carry_in)
            unsigned_sum = a + b + ci
            result = unsigned_sum & M32
            carry = unsigned_sum > M32
            signed_a = np.where(a & 0x80000000, a - _TWO32, a)
            signed_b = np.where(b & 0x80000000, b - _TWO32, b)
            signed_sum = signed_a + signed_b + ci
            overflow = (signed_sum < -_TWO31) | (signed_sum >= _TWO31)
            return result, carry, overflow

        def vsub(a, b):
            return vadd(a, (~b) & M32, True)

        def vlsl(value, amount, carry_in):
            shift = np.minimum(amount, 31)
            result = np.where(
                amount == 0, value,
                np.where(amount < 32, (value << shift) & M32, 0),
            )
            carry_shift = np.clip(32 - amount, 0, 63)
            carry = np.where(
                amount == 0, carry_in,
                np.where(amount < 32, (value >> carry_shift) & 1 != 0,
                         np.where(amount == 32, (value & 1) != 0, False)),
            )
            return result, carry

        def vlsr(value, amount, carry_in):
            shift = np.minimum(amount, 63)
            result = np.where(
                amount == 0, value,
                np.where(amount < 32, value >> shift, 0),
            )
            carry_shift = np.clip(amount - 1, 0, 63)
            carry = np.where(
                amount == 0, carry_in,
                np.where(amount < 32, (value >> carry_shift) & 1 != 0,
                         np.where(amount == 32, (value >> 31) & 1 != 0, False)),
            )
            return result, carry

        def vasr(value, amount, carry_in):
            sign = (value >> 31) & 1
            signed = np.where(sign == 1, value - _TWO32, value)
            shift = np.minimum(amount, 63)
            result = np.where(
                amount == 0, value,
                np.where(amount < 32, (signed >> shift) & M32,
                         np.where(sign == 1, M32, 0)),
            )
            carry_shift = np.clip(amount - 1, 0, 63)
            carry = np.where(
                amount == 0, carry_in,
                np.where(amount < 32, (value >> carry_shift) & 1 != 0, sign == 1),
            )
            return result, carry

        def vror(value, amount, carry_in):
            shift = amount % 32
            safe = np.clip(shift, 0, 31)
            rotated = ((value >> safe) | (value << (32 - safe))) & M32
            result = np.where(amount == 0, value, np.where(shift == 0, value, rotated))
            carry = np.where(
                amount == 0, carry_in,
                np.where(shift == 0, (value >> 31) & 1 != 0, (rotated >> 31) & 1 != 0),
            )
            return result, carry

        def vcond(cond: np.ndarray, lanes: np.ndarray) -> np.ndarray:
            n_, z_ = fn[lanes], fz[lanes]
            c_, v_ = fc[lanes], fv[lanes]
            out = np.zeros(lanes.size, dtype=bool)
            exprs = {
                0: lambda: z_, 1: lambda: ~z_,
                2: lambda: c_, 3: lambda: ~c_,
                4: lambda: n_, 5: lambda: ~n_,
                6: lambda: v_, 7: lambda: ~v_,
                8: lambda: c_ & ~z_, 9: lambda: ~c_ | z_,
                10: lambda: n_ == v_, 11: lambda: n_ != v_,
                12: lambda: ~z_ & (n_ == v_), 13: lambda: z_ | (n_ != v_),
            }
            for number in _present(cond, 16):
                mask = cond == number
                out[mask] = exprs[number]()[mask]
            return out

        # -- memory helpers ---------------------------------------------

        def slot_readable(target: np.ndarray, length: int, align: int) -> tuple:
            """(readable-without-fault, lies-in-flash) per slot."""
            in_flash = (target >= fb_base) & (target + length <= fb_end)
            in_ram = (target >= rb) & (target + length <= re_)
            ok = in_flash | in_ram
            if align > 1:
                ok &= target % align == 0
            return ok, in_flash

        def gather(lanes, target, length, in_flash):
            """Little-endian load with the per-lane corrupted-slot overlay.

            Caller guarantees validity where the value is consumed; indexes
            are clipped so invalid lanes read garbage instead of faulting.
            """
            flash_off = np.clip(target - fb_base, 0, flash8.size - length)
            ram_off = np.clip(target - rb, 0, self.ram_size - length)
            rows = lane_row[lanes]
            lane_words = words[lanes]
            value = np.zeros(lanes.size, dtype=np.int64)
            for i in range(length):
                byte = np.where(in_flash, flash8[flash_off + i],
                                ram[rows, ram_off + i].astype(np.int64))
                byte_addr = target + i
                byte = np.where(byte_addr == ta, lane_words & 0xFF, byte)
                byte = np.where(byte_addr == ta + 1, (lane_words >> 8) & 0xFF, byte)
                value |= byte << (8 * i)
            return value

        def scatter(lanes, target, value, length) -> None:
            """Store to already-privatized lanes; caller pre-validated."""
            rows = lane_row[lanes]
            off = target - rb
            for i in range(length):
                ram[rows, off + i] = (value >> (8 * i)) & 0xFF

        # -- the lock-step loop -------------------------------------------

        budget = self.budget
        check_stops = bool(self.stops)
        for step_index in range(budget):
            if active.size == 0:
                break
            # 1. halted lanes retire (checked before stepping, like CPU.run)
            is_halted = halted[active]
            if is_halted.any():
                status[active[is_halted]] = ST_HALTED
                active = active[~is_halted]
                if active.size == 0:
                    break
            # 2. marker stops short-circuit only with ≥2 budget steps left,
            #    keeping step accounting identical to the scalar engines
            if check_stops and budget - step_index >= 2:
                pc = regs[15, active]
                at_stop = np.zeros(active.size, dtype=bool)
                for stop in self.stops:
                    at_stop |= pc == stop
                if at_stop.any():
                    idx = active[at_stop]
                    status[idx] = ST_STOPPED
                    stop_pc[idx] = regs[15, idx]
                    active = active[~at_stop]
                    if active.size == 0:
                        break
            # 3. fetch (with the per-lane corrupted-word overlay at target)
            addr = regs[15, active]
            fetch_ok = ((addr & 1) == 0) & (addr >= fb_base) & (addr + 2 <= fb_end)
            if not fetch_ok.all():
                status[active[~fetch_ok]] = ST_BAD_FETCH
                active = active[fetch_ok]
                addr = addr[fetch_ok]
                if active.size == 0:
                    break
            hw = flash16[(addr - fb_base) >> 1]
            at_target = addr == ta
            if at_target.any():
                hw = np.where(at_target, words[active], hw)
            # 4. decode via the shared operand table (scalar decoder inside);
            #    a complete (memmapped or pre-filled) table skips the
            #    missing-row scan entirely
            unique_hw = None
            if not tbl.complete:
                unique_hw = np.unique(hw)
                missing = unique_hw[~tbl.filled[unique_hw]]
                if missing.size:
                    tbl.ensure(missing.tolist(), self.decode_cache)
            if self.fallback_mnemonics:
                if unique_hw is None:
                    unique_hw = np.unique(hw)
                unknown = unique_hw[~self._fb_known[unique_hw]]
                for value in unknown.tolist():
                    self._fb_mask[value] = tbl.mnemonic[value] in self.fallback_mnemonics
                    self._fb_known[value] = True
                is_fb = self._fb_mask[hw]
                if is_fb.any():
                    status[active[is_fb]] = ST_FALLBACK
                    keep = ~is_fb
                    active, addr, hw = active[keep], addr[keep], hw[keep]
                    if active.size == 0:
                        break
            ops = tbl.op[hw]
            is_invalid = ops == OP_INVALID
            if is_invalid.any():
                status[active[is_invalid]] = ST_INVALID
                keep = ~is_invalid
                active, addr, hw, ops = active[keep], addr[keep], hw[keep], ops[keep]
                if active.size == 0:
                    break
            # 5. BL prefixes need the suffix halfword (overlay applies there too)
            suffix = np.zeros(active.size, dtype=np.int64)
            is_bl = ops == OP_BL_PREFIX
            if is_bl.any():
                next_addr = addr + 2
                next_ok = is_bl & (next_addr + 2 <= fb_end)
                idx = np.nonzero(next_ok)[0]
                suffix[idx] = flash16[(next_addr[idx] - fb_base) >> 1]
                overlay = next_ok & (next_addr == ta)
                if overlay.any():
                    suffix = np.where(overlay, words[active], suffix)
                good = next_ok & ((suffix >> 11) == 0b11111)
                bad_bl = is_bl & ~good
                if bad_bl.any():
                    status[active[bad_bl]] = ST_INVALID
                    keep = ~bad_bl
                    active, addr, hw = active[keep], addr[keep], hw[keep]
                    ops, suffix = ops[keep], suffix[keep]
                    if active.size == 0:
                        break
            # 6. advance the PC past the halfword (branches overwrite it;
            #    BL computes its link/target from addr, so +2 vs +4 is moot)
            regs[15, active] = (addr + 2) & M32
            # 7. execute, grouped by opcode
            for op in _present(ops, OP_REV + 1):
                sel = np.nonzero(ops == op)[0]
                l = active[sel]
                a = addr[sel]
                h = hw[sel]
                rd, rs = tbl.rd[h], tbl.rs[h]
                imm = tbl.imm[h]

                if op == OP_SHIFT_IMM or op == OP_SHIFT_REG:
                    aux = tbl.aux[h]
                    if op == OP_SHIFT_IMM:
                        amount = imm
                        value = rread(rs, l, a)
                    else:
                        amount = rread(rs, l, a) & 0xFF
                        value = rread(rd, l, a)
                    result = np.zeros(l.size, dtype=np.int64)
                    carry = np.zeros(l.size, dtype=bool)
                    shifters = (vlsl, vlsr, vasr, vror)
                    for kind in _present(aux, 8):
                        mask = aux == kind
                        res_k, carry_k = shifters[kind](value[mask], amount[mask], fc[l[mask]])
                        result[mask] = res_k
                        carry[mask] = carry_k
                    rwrite(rd, l, result)
                    set_nzc(l, result, carry)
                elif op == OP_ADDS or op == OP_SUBS:
                    ro = tbl.ro[h]
                    lhs = rread(rs, l, a)
                    rhs = np.where(ro >= 0, regs[np.maximum(ro, 0), l], imm)
                    if op == OP_ADDS:
                        result, carry, overflow = vadd(lhs, rhs, False)
                    else:
                        result, carry, overflow = vsub(lhs, rhs)
                    rwrite(rd, l, result)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_MOVS_IMM:
                    rwrite(rd, l, imm)
                    set_nz(l, imm)
                elif op == OP_CMP_IMM:
                    result, carry, overflow = vsub(rread(rd, l, a), imm)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_CMP_REG:
                    result, carry, overflow = vsub(rread(rd, l, a), rread(rs, l, a))
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_CMN:
                    result, carry, overflow = vadd(rread(rd, l, a), rread(rs, l, a), False)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_LOGIC:
                    aux = tbl.aux[h]
                    lhs = rread(rd, l, a)
                    rhs = rread(rs, l, a)
                    result = np.select(
                        [aux == 0, aux == 1, aux == 2],
                        [lhs & rhs, lhs ^ rhs, lhs | rhs],
                        default=lhs & ~rhs & M32,
                    )
                    rwrite(rd, l, result)
                    set_nz(l, result)
                elif op == OP_TST:
                    set_nz(l, rread(rd, l, a) & rread(rs, l, a))
                elif op == OP_ADC:
                    result, carry, overflow = vadd(rread(rd, l, a), rread(rs, l, a), fc[l])
                    rwrite(rd, l, result)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_SBC:
                    result, carry, overflow = vadd(
                        rread(rd, l, a), (~rread(rs, l, a)) & M32, fc[l]
                    )
                    rwrite(rd, l, result)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_NEG:
                    value = rread(rs, l, a)
                    result, carry, overflow = vsub(np.zeros_like(value), value)
                    rwrite(rd, l, result)
                    set_nzcv(l, result, carry, overflow)
                elif op == OP_MUL:
                    result = (rread(rd, l, a) * rread(rs, l, a)) & M32
                    rwrite(rd, l, result)
                    set_nz(l, result)
                elif op == OP_MVN:
                    result = (~rread(rs, l, a)) & M32
                    rwrite(rd, l, result)
                    set_nz(l, result)
                elif op == OP_HI_ADD:
                    rwrite(rd, l, (rread(rd, l, a) + rread(rs, l, a)) & M32)
                elif op == OP_HI_MOV:
                    rwrite(rd, l, rread(rs, l, a))
                elif op == OP_BX:
                    target = rread(rs, l, a)
                    thumb = (target & 1) == 1
                    if not thumb.all():
                        status[l[~thumb]] = ST_BAD_FETCH
                    ok_l = l[thumb]
                    if ok_l.size:
                        aux = tbl.aux[h][thumb]
                        is_blx = aux == 1
                        if is_blx.any():
                            regs[14, ok_l[is_blx]] = (a[thumb][is_blx] + 2) | 1
                        regs[15, ok_l] = target[thumb] & ~1 & M32
                elif op == OP_LOAD or op == OP_STORE:
                    aux = tbl.aux[h]
                    base = tbl.base[h]
                    ro = tbl.ro[h]
                    base_value = np.where(
                        base == 15, (a + 4) & ~3, regs[np.maximum(base, 0), l]
                    )
                    offset = np.where(ro >= 0, regs[np.maximum(ro, 0), l], imm)
                    target = (base_value + offset) & M32
                    widths = _LOAD_WIDTH if op == OP_LOAD else _STORE_WIDTH
                    for kind in _present(aux, 8):
                        mask = aux == kind
                        lanes_k = l[mask]
                        target_k = target[mask]
                        width = widths[kind]
                        if op == OP_LOAD:
                            ok, in_flash = slot_readable(target_k, width, width)
                            if not ok.all():
                                status[lanes_k[~ok]] = ST_BAD_READ
                            value = gather(lanes_k, target_k, width, in_flash)
                            if kind == 3:  # ldrsh
                                value = np.where(value & 0x8000, value - 0x10000, value)
                            elif kind == 4:  # ldrsb
                                value = np.where(value & 0x80, value - 0x100, value)
                            good = np.nonzero(mask)[0][ok]
                            rwrite(rd[good], l[good], value[ok])
                        else:
                            aligned = target_k % width == 0 if width > 1 else np.ones(
                                lanes_k.size, dtype=bool
                            )
                            ok = aligned & (target_k >= rb) & (target_k + width <= re_)
                            if not ok.all():
                                status[lanes_k[~ok]] = ST_BAD_READ
                            store_lanes = lanes_k[ok]
                            if store_lanes.size:
                                privatize(store_lanes)
                                good = np.nonzero(mask)[0][ok]
                                scatter(store_lanes, target_k[ok],
                                        rread(rd[good], l[good], a[good]), width)
                elif op == OP_ADR:
                    rwrite(rd, l, ((a + 4) & ~3) + imm)
                elif op == OP_ADD_SP_IMM:
                    rwrite(rd, l, (regs[13, l] + imm) & M32)
                elif op == OP_ADJ_SP:
                    regs[13, l] = (regs[13, l] + imm) & M32
                elif op == OP_PUSH:
                    reg_list = tbl.reg_list[h].astype(np.int64)
                    count = np.bitwise_count(reg_list).astype(np.int64)
                    sp = regs[13, l]
                    new_sp = (sp - 4 * count) & M32
                    ok = (new_sp % 4 == 0) & (new_sp >= rb) & (new_sp + 4 * count <= re_)
                    if not ok.all():
                        status[l[~ok]] = ST_BAD_READ
                    push_lanes = l[ok]
                    if push_lanes.size:
                        privatize(push_lanes)
                        base_sp = new_sp[ok]
                        masks = reg_list[ok]
                        for reg in range(16):
                            has = (masks >> reg) & 1 == 1
                            if not has.any():
                                continue
                            rank = np.bitwise_count(masks & ((1 << reg) - 1)).astype(np.int64)
                            scatter(push_lanes[has], (base_sp + 4 * rank)[has],
                                    regs[reg, push_lanes[has]], 4)
                        regs[13, push_lanes] = base_sp
                elif op == OP_POP or op == OP_LDMIA:
                    reg_list = tbl.reg_list[h].astype(np.int64)
                    count = np.bitwise_count(reg_list).astype(np.int64)
                    if op == OP_POP:
                        base_addr = regs[13, l]
                    else:
                        base_addr = regs[np.maximum(tbl.base[h], 0), l]
                    # every slot must be loadable; check them all up front
                    # (the scalar engine faults at the first bad one — same
                    # terminal category, and partial effects are invisible)
                    ok = np.ones(l.size, dtype=bool)
                    max_count = int(count.max()) if count.size else 0
                    for rank in range(max_count):
                        in_range = rank < count
                        slot = base_addr + 4 * rank
                        slot_ok, _ = slot_readable(slot, 4, 4)
                        ok &= ~in_range | slot_ok
                    if not ok.all():
                        status[l[~ok]] = ST_BAD_READ
                    good = np.nonzero(ok)[0]
                    if good.size:
                        lanes_g = l[good]
                        base_g = base_addr[good]
                        masks = reg_list[good]
                        count_g = count[good]
                        end = (base_g + 4 * count_g) & M32
                        if op == OP_POP:
                            regs[13, lanes_g] = end
                        for reg in range(16):
                            has = (masks >> reg) & 1 == 1
                            if not has.any():
                                continue
                            rank = np.bitwise_count(masks & ((1 << reg) - 1)).astype(np.int64)
                            slot = (base_g + 4 * rank)[has]
                            lanes_r = lanes_g[has]
                            _, in_flash = slot_readable(slot, 4, 4)
                            value = gather(lanes_r, slot, 4, in_flash)
                            if reg == 15:
                                value = value & ~1
                            regs[reg, lanes_r] = value & M32
                        if op == OP_LDMIA:
                            base_reg = tbl.base[h][good]
                            writeback = (masks >> base_reg) & 1 == 0
                            if writeback.any():
                                regs[base_reg[writeback], lanes_g[writeback]] = end[writeback]
                elif op == OP_STMIA:
                    reg_list = tbl.reg_list[h].astype(np.int64)
                    count = np.bitwise_count(reg_list).astype(np.int64)
                    base_reg = tbl.base[h]
                    base_addr = regs[np.maximum(base_reg, 0), l]
                    ok = (base_addr % 4 == 0) & (base_addr >= rb) & (
                        base_addr + 4 * count <= re_
                    )
                    if not ok.all():
                        status[l[~ok]] = ST_BAD_READ
                    good = np.nonzero(ok)[0]
                    if good.size:
                        lanes_g = l[good]
                        privatize(lanes_g)
                        base_g = base_addr[good]
                        masks = reg_list[good]
                        for reg in range(16):
                            has = (masks >> reg) & 1 == 1
                            if not has.any():
                                continue
                            rank = np.bitwise_count(masks & ((1 << reg) - 1)).astype(np.int64)
                            scatter(lanes_g[has], (base_g + 4 * rank)[has],
                                    regs[reg, lanes_g[has]], 4)
                        # writeback always happens (base-in-list stored the
                        # original value because stores gathered it first)
                        regs[base_reg[good], lanes_g] = (base_g + 4 * count[good]) & M32
                elif op == OP_BCOND:
                    taken = vcond(tbl.cond[h], l)
                    if taken.any():
                        regs[15, l[taken]] = (a[taken] + 4 + imm[taken]) & M32 & ~1
                elif op == OP_B:
                    regs[15, l] = (a + 4 + imm) & M32 & ~1
                elif op == OP_BL_PREFIX:
                    low = (suffix[sel] & 0x7FF) << 1
                    regs[14, l] = (a + 4) | 1
                    regs[15, l] = (a + 4 + imm + low) & M32 & ~1
                elif op == OP_SVC:
                    status[l] = ST_FAILED
                elif op == OP_HALT:
                    halted[l] = True
                elif op == OP_NOP:
                    pass
                elif op == OP_EXTEND:
                    aux = tbl.aux[h]
                    value = rread(rs, l, a)
                    half = value & 0xFFFF
                    byte = value & 0xFF
                    result = np.select(
                        [aux == 0, aux == 1, aux == 2],
                        [
                            np.where(half & 0x8000, half - 0x10000, half),
                            np.where(byte & 0x80, byte - 0x100, byte),
                            half,
                        ],
                        default=byte,
                    )
                    rwrite(rd, l, result)
                elif op == OP_REV:
                    aux = tbl.aux[h]
                    value = rread(rs, l, a)
                    b0, b1 = value & 0xFF, (value >> 8) & 0xFF
                    b2, b3 = (value >> 16) & 0xFF, (value >> 24) & 0xFF
                    swapped_half = b1 | (b0 << 8)
                    result = np.select(
                        [aux == 0, aux == 1],
                        [
                            (b0 << 24) | (b1 << 16) | (b2 << 8) | b3,
                            swapped_half | (b3 << 16) | (b2 << 24),
                        ],
                        default=np.where(
                            swapped_half & 0x8000, swapped_half - 0x10000, swapped_half
                        ),
                    )
                    rwrite(rd, l, result)
                else:  # pragma: no cover - every table opcode is handled above
                    status[l] = ST_FALLBACK
            active = active[status[active] == ST_RUNNING]

        # budget exhausted: halted lanes classify, the rest hit the limit
        # (a lane parked on a stop address with zero budget is a limit too,
        # matching the scalar resume-with-empty-budget path)
        remaining = np.nonzero(status == ST_RUNNING)[0]
        if remaining.size:
            ended_halted = halted[remaining]
            status[remaining[ended_halted]] = ST_HALTED
            status[remaining[~ended_halted]] = ST_LIMIT

        return VectorRun(
            words=words,
            status=status,
            stop_pc=stop_pc,
            regs=regs,
            lane_row=lane_row,
            ram=ram,
            ram_base=rb,
        )


__all__ = [
    "VectorEngine",
    "VectorRun",
    "TABLE_FORMAT_VERSION",
    "load_operand_table",
    "operand_table",
    "preload_operand_tables",
    "save_operand_table",
    "table_path",
    "warm_tables",
    "STATUS_CATEGORIES",
    "ST_HALTED",
    "ST_STOPPED",
    "ST_LIMIT",
    "ST_INVALID",
    "ST_BAD_FETCH",
    "ST_BAD_READ",
    "ST_FAILED",
    "ST_FALLBACK",
]

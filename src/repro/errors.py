"""Exception hierarchy shared across the reproduction.

The emulator communicates abnormal execution through typed exceptions so
that glitching campaigns can classify outcomes the same way the paper's
Unicorn-based framework classified emulator error codes (Section IV):
*bad read*, *bad fetch*, *invalid instruction*, and a catch-all *failed*.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operands, out-of-range immediate)."""


class AssemblerError(ReproError):
    """Assembly source was malformed (unknown mnemonic, undefined label, ...)."""


class EmulationFault(ReproError):
    """Base class for faults raised while executing code in the emulator."""

    #: Short machine-readable kind used by outcome classification.
    kind = "failed"

    def __init__(self, message: str, address: int | None = None):
        super().__init__(message)
        self.address = address


class InvalidInstruction(EmulationFault):
    """The fetched halfword does not decode to a defined Thumb instruction."""

    kind = "invalid_instruction"


class BadFetch(EmulationFault):
    """Instruction fetch from unmapped or non-executable memory (e.g. PC corrupted)."""

    kind = "bad_fetch"


class BadRead(EmulationFault):
    """Data read from unmapped memory."""

    kind = "bad_read"


class BadWrite(EmulationFault):
    """Data write to unmapped or read-only memory."""

    kind = "bad_write"


class AlignmentFault(EmulationFault):
    """Unaligned access where the architecture requires alignment."""

    kind = "bad_read"


class ExecutionLimitExceeded(EmulationFault):
    """The step budget ran out before the program reached a terminal state."""

    kind = "timeout"


class HardFault(EmulationFault):
    """The simulated MCU took an unrecoverable fault (reset required)."""

    kind = "hard_fault"


class CompileError(ReproError):
    """MiniC source failed to lex, parse, type-check, or lower."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        location = "" if line is None else f" at line {line}" + ("" if col is None else f", col {col}")
        super().__init__(message + location)
        self.line = line
        self.col = col


class PassError(ReproError):
    """An IR or AST transformation pass was misconfigured or hit an invariant violation."""


class LayoutError(ReproError):
    """Image layout failed (overlapping sections, oversized segment, missing symbol)."""


class GlitchConfigError(ReproError):
    """A glitching campaign was configured with out-of-range parameters."""


class ImageError(ReproError):
    """A firmware image could not be loaded (malformed ihex record, bad
    checksum, overlapping segments, odd-length raw image, ...)."""

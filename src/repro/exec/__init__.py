"""Campaign execution: parallel fan-out, persistent outcome caching, progress.

The Figure 2 emulation campaign executes 4 × 2^16 snippets and each
Table VI defense scan fires ~100k ``run_attempt`` calls; this package keeps
those loops out of single-core Python:

- :class:`ParallelExecutor` fans picklable work specs out over
  ``multiprocessing`` and merges results deterministically (``workers=1``
  is a pure in-process path, so serial and parallel runs stay
  bit-identical);
- :class:`OutcomeCache` persists snippet-harness outcomes on disk keyed by
  ``(mnemonic, zero_is_invalid, corrupted_word)`` so panels that share
  corrupted words — and re-runs — skip emulation entirely;
- :class:`ProgressReporter` tracks attempts/sec, per-category tallies,
  elapsed time, and ETA, surfaced through a callback (the CLI's
  ``--progress`` flag).
"""

from repro.exec.cache import OutcomeCache, coerce_cache, default_cache_root
from repro.exec.executor import ParallelExecutor, resolve_workers
from repro.exec.progress import ProgressReporter, ProgressSnapshot, console_progress

__all__ = [
    "ParallelExecutor",
    "resolve_workers",
    "OutcomeCache",
    "coerce_cache",
    "default_cache_root",
    "ProgressReporter",
    "ProgressSnapshot",
    "console_progress",
]

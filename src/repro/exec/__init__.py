"""Campaign execution: parallel fan-out, caching, checkpoints, progress.

The Figure 2 emulation campaign executes 4 × 2^16 snippets and each
Table VI defense scan fires ~100k ``run_attempt`` calls; this package keeps
those loops out of single-core Python *and* makes them survivable:

- :class:`ParallelExecutor` fans picklable work specs out over
  ``multiprocessing`` and merges results deterministically (``workers=1``
  is a pure in-process path, so serial and parallel runs stay
  bit-identical). Failing units retry with exponential backoff, hung
  workers are bounded by ``unit_timeout``, and poisoned specs quarantine
  into ``failed_units`` instead of killing the campaign;
- :class:`OutcomeCache` persists snippet-harness outcomes on disk keyed by
  ``(mnemonic, zero_is_invalid, corrupted_word)`` so panels that share
  corrupted words — and re-runs — skip emulation entirely;
- :class:`CampaignCheckpoint` records completed work units as JSONL so an
  interrupted campaign resumes from where it stopped and merges to the
  same tallies an uninterrupted run produces;
- :class:`ProgressReporter` tracks attempts/sec, per-category tallies,
  elapsed time, and ETA, surfaced through a callback (the CLI's
  ``--progress`` flag);
- :class:`SlotPool` hands out bounded per-key concurrency slots — the
  backpressure primitive the campaign service (:mod:`repro.service`)
  uses for fair multi-tenant scheduling.
"""

from repro.exec.cache import OutcomeCache, coerce_cache, default_cache_root
from repro.exec.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatch,
    campaign_id,
    default_checkpoint_root,
    open_campaign_checkpoint,
)
from repro.exec.executor import FailedUnit, ParallelExecutor, resolve_workers
from repro.exec.progress import ProgressReporter, ProgressSnapshot, console_progress
from repro.exec.slots import SlotPool

__all__ = [
    "ParallelExecutor",
    "FailedUnit",
    "resolve_workers",
    "SlotPool",
    "OutcomeCache",
    "coerce_cache",
    "default_cache_root",
    "CampaignCheckpoint",
    "CheckpointMismatch",
    "campaign_id",
    "default_checkpoint_root",
    "open_campaign_checkpoint",
    "ProgressReporter",
    "ProgressSnapshot",
    "console_progress",
]

"""Persistent on-disk outcome cache for the Section IV snippet harness.

The outcome of executing a corrupted snippet is a pure function of
``(mnemonic, zero_is_invalid, corrupted_word)``, so it can be memoised
across processes and across runs. The Figure 2 panels share corrupted
words heavily — AND and XOR produce overlapping word populations, and the
0x0000-invalid panel re-executes the same words under a different decode
mode — so a warm cache turns a repeat panel into pure dictionary lookups.

Layout: one JSON shard per ``(mnemonic, zero_is_invalid)`` pair under the
cache root, mapping the 16-bit corrupted word to its outcome category.
Only categories are persisted (campaign tallies never consume the
free-text outcome detail). Shards are written atomically (temp file +
rename), and each campaign work unit owns exactly one shard, so parallel
workers never contend on a file.

The root defaults to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro-glitching``, else ``~/.cache/repro-glitching``.

Long-lived multi-tenant holders (the campaign service) bound the
in-memory footprint with ``max_shards``: shards are kept in LRU order
and the least-recently-used one is written back to disk and dropped when
the bound is exceeded. Eviction is invisible to correctness — a re-touch
of an evicted shard reloads it from the freshly-flushed file — it only
trades memory for a reload. The default (``max_shards=None``) keeps the
historical unbounded behavior, which is right for one-shot campaigns.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from types import MappingProxyType
from typing import Mapping, Optional, Union


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-glitching"


class OutcomeCache:
    """Disk-backed ``(mnemonic, zero_is_invalid, word) -> category`` store."""

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        max_shards: Optional[int] = None,
    ):
        if max_shards is not None and max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {max_shards}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_shards = max_shards
        # insertion order doubles as LRU order: _shard() re-inserts on touch
        self._shards: dict[tuple[str, bool], dict[int, str]] = {}
        self._dirty: set[tuple[str, bool]] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Words resolved from a harness's in-memory memo before any disk
        # lookup happened. Invisible to hits/misses by design (no shard was
        # consulted), but campaign accounting still wants the denominator:
        # hits + misses + memo_hits == words requested.
        self.memo_hits = 0

    # ------------------------------------------------------------------

    def get(self, mnemonic: str, zero_is_invalid: bool, word: int) -> Optional[str]:
        category = self._shard(mnemonic, zero_is_invalid).get(word & 0xFFFF)
        if category is None:
            self.misses += 1
        else:
            self.hits += 1
        return category

    def put(self, mnemonic: str, zero_is_invalid: bool, word: int, category: str) -> None:
        self._shard(mnemonic, zero_is_invalid)[word & 0xFFFF] = category
        self._dirty.add((mnemonic, zero_is_invalid))

    def get_shard(
        self, mnemonic: str, zero_is_invalid: bool
    ) -> Mapping[int, str]:
        """Read-only view of the whole ``(mnemonic, zero_is_invalid)`` shard.

        Bulk counterpart to :meth:`get` for the mask-algebra path: one call
        replaces up to 2^16 per-word lookups. Does **not** touch the
        hit/miss counters — callers that consult the shard directly report
        their own totals via :meth:`account`.
        """
        return MappingProxyType(self._shard(mnemonic, zero_is_invalid))

    def put_shard(
        self, mnemonic: str, zero_is_invalid: bool, entries: Mapping[int, str]
    ) -> None:
        """Merge ``entries`` (word → category) into the shard in one pass."""
        if not entries:
            return
        shard = self._shard(mnemonic, zero_is_invalid)
        for word, category in entries.items():
            shard[word & 0xFFFF] = category
        self._dirty.add((mnemonic, zero_is_invalid))

    def account(self, hits: int = 0, misses: int = 0, memo_hits: int = 0) -> None:
        """Record bulk totals for lookups done outside :meth:`get`.

        ``hits``/``misses`` cover shard lookups done via :meth:`get_shard`;
        ``memo_hits`` covers words a harness resolved from its in-memory
        memo without consulting the disk layer at all.
        """
        self.hits += hits
        self.misses += misses
        self.memo_hits += memo_hits

    def flush(self) -> None:
        """Write every dirty shard atomically (temp file + rename)."""
        for key in sorted(self._dirty):
            self._write_shard(key)
        self._dirty.clear()

    def _write_shard(self, key: tuple[str, bool]) -> None:
        path = self._shard_path(*key)
        payload = json.dumps(
            {str(word): category for word, category in sorted(self._shards[key].items())}
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Entries across the shards loaded so far (not the whole disk store)."""
        return sum(len(shard) for shard in self._shards.values())

    def __enter__(self) -> "OutcomeCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # ------------------------------------------------------------------

    def _shard_path(self, mnemonic: str, zero_is_invalid: bool) -> Path:
        suffix = "-0invalid" if zero_is_invalid else ""
        return self.root / f"{mnemonic}{suffix}.json"

    def _shard(self, mnemonic: str, zero_is_invalid: bool) -> dict[int, str]:
        key = (mnemonic, zero_is_invalid)
        shard = self._shards.get(key)
        if shard is not None:
            if self.max_shards is not None:
                # touch: move to the most-recently-used end
                self._shards[key] = self._shards.pop(key)
            return shard
        path = self._shard_path(*key)
        shard = {}
        if path.exists():
            try:
                raw = json.loads(path.read_text())
            except (OSError, ValueError):
                raw = {}  # a torn/corrupt shard is a cache miss, not an error
            shard = {int(word): category for word, category in raw.items()}
        self._shards[key] = shard
        if self.max_shards is not None:
            self._evict(keep=key)
        return shard

    def _evict(self, keep: tuple[str, bool]) -> None:
        """Drop least-recently-used shards until within ``max_shards``.

        A dirty victim is written back first, so eviction never loses
        entries — an evicted shard re-touched later reloads bit-identical
        from disk. ``keep`` (the shard just touched) is never the victim.
        """
        while len(self._shards) > self.max_shards:
            victim = next(key for key in self._shards if key != keep)
            if victim in self._dirty:
                self._write_shard(victim)
                self._dirty.discard(victim)
            del self._shards[victim]
            self.evictions += 1


def coerce_cache(
    cache: Union["OutcomeCache", str, os.PathLike, None]
) -> Optional[OutcomeCache]:
    """Accept an OutcomeCache, a directory path, or None."""
    if cache is None or isinstance(cache, OutcomeCache):
        return cache
    return OutcomeCache(cache)


__all__ = ["OutcomeCache", "coerce_cache", "default_cache_root"]

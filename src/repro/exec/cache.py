"""Persistent on-disk outcome cache for the Section IV snippet harness.

The outcome of executing a corrupted snippet is a pure function of
``(mnemonic, zero_is_invalid, corrupted_word)``, so it can be memoised
across processes and across runs. The Figure 2 panels share corrupted
words heavily — AND and XOR produce overlapping word populations, and the
0x0000-invalid panel re-executes the same words under a different decode
mode — so a warm cache turns a repeat panel into pure array gathers.

Layout: one **dense binary shard** per ``(mnemonic, zero_is_invalid)``
pair under the cache root — a ``uint8`` array of 65,536 category codes
(one slot per possible 16-bit corrupted word, ``0`` = not cached,
``1 + CATEGORIES.index(category)`` otherwise), serialized as a ``.npy``
file. The dense shape makes every cache operation an array op: a batch
lookup is one fancy-indexed gather, a batch merge is one scatter, and the
whole shard is 64 KiB regardless of entry count. Only categories are
persisted (campaign tallies never consume the free-text outcome detail).
Shards are written atomically (temp file + rename), and each campaign
work unit owns exactly one shard, so parallel workers never contend on a
file.

Migration: shards written by older versions as JSON
(``{"<word>": "<category>"}`` in ``<mnemonic>[-0invalid].json``) are
still read — when no ``.npy`` shard exists the legacy file is decoded
into a code array transparently, and the next flush persists it in the
binary format.

The root defaults to ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro-glitching``, else ``~/.cache/repro-glitching``.

Long-lived multi-tenant holders (the campaign service) bound the
in-memory footprint with ``max_shards``: shards are kept in LRU order
and the least-recently-used one is written back to disk and dropped when
the bound is exceeded. Eviction is invisible to correctness — a re-touch
of an evicted shard reloads it from the freshly-flushed file — it only
trades memory for a reload. The default (``max_shards=None``) keeps the
historical unbounded behavior, which is right for one-shot campaigns.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Mapping as _MappingABC
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

import numpy as np

#: size of the 16-bit corrupted-word space — one shard slot per word
WORD_SPACE = 1 << 16

#: every outcome category, in the canonical (paper Section IV) order;
#: must match ``repro.glitchsim.harness.OUTCOME_CATEGORIES`` — the shard
#: code for a category is ``1 + CATEGORIES.index(category)``, and the
#: binary shard format depends on this order staying fixed.
CATEGORIES = (
    "success",
    "bad_read",
    "invalid_instruction",
    "bad_fetch",
    "failed",
    "no_effect",
)

#: category name -> nonzero shard code
CATEGORY_CODES = {name: code for code, name in enumerate(CATEGORIES, start=1)}

#: shard code -> category name (index 0, "not cached", maps to ``None``)
CODE_CATEGORIES = (None,) + CATEGORIES


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-glitching"


class ShardView(_MappingABC):
    """Read-only ``word -> category`` mapping over a dense code array.

    The dict-shaped counterpart of :meth:`OutcomeCache.get_shard_codes`:
    iteration yields only the cached words (nonzero codes), lookups of
    uncached words raise ``KeyError`` (so ``.get`` returns ``None``), and
    the view rejects mutation like the ``MappingProxyType`` it replaced.
    """

    __slots__ = ("_codes",)

    def __init__(self, codes: np.ndarray):
        self._codes = codes

    def __getitem__(self, word) -> str:
        try:
            index = int(word)
        except (TypeError, ValueError):
            raise KeyError(word) from None
        if not 0 <= index < WORD_SPACE:
            raise KeyError(word)
        code = int(self._codes[index])
        if code == 0:
            raise KeyError(word)
        return CATEGORIES[code - 1]

    def __iter__(self) -> Iterator[int]:
        return iter(np.nonzero(self._codes)[0].tolist())

    def __len__(self) -> int:
        return int(np.count_nonzero(self._codes))


class OutcomeCache:
    """Disk-backed ``(mnemonic, zero_is_invalid, word) -> category`` store."""

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        max_shards: Optional[int] = None,
    ):
        if max_shards is not None and max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {max_shards}")
        self.root = Path(root) if root is not None else default_cache_root()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_shards = max_shards
        # insertion order doubles as LRU order: _shard() re-inserts on touch
        self._shards: dict[tuple[str, bool], np.ndarray] = {}
        self._dirty: set[tuple[str, bool]] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Words resolved from a harness's in-memory memo before any disk
        # lookup happened. Invisible to hits/misses by design (no shard was
        # consulted), but campaign accounting still wants the denominator:
        # hits + misses + memo_hits == words requested.
        self.memo_hits = 0

    # ------------------------------------------------------------------

    def get(self, mnemonic: str, zero_is_invalid: bool, word: int) -> Optional[str]:
        code = int(self._shard(mnemonic, zero_is_invalid)[word & 0xFFFF])
        if code == 0:
            self.misses += 1
            return None
        self.hits += 1
        return CATEGORIES[code - 1]

    def put(self, mnemonic: str, zero_is_invalid: bool, word: int, category: str) -> None:
        code = CATEGORY_CODES.get(category)
        if code is None:
            raise ValueError(f"unknown outcome category {category!r}")
        self._shard(mnemonic, zero_is_invalid)[word & 0xFFFF] = code
        self._dirty.add((mnemonic, zero_is_invalid))

    def get_shard(
        self, mnemonic: str, zero_is_invalid: bool
    ) -> Mapping[int, str]:
        """Read-only view of the whole ``(mnemonic, zero_is_invalid)`` shard.

        Bulk counterpart to :meth:`get` for dict-shaped consumers; the
        mask-algebra hot path uses :meth:`get_shard_codes` instead. Does
        **not** touch the hit/miss counters — callers that consult the
        shard directly report their own totals via :meth:`account`.
        """
        return ShardView(self._shard(mnemonic, zero_is_invalid))

    def get_shard_codes(self, mnemonic: str, zero_is_invalid: bool) -> np.ndarray:
        """The shard's dense ``uint8`` code array, as a read-only view.

        Zero-copy: index it with a word array to resolve a whole batch in
        one gather (``0`` = not cached, else ``CODE_CATEGORIES[code]``).
        Like :meth:`get_shard`, it never touches the hit/miss counters —
        report bulk totals via :meth:`account`.
        """
        view = self._shard(mnemonic, zero_is_invalid).view()
        view.flags.writeable = False
        return view

    def put_shard(
        self, mnemonic: str, zero_is_invalid: bool, entries: Mapping[int, str]
    ) -> None:
        """Merge ``entries`` (word → category) into the shard in one pass."""
        if not entries:
            return
        n = len(entries)
        words = np.fromiter(entries.keys(), dtype=np.int64, count=n) & 0xFFFF
        try:
            codes = np.fromiter(
                (CATEGORY_CODES[category] for category in entries.values()),
                dtype=np.uint8,
                count=n,
            )
        except KeyError as exc:
            raise ValueError(f"unknown outcome category {exc.args[0]!r}") from None
        self._shard(mnemonic, zero_is_invalid)[words] = codes
        self._dirty.add((mnemonic, zero_is_invalid))

    def put_shard_codes(
        self,
        mnemonic: str,
        zero_is_invalid: bool,
        words: np.ndarray,
        codes: np.ndarray,
    ) -> None:
        """Merge parallel ``words``/``codes`` arrays in one scatter.

        The array counterpart of :meth:`put_shard`: ``codes`` must hold
        valid nonzero category codes (``CATEGORY_CODES`` values) — this is
        the trusted fast path for harness batches whose codes came out of
        the vector engine's classifier.
        """
        words = np.asarray(words, dtype=np.int64)
        if words.size == 0:
            return
        shard = self._shard(mnemonic, zero_is_invalid)
        shard[words & 0xFFFF] = np.asarray(codes, dtype=np.uint8)
        self._dirty.add((mnemonic, zero_is_invalid))

    def account(self, hits: int = 0, misses: int = 0, memo_hits: int = 0) -> None:
        """Record bulk totals for lookups done outside :meth:`get`.

        ``hits``/``misses`` cover shard lookups done via :meth:`get_shard`
        or :meth:`get_shard_codes`; ``memo_hits`` covers words a harness
        resolved from its in-memory memo without consulting the disk layer
        at all.
        """
        self.hits += hits
        self.misses += misses
        self.memo_hits += memo_hits

    def flush(self) -> None:
        """Write every dirty shard atomically (temp file + rename)."""
        for key in sorted(self._dirty):
            self._write_shard(key)
        self._dirty.clear()

    def _write_shard(self, key: tuple[str, bool]) -> None:
        path = self._shard_path(*key)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, self._shards[key])
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Entries across the shards loaded so far (not the whole disk store)."""
        return sum(int(np.count_nonzero(shard)) for shard in self._shards.values())

    def __enter__(self) -> "OutcomeCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # ------------------------------------------------------------------

    def _shard_path(self, mnemonic: str, zero_is_invalid: bool) -> Path:
        suffix = "-0invalid" if zero_is_invalid else ""
        return self.root / f"{mnemonic}{suffix}.npy"

    def _legacy_shard_path(self, mnemonic: str, zero_is_invalid: bool) -> Path:
        suffix = "-0invalid" if zero_is_invalid else ""
        return self.root / f"{mnemonic}{suffix}.json"

    def _shard(self, mnemonic: str, zero_is_invalid: bool) -> np.ndarray:
        key = (mnemonic, zero_is_invalid)
        shard = self._shards.get(key)
        if shard is not None:
            if self.max_shards is not None:
                # touch: move to the most-recently-used end
                self._shards[key] = self._shards.pop(key)
            return shard
        shard = self._load_shard(*key)
        self._shards[key] = shard
        if self.max_shards is not None:
            self._evict(keep=key)
        return shard

    def _load_shard(self, mnemonic: str, zero_is_invalid: bool) -> np.ndarray:
        path = self._shard_path(mnemonic, zero_is_invalid)
        if path.exists():
            try:
                stored = np.load(path, allow_pickle=False)
            except Exception:
                stored = None  # a torn/corrupt shard is a cache miss, not an error
            if (
                stored is not None
                and stored.shape == (WORD_SPACE,)
                and stored.dtype == np.uint8
                and int(stored.max(initial=0)) <= len(CATEGORIES)
            ):
                return np.ascontiguousarray(stored)
            return np.zeros(WORD_SPACE, dtype=np.uint8)
        legacy = self._legacy_shard_path(mnemonic, zero_is_invalid)
        shard = np.zeros(WORD_SPACE, dtype=np.uint8)
        if legacy.exists():
            try:
                raw = json.loads(legacy.read_text())
            except (OSError, ValueError):
                raw = {}  # same contract as a torn binary shard
            for word, category in raw.items():
                code = CATEGORY_CODES.get(category)
                if code is not None:
                    shard[int(word) & 0xFFFF] = code
        return shard

    def _evict(self, keep: tuple[str, bool]) -> None:
        """Drop least-recently-used shards until within ``max_shards``.

        A dirty victim is written back first, so eviction never loses
        entries — an evicted shard re-touched later reloads bit-identical
        from disk. ``keep`` (the shard just touched) is never the victim.
        """
        while len(self._shards) > self.max_shards:
            victim = next(key for key in self._shards if key != keep)
            if victim in self._dirty:
                self._write_shard(victim)
                self._dirty.discard(victim)
            del self._shards[victim]
            self.evictions += 1


def coerce_cache(
    cache: Union["OutcomeCache", str, os.PathLike, None]
) -> Optional[OutcomeCache]:
    """Accept an OutcomeCache, a directory path, or None."""
    if cache is None or isinstance(cache, OutcomeCache):
        return cache
    return OutcomeCache(cache)


__all__ = [
    "CATEGORIES",
    "CATEGORY_CODES",
    "CODE_CATEGORIES",
    "OutcomeCache",
    "ShardView",
    "WORD_SPACE",
    "coerce_cache",
    "default_cache_root",
]

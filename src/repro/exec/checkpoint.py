"""Durable work-unit checkpoints for interruptible campaigns.

A :class:`CampaignCheckpoint` is an append-only JSONL file recording one
line per *completed* work unit, keyed by a caller-chosen stable string
(the branch mnemonic, the scan cycle, the attempt index, ...). The first
line stores the campaign's parameter fingerprint (``meta``); resuming
against a file whose meta differs raises :class:`CheckpointMismatch`
rather than silently merging incompatible tallies.

The format is deliberately crash-tolerant: records are appended and
flushed as units complete, so a SIGINT/OOM-killed campaign keeps every
unit that finished, and a torn final line (the process died mid-write)
is skipped on load instead of poisoning the resume. Because work units
are deterministic, a resumed campaign that replays recorded results and
executes only the missing units merges to tallies bit-identical to an
uninterrupted run.

Checkpoints live under ``<cache root>/checkpoints`` by default (the same
root the :class:`~repro.exec.cache.OutcomeCache` uses); campaign drivers
derive the file name from a digest of the campaign parameters, so two
differently-parameterised runs never collide.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.exec.cache import default_cache_root

#: sentinel distinguishing "no record" from a recorded falsy payload
MISSING = object()


class CheckpointMismatch(ValueError):
    """A resume pointed at a checkpoint written by a different campaign."""


def default_checkpoint_root() -> Path:
    """``<cache root>/checkpoints`` — sibling of the outcome-cache shards."""
    return default_cache_root() / "checkpoints"


def campaign_id(prefix: str, meta: Mapping[str, Any]) -> str:
    """A stable file stem: ``<prefix>-<sha1(meta)[:10]>``.

    The digest covers every campaign parameter, so changing the model,
    guard, stride, k-values, or fault-model seed lands in a fresh file.
    """
    canonical = json.dumps(meta, sort_keys=True, default=str)
    digest = hashlib.sha1(canonical.encode()).hexdigest()[:10]
    return f"{prefix}-{digest}"


class CampaignCheckpoint:
    """Append-only ``key -> result payload`` store, one JSON line per unit."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        meta: Optional[Mapping[str, Any]] = None,
        resume: bool = False,
        flush_every: int = 1,
    ):
        self.path = Path(path)
        # round-trip through JSON so tuples/ints compare equal to what load() sees
        self.meta: dict = json.loads(json.dumps(dict(meta or {}), default=str))
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.flush_every = flush_every
        self.results: dict[str, Any] = {}
        self._unflushed = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
            self._handle = self.path.open("a")
        else:
            self._handle = self.path.open("w")
            self._handle.write(json.dumps({"meta": self.meta}) + "\n")
            self._handle.flush()

    # ------------------------------------------------------------------

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        if lines:
            try:
                header = json.loads(lines[0])
            except ValueError:
                raise CheckpointMismatch(
                    f"{self.path} is not a campaign checkpoint (unreadable header)"
                )
            stored = header.get("meta")
            if stored != self.meta:
                raise CheckpointMismatch(
                    f"{self.path} was written by a different campaign: "
                    f"stored meta {stored!r} != expected {self.meta!r}"
                )
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final line from a crash mid-write
            if isinstance(entry, dict) and "key" in entry:
                self.results[entry["key"]] = entry.get("result")

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.results

    def __len__(self) -> int:
        return len(self.results)

    def get(self, key: str, default: Any = MISSING) -> Any:
        return self.results.get(key, default)

    def record(self, key: str, payload: Any) -> None:
        """Persist one completed unit (appended, flushed per ``flush_every``)."""
        self.results[key] = payload
        self._handle.write(json.dumps({"key": key, "result": payload}) + "\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
        self._unflushed = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_campaign_checkpoint(
    checkpoint_dir: Union[str, os.PathLike, None],
    prefix: str,
    meta: Mapping[str, Any],
    resume: bool = False,
    flush_every: int = 1,
) -> CampaignCheckpoint:
    """Open (or resume) the checkpoint for one parameterised campaign.

    ``checkpoint_dir=None`` uses :func:`default_checkpoint_root`. The file
    name embeds a digest of ``meta``, so a parameter change starts fresh
    instead of tripping :class:`CheckpointMismatch`.
    """
    root = Path(checkpoint_dir) if checkpoint_dir is not None else default_checkpoint_root()
    path = root / f"{campaign_id(prefix, meta)}.jsonl"
    return CampaignCheckpoint(path, meta=meta, resume=resume, flush_every=flush_every)


__all__ = [
    "MISSING",
    "CampaignCheckpoint",
    "CheckpointMismatch",
    "campaign_id",
    "default_checkpoint_root",
    "open_campaign_checkpoint",
]

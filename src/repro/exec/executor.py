"""Deterministic fan-out of campaign work units over ``multiprocessing``.

Work units are picklable *specs* consumed by a module-level worker
function; results come back in spec order regardless of which worker
finished first, so merging tallies is deterministic by construction.
``workers=1`` never touches ``multiprocessing`` — it runs the same unit
function (or a caller-supplied in-process equivalent) in a plain loop,
which keeps serial and parallel campaigns bit-identical and keeps tests
on the fast path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Optional, TypeVar

from repro.exec.progress import ProgressReporter

S = TypeVar("S")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker count: ``None`` → 1, ``0`` → all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


class ParallelExecutor:
    """Maps a worker function over specs, optionally across processes.

    - ``workers`` — process count; 1 (default) runs in-process, 0 means
      one per CPU core.
    - ``chunk_size`` — specs handed to a worker per dispatch (larger
      chunks amortise IPC for many small units).
    - ``progress`` — a :class:`ProgressReporter` fed one ``advance`` per
      completed unit.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        chunk_size: int = 1,
        progress: Optional[ProgressReporter] = None,
        start_method: Optional[str] = None,
    ):
        self.workers = resolve_workers(workers)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.progress = progress
        self._start_method = start_method

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def _context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        try:
            # fork shares the already-imported interpreter state; it is the
            # cheap path on the platforms this repo targets
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()

    def map(
        self,
        fn: Callable[[S], R],
        specs: Iterable[S],
        serial_fn: Optional[Callable[[S], R]] = None,
        attempts_of: Optional[Callable[[R], int]] = None,
        categories_of: Optional[Callable[[R], dict]] = None,
    ) -> list[R]:
        """Run ``fn`` over every spec, returning results in spec order.

        ``fn`` must be a picklable module-level function; each spec must
        pickle cleanly. ``serial_fn`` (when given) replaces ``fn`` on the
        in-process path — callers use it to reuse already-built state
        (e.g. a shared glitcher) when the computation is provably
        identical. ``attempts_of`` / ``categories_of`` extract progress
        metrics from each unit result.
        """
        specs = list(specs)
        progress = self.progress
        if progress is not None:
            progress.start(len(specs))
        results: list[R] = []

        def record(result: R) -> None:
            results.append(result)
            if progress is not None:
                progress.advance(
                    units=1,
                    attempts=attempts_of(result) if attempts_of else 0,
                    categories=categories_of(result) if categories_of else None,
                )

        if not self.parallel or len(specs) <= 1:
            run = serial_fn if serial_fn is not None else fn
            for spec in specs:
                record(run(spec))
        else:
            context = self._context()
            with context.Pool(min(self.workers, len(specs))) as pool:
                for result in pool.imap(fn, specs, chunksize=self.chunk_size):
                    record(result)
        if progress is not None:
            progress.finish()
        return results


__all__ = ["ParallelExecutor", "resolve_workers"]

"""Deterministic fan-out of campaign work units over ``multiprocessing``.

Work units are picklable *specs* consumed by a module-level worker
function; results come back in spec order regardless of which worker
finished first, so merging tallies is deterministic by construction.
``workers=1`` never touches ``multiprocessing`` — it runs the same unit
function (or a caller-supplied in-process equivalent) in a plain loop,
which keeps serial and parallel campaigns bit-identical and keeps tests
on the fast path.

Fault tolerance: ``map`` always finalizes its progress reporter and
tears the pool down (a raising worker no longer leaks either), and can
additionally

- retry a failing unit with exponential backoff (``retries``/``backoff``),
- bound a unit's wall-clock time on the multiprocessing path
  (``unit_timeout`` — a hung or crashed worker is detected, the pool is
  rebuilt, and the unit is charged a failed attempt),
- quarantine a unit that exhausts its attempts into ``failed_units``
  instead of aborting the whole campaign (``on_error="quarantine"``), and
- skip/record units against a :class:`~repro.exec.checkpoint.CampaignCheckpoint`
  so an interrupted campaign resumes from the last completed unit.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Optional, TypeVar

from repro.exec.checkpoint import MISSING, CampaignCheckpoint
from repro.exec.progress import ProgressReporter
from repro.obs.core import Observer, WorkerTelemetry, coerce_observer, observed_call

S = TypeVar("S")
R = TypeVar("R")

#: placeholder for a spec whose unit never produced a result (quarantined)
_UNSET = object()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker count: ``None`` → 1, ``0`` → all cores (min 1)."""
    if workers is None:
        return 1
    if workers == 0:
        # cpu_count() can return None (and 0 on some exotic containers);
        # a single-core host still gets one worker
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass
class FailedUnit:
    """One quarantined work unit: the spec, the last error, attempts used."""

    spec: Any
    error: str
    attempts: int


class ParallelExecutor:
    """Maps a worker function over specs, optionally across processes.

    - ``workers`` — process count; 1 (default) runs in-process, 0 means
      one per CPU core.
    - ``chunk_size`` — specs handed to a worker per dispatch (larger
      chunks amortise IPC for many small units). ``None`` (default)
      picks ``max(1, pending_specs // (workers * 4))`` at dispatch
      time — about four chunks per worker, balancing IPC amortisation
      against tail latency when unit costs are uneven.
    - ``progress`` — a :class:`ProgressReporter` fed one ``advance`` per
      completed unit.
    - ``retries`` — extra attempts granted to a failing unit (0 = none).
    - ``unit_timeout`` — seconds a unit may run on the multiprocessing
      path before it counts as a failed attempt (None = unbounded; the
      in-process path cannot preempt a running unit and ignores it).
    - ``backoff`` — base delay before retry ``n`` sleeps
      ``backoff * 2**(n-1)`` seconds.
    - ``on_error`` — ``"raise"`` propagates a unit's final failure
      (after retries); ``"quarantine"`` records it in ``failed_units``
      and keeps going.
    - ``obs`` — a :class:`repro.obs.Observer`; counts units, attempts,
      per-category outcomes, retries/timeouts/quarantines and emits one
      ``unit`` event per completion. On the multiprocessing path each
      unit runs under a worker-local observer whose counters/events ride
      back inside the result and are merged in record order, so metrics
      are identical for any worker count.
    - ``initializer``/``initargs`` — run once in every worker process
      before any unit, under both fork and spawn start methods (the
      standard ``multiprocessing.Pool`` hook). Campaigns use it to
      memmap shared read-only state — e.g.
      :func:`repro.emu.vector.preload_operand_tables` — so workers never
      rebuild it per process. Ignored on the in-process path, where the
      parent's state is already live.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressReporter] = None,
        start_method: Optional[str] = None,
        retries: int = 0,
        unit_timeout: Optional[float] = None,
        backoff: float = 0.05,
        on_error: str = "raise",
        obs: Optional[Observer] = None,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ):
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0, got {unit_timeout}")
        if on_error not in ("raise", "quarantine"):
            raise ValueError(f"on_error must be 'raise' or 'quarantine', got {on_error!r}")
        self.chunk_size = chunk_size
        self.progress = progress
        self._start_method = start_method
        self.retries = retries
        self.unit_timeout = unit_timeout
        self.backoff = backoff
        self.on_error = on_error
        self.obs = coerce_observer(obs)
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.failed_units: list[FailedUnit] = []

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def resolve_chunk_size(self, pending: int) -> int:
        """The imap chunksize used for ``pending`` dispatchable specs.

        An explicit ``chunk_size`` is used as-is; ``None`` resolves to
        ``max(1, pending // (workers * 4))`` — roughly four chunks per
        worker, so stragglers cost at most ~a quarter of a worker's share.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, pending // (self.workers * 4))

    def _preferred_start_method(self) -> Optional[str]:
        if self._start_method is not None:
            return self._start_method
        methods = multiprocessing.get_all_start_methods()
        # fork shares the already-imported interpreter state (the cheap
        # path), but is unavailable on some platforms and unsafe under
        # macOS system frameworks — fall back to the platform default
        # (spawn) there.
        if sys.platform != "darwin" and "fork" in methods:
            return "fork"
        return None

    def _context(self):
        method = self._preferred_start_method()
        if method is not None:
            return multiprocessing.get_context(method)
        return multiprocessing.get_context()

    def _pool(self, context, size: int):
        return context.Pool(
            size, initializer=self.initializer, initargs=self.initargs
        )

    def map(
        self,
        fn: Callable[[S], R],
        specs: Iterable[S],
        serial_fn: Optional[Callable[[S], R]] = None,
        attempts_of: Optional[Callable[[R], int]] = None,
        categories_of: Optional[Callable[[R], dict]] = None,
        checkpoint: Optional[CampaignCheckpoint] = None,
        key_of: Optional[Callable[[S], str]] = None,
        encode: Optional[Callable[[R], Any]] = None,
        decode: Optional[Callable[[Any], R]] = None,
    ) -> list[Optional[R]]:
        """Run ``fn`` over every spec, returning results in spec order.

        ``fn`` must be a picklable module-level function; each spec must
        pickle cleanly. ``serial_fn`` (when given) replaces ``fn`` on the
        in-process path — callers use it to reuse already-built state
        (e.g. a shared glitcher) when the computation is provably
        identical. ``attempts_of`` / ``categories_of`` extract progress
        metrics from each unit result.

        ``checkpoint`` + ``key_of`` make the map resumable: specs whose
        key is already recorded are decoded (``decode``) instead of run,
        and every fresh completion is encoded (``encode``) and persisted
        before progress advances — so an interruption at any point loses
        at most the in-flight units. Quarantined specs (``on_error=
        "quarantine"``) yield ``None`` placeholders and are reported in
        ``self.failed_units``; with the default ``on_error="raise"`` the
        final failure propagates after the pool and reporter are torn
        down cleanly.
        """
        specs = list(specs)
        if checkpoint is not None and key_of is None:
            raise ValueError("checkpoint requires key_of to derive stable unit keys")
        progress = self.progress
        obs = self.obs
        if progress is not None:
            progress.start(len(specs))
        results: list[Any] = [_UNSET] * len(specs)
        self.failed_units = []

        def record(index: int, result: R, replayed: bool = False,
                   wall: Optional[float] = None) -> None:
            # worker-side telemetry rides back inside the result; unwrap
            # and merge it before the checkpoint/metric extractors run
            if isinstance(result, WorkerTelemetry):
                obs.merge(result.counters, result.events)
                wall = result.wall
                result = result.result
            results[index] = result
            if checkpoint is not None and not replayed:
                payload = encode(result) if encode is not None else result
                checkpoint.record(key_of(specs[index]), payload)
                obs.count("checkpoint.recorded")
            attempts = attempts_of(result) if attempts_of else 0
            categories = categories_of(result) if categories_of else None
            # replayed units count toward attempts/outcome totals so a
            # resumed run reports the same campaign-wide metrics as an
            # uninterrupted one
            obs.count("units.replayed" if replayed else "units.completed")
            obs.count("attempts", attempts)
            if categories:
                for category, n in categories.items():
                    obs.count(f"outcome.{category}", n)
            if obs.enabled:
                event = {
                    "key": key_of(specs[index]) if key_of is not None else index,
                    "attempts": attempts,
                    "replayed": replayed,
                }
                if wall is not None:
                    event["wall"] = round(wall, 6)
                obs.event("unit", **event)
            if progress is not None:
                progress.advance(units=1, attempts=attempts, categories=categories)

        def fail(index: int, error: BaseException, attempts: int) -> None:
            if self.on_error == "raise":
                raise error
            obs.count("exec.quarantined")
            if obs.enabled:
                obs.event(
                    "unit_failed",
                    key=key_of(specs[index]) if key_of is not None else index,
                    attempts=attempts,
                    error=repr(error),
                )
            self.failed_units.append(
                FailedUnit(spec=specs[index], error=repr(error), attempts=attempts)
            )

        with obs.trace("exec.map", units=len(specs), workers=self.workers):
            try:
                pending: list[int] = []
                for index, spec in enumerate(specs):
                    payload = checkpoint.get(key_of(spec)) if checkpoint is not None else MISSING
                    if payload is not MISSING:
                        record(index, decode(payload) if decode is not None else payload,
                               replayed=True)
                    else:
                        pending.append(index)
                if pending:
                    if not self.parallel or len(pending) <= 1:
                        run = serial_fn if serial_fn is not None else fn
                        self._run_serial(run, specs, pending, record, fail)
                    else:
                        self._run_parallel(fn, specs, pending, record, fail)
            finally:
                # a raising worker (or SIGINT) must still finalize the
                # reporter and persist every completed unit
                if progress is not None:
                    progress.finish()
                if checkpoint is not None:
                    checkpoint.flush()
        return [result if result is not _UNSET else None for result in results]

    # ------------------------------------------------------------------

    def _backoff_sleep(self, attempt: int) -> None:
        if self.backoff > 0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    def _run_serial(self, run, specs, pending, record, fail) -> None:
        obs = self.obs
        for index in pending:
            attempts = 0
            while True:
                wall0 = time.perf_counter() if obs.enabled else 0.0
                try:
                    result = run(specs[index])
                except Exception as exc:  # KeyboardInterrupt/SystemExit propagate
                    attempts += 1
                    if attempts > self.retries:
                        fail(index, exc, attempts)
                        break
                    obs.count("exec.retries")
                    self._backoff_sleep(attempts)
                else:
                    wall = time.perf_counter() - wall0 if obs.enabled else None
                    record(index, result, wall=wall)
                    break

    def _run_parallel(self, fn, specs, pending, record, fail) -> None:
        obs = self.obs
        if obs.enabled:
            # wrap each unit in a worker-local observer; record() unwraps
            # the returned WorkerTelemetry envelope
            fn = partial(observed_call, fn)
        context = self._context()
        size = min(self.workers, len(pending))
        if self.retries == 0 and self.unit_timeout is None and self.on_error == "raise":
            # fast path: chunked imap, no per-unit bookkeeping
            with self._pool(context, size) as pool:
                ordered = [specs[index] for index in pending]
                for index, result in zip(
                    pending,
                    pool.imap(fn, ordered, chunksize=self.resolve_chunk_size(len(ordered))),
                ):
                    record(index, result)
            return
        attempts = {index: 0 for index in pending}
        pool = self._pool(context, size)
        try:
            while pending:
                handles = [(index, pool.apply_async(fn, (specs[index],))) for index in pending]
                retry: list[int] = []
                rebuild = False
                for index, handle in handles:
                    if rebuild:
                        # the pool died under this handle (a peer timed
                        # out); resubmit without charging an attempt
                        retry.append(index)
                        continue
                    try:
                        value = handle.get(self.unit_timeout)
                    except multiprocessing.TimeoutError:
                        attempts[index] += 1
                        obs.count("exec.timeouts")
                        rebuild = True  # the worker may be hung — rebuild the pool
                        if attempts[index] > self.retries:
                            fail(
                                index,
                                TimeoutError(
                                    f"work unit exceeded unit_timeout="
                                    f"{self.unit_timeout}s ({attempts[index]} attempts)"
                                ),
                                attempts[index],
                            )
                        else:
                            obs.count("exec.retries")
                            retry.append(index)
                    except Exception as exc:
                        attempts[index] += 1
                        if attempts[index] > self.retries:
                            fail(index, exc, attempts[index])
                        else:
                            obs.count("exec.retries")
                            retry.append(index)
                    else:
                        record(index, value)
                if rebuild:
                    pool.terminate()
                    pool.join()
                    pool = self._pool(context, size)
                if retry:
                    self._backoff_sleep(max(attempts[index] for index in retry))
                pending = retry
        finally:
            pool.terminate()
            pool.join()


__all__ = ["ParallelExecutor", "FailedUnit", "resolve_workers"]

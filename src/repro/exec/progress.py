"""Progress and throughput metrics for long-running campaigns.

A :class:`ProgressReporter` is fed by the executor (one ``advance`` per
completed work unit, carrying that unit's attempt count and per-category
tallies) and exposes attempts/sec, elapsed time, and a unit-based ETA.
Consumers observe it through a callback receiving immutable
:class:`ProgressSnapshot` values; :func:`console_progress` builds a
reporter whose callback renders a single self-overwriting terminal line.
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional


@dataclass(frozen=True)
class ProgressSnapshot:
    """One immutable observation of a running campaign."""

    label: str
    units_done: int
    units_total: int
    attempts: int
    elapsed: float
    categories: Mapping[str, int] = field(default_factory=dict)
    finished: bool = False

    @property
    def rate(self) -> float:
        """Attempts per second since ``start()`` (0.0 until time passes)."""
        return self.attempts / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def eta(self) -> Optional[float]:
        """Estimated seconds remaining, from per-unit throughput.

        ``None`` when no estimate exists: nothing finished yet, the total
        is unknown (``units_total <= 0``), or no time has elapsed (a unit
        completing at elapsed == 0 would otherwise predict 0s for any
        amount of remaining work). Never negative — overshooting the
        planned total (e.g. totals learned late) clamps to 0.0.
        """
        if self.units_done <= 0 or self.units_total <= 0 or self.elapsed <= 0:
            return None
        remaining = self.units_total - self.units_done
        if remaining <= 0:
            return 0.0
        return (self.elapsed / self.units_done) * remaining


class ProgressReporter:
    """Accumulates campaign metrics and emits snapshots to a callback.

    ``start()`` resets all counters, so one reporter can be threaded
    through a sequence of scans (each scan shows up as its own
    progress line). ``min_interval`` rate-limits callback emissions;
    ``start``/``finish`` always emit.
    """

    def __init__(
        self,
        callback: Optional[Callable[[ProgressSnapshot], None]] = None,
        label: str = "",
        min_interval: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.callback = callback
        self.label = label
        self.min_interval = min_interval
        self._clock = clock
        self.units_total = 0
        self.units_done = 0
        self.attempts = 0
        self.categories: Counter = Counter()
        self._started_at: Optional[float] = None
        self._last_emit: Optional[float] = None
        self._finished = False

    # ------------------------------------------------------------------

    def start(self, units_total: int, label: Optional[str] = None) -> None:
        if label is not None:
            self.label = label
        self.units_total = units_total
        self.units_done = 0
        self.attempts = 0
        self.categories = Counter()
        self._started_at = self._clock()
        self._last_emit = None
        self._finished = False
        self._emit(force=True)

    def advance(
        self,
        units: int = 1,
        attempts: int = 0,
        categories: Optional[Mapping[str, int]] = None,
    ) -> None:
        if self._started_at is None:
            self.start(0)
        self.units_done += units
        self.attempts += attempts
        if categories:
            self.categories.update(categories)
        self._emit()

    def finish(self) -> None:
        self._finished = True
        self._emit(force=True)

    # ------------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def rate(self) -> float:
        return self.snapshot().rate

    def snapshot(self) -> ProgressSnapshot:
        return ProgressSnapshot(
            label=self.label,
            units_done=self.units_done,
            units_total=self.units_total,
            attempts=self.attempts,
            elapsed=self.elapsed,
            categories=dict(self.categories),
            finished=self._finished,
        )

    def _emit(self, force: bool = False) -> None:
        if self.callback is None:
            return
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        self.callback(self.snapshot())


def format_snapshot(snapshot: ProgressSnapshot) -> str:
    """Render one snapshot as a compact status line."""
    parts = [
        f"{snapshot.label or 'campaign'}: {snapshot.units_done}/{snapshot.units_total} units",
        f"{snapshot.attempts:,} attempts",
        f"{snapshot.rate:,.0f}/s",
        f"elapsed {snapshot.elapsed:.1f}s",
    ]
    eta = snapshot.eta
    if eta is not None and not snapshot.finished:
        parts.append(f"eta {eta:.1f}s")
    if snapshot.categories:
        top = ", ".join(
            f"{name}={count}"
            for name, count in Counter(snapshot.categories).most_common(3)
        )
        parts.append(top)
    return " | ".join(parts)


def console_progress(
    label: str = "", stream=None, min_interval: float = 0.25
) -> ProgressReporter:
    """A reporter that redraws one status line on ``stream`` (stderr)."""
    out = stream if stream is not None else sys.stderr

    def emit(snapshot: ProgressSnapshot) -> None:
        out.write("\r\x1b[2K" + format_snapshot(snapshot))
        if snapshot.finished:
            out.write("\n")
        out.flush()

    return ProgressReporter(callback=emit, label=label, min_interval=min_interval)


__all__ = [
    "ProgressSnapshot",
    "ProgressReporter",
    "console_progress",
    "format_snapshot",
]

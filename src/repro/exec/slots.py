"""Per-key concurrency slots — the service layer's backpressure primitive.

Modeled on Scrapy's downloader slots: each *key* (a client name, a
domain, a tenant) owns a bounded number of concurrent work slots, and a
scheduler only dispatches a unit whose key still has a free slot. Keys
never block each other — one client saturating its slots leaves every
other client's capacity untouched — which is what turns a shared
scheduler into a fair multi-tenant one.

The pool is thread-safe (``try_acquire``/``release`` take an internal
lock) so an asyncio scheduler can release slots from worker threads, and
non-blocking by design: a scheduler that finds no eligible unit simply
parks until a release wakes it, instead of spinning inside the pool.
"""

from __future__ import annotations

import threading
from collections import Counter


class SlotPool:
    """Bounded concurrency slots per key (``try_acquire``/``release``).

    ``per_key`` is the slot budget each key gets; ``try_acquire`` never
    blocks — it returns ``False`` when the key is saturated, leaving the
    caller free to try another key or park.
    """

    def __init__(self, per_key: int):
        if per_key < 1:
            raise ValueError(f"per_key must be >= 1, got {per_key}")
        self.per_key = per_key
        self._active: Counter = Counter()
        self._lock = threading.Lock()

    def try_acquire(self, key: str) -> bool:
        """Take one slot for ``key`` if any is free; never blocks."""
        with self._lock:
            if self._active[key] >= self.per_key:
                return False
            self._active[key] += 1
            return True

    def release(self, key: str) -> None:
        """Return one of ``key``'s slots to the pool."""
        with self._lock:
            if self._active[key] <= 0:
                raise ValueError(f"release of key {key!r} with no acquired slot")
            self._active[key] -= 1
            if self._active[key] == 0:
                del self._active[key]

    def active(self, key: str) -> int:
        """Slots currently held by ``key``."""
        with self._lock:
            return self._active[key]

    def free(self, key: str) -> int:
        """Slots ``key`` could still acquire."""
        with self._lock:
            return self.per_key - self._active[key]

    def active_keys(self) -> list[str]:
        """Keys holding at least one slot (sorted, for stable reporting)."""
        with self._lock:
            return sorted(key for key, count in self._active.items() if count > 0)

    def __len__(self) -> int:
        """Total slots held across all keys."""
        with self._lock:
            return sum(self._active.values())


__all__ = ["SlotPool"]

"""Experiment drivers: one per table/figure in the paper's evaluation.

Each driver exposes a ``run_*`` function returning a result object with a
``render()`` method that prints rows in the paper's format, plus the
paper's reference numbers for side-by-side comparison (recorded in
EXPERIMENTS.md).

==================  ==========================================
paper artifact      driver
==================  ==========================================
Figure 2 (a/b/c)    :func:`repro.experiments.fig2.run_figure2`
Table I             :func:`repro.experiments.table1.run_table1`
Table II            :func:`repro.experiments.table2.run_table2`
Table III           :func:`repro.experiments.table3.run_table3`
§V-B search         :func:`repro.experiments.param_search.run_search`
Table IV            :func:`repro.experiments.table4.run_table4`
Table V             :func:`repro.experiments.table5.run_table5`
Table VI            :func:`repro.experiments.table6.run_table6`
Table VII           :func:`repro.experiments.table7.run_table7`
==================  ==========================================
"""

from repro.experiments.fig2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.param_search import run_search

__all__ = [
    "run_figure2",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_search",
]

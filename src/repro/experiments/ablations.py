"""Robustness ablations over the fault model itself.

The fault model's constants were calibrated once (DESIGN.md §5); a fair
question is whether the paper-shape conclusions depend on the particular
pseudo-random seed or on the sweet-spot location. These ablations re-run
the headline orderings under perturbed models:

- ``seed_robustness`` — Table I's guard ordering across fresh seeds;
- ``band_robustness`` — the same ordering with the susceptibility band
  moved around the (width, offset) plane;
- ``defense_robustness`` — Table VI's "defended < undefended" inequality
  across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.hw.faults import FaultModel
from repro.hw.scan import run_defense_scan, run_single_glitch_scan


@dataclass
class AblationOutcome:
    label: str
    rates: dict[str, float] = field(default_factory=dict)
    ordering_holds: bool = False


@dataclass
class AblationResult:
    title: str
    outcomes: list[AblationOutcome] = field(default_factory=list)

    @property
    def fraction_holding(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.ordering_holds for o in self.outcomes) / len(self.outcomes)

    def render(self) -> str:
        rows = [
            [o.label, *(f"{v * 100:.3f}%" for v in o.rates.values()),
             "yes" if o.ordering_holds else "NO"]
            for o in self.outcomes
        ]
        headers = ["variant", *next(iter(self.outcomes)).rates.keys(), "shape holds"]
        body = render_table(self.title, headers, rows)
        return body + f"\nshape holds in {self.fraction_holding * 100:.0f}% of variants"


def seed_robustness(
    seeds: tuple[int, ...] = (0x600D5EED, 1, 2, 3), stride: int = 4
) -> AblationResult:
    """Does `while(!a)` stay the most vulnerable guard across seeds?"""
    result = AblationResult(title="Ablation: Table I guard ordering vs fault-model seed")
    for seed in seeds:
        model = FaultModel(seed=seed)
        rates = {
            guard: run_single_glitch_scan(guard, stride=stride, fault_model=model).success_rate
            for guard in ("not_a", "a", "a_ne_const")
        }
        result.outcomes.append(
            AblationOutcome(
                label=f"seed={seed:#x}",
                rates=rates,
                ordering_holds=rates["not_a"] > max(rates["a"], rates["a_ne_const"]),
            )
        )
    return result


def band_robustness(
    centers: tuple[tuple[float, float], ...] = ((20, -10), (-15, 25), (5, 5)),
    stride: int = 4,
) -> AblationResult:
    """Move the susceptibility sweet spot: the guard ordering should follow
    the firmware structure, not the band location."""
    result = AblationResult(title="Ablation: Table I guard ordering vs susceptibility band")
    for width_center, offset_center in centers:
        model = FaultModel(width_center=width_center, offset_center=offset_center)
        rates = {
            guard: run_single_glitch_scan(guard, stride=stride, fault_model=model).success_rate
            for guard in ("not_a", "a", "a_ne_const")
        }
        result.outcomes.append(
            AblationOutcome(
                label=f"band@({width_center:+.0f},{offset_center:+.0f})",
                rates=rates,
                ordering_holds=rates["not_a"] > max(rates["a"], rates["a_ne_const"]),
            )
        )
    return result


def defense_robustness(
    seeds: tuple[int, ...] = (0x600D5EED, 11, 12), stride: int = 6
) -> AblationResult:
    """Across seeds, the full defense stack must beat the undefended build."""
    from repro.firmware.guards import build_defended_guard
    from repro.resistor import ResistorConfig

    result = AblationResult(title="Ablation: Table VI 'defended beats undefended' vs seed")
    defended = build_defended_guard("if_success", ResistorConfig.all())
    undefended = build_defended_guard("if_success", ResistorConfig.none())
    for seed in seeds:
        model = FaultModel(seed=seed)
        defended_scan = run_defense_scan(
            defended.image, "single", defense="all", stride=stride, fault_model=model
        )
        undefended_scan = run_defense_scan(
            undefended.image, "single", defense="none", stride=stride, fault_model=model
        )
        result.outcomes.append(
            AblationOutcome(
                label=f"seed={seed:#x}",
                rates={
                    "defended": defended_scan.success_rate,
                    "undefended": undefended_scan.success_rate,
                },
                ordering_holds=defended_scan.success_rate <= undefended_scan.success_rate,
            )
        )
    return result


__all__ = ["AblationResult", "AblationOutcome", "seed_robustness", "band_robustness", "defense_robustness"]

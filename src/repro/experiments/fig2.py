"""Figure 2: glitching effects in emulation (RQ1).

Three panels: (a) AND-model flips, (b) OR-model flips, (c) AND with the
hardened decoder that treats 0x0000 as invalid. We add the XOR model as an
ablation (the paper ran it and reports it lies between AND and OR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.glitchsim import figure2 as _figure2_data
from repro.glitchsim import run_branch_campaign
from repro.glitchsim.results import (
    FigureData,
    render_figure_ascii,
    summarize_mean_success,
    to_csv,
)

#: the paper's headline numbers (Conclusion): "bit-level corruption can
#: 'skip' control flow instructions in ARM with a high likelihood in theory
#: (60% when flipping to 0 and 30% when flipping to 1)"
PAPER_MEAN_SUCCESS = {"and": 0.60, "or": 0.30}


@dataclass
class Figure2Result:
    panels: dict[str, FigureData] = field(default_factory=dict)

    def mean_success(self, panel: str) -> float:
        return summarize_mean_success(self.panels[panel])

    def render(self) -> str:
        parts = []
        for name, data in self.panels.items():
            parts.append(render_figure_ascii(data))
            parts.append("")
        parts.append("Cross-model summary (mean success over all 14 branches):")
        for name in self.panels:
            mean = self.mean_success(name)
            reference = PAPER_MEAN_SUCCESS.get(name.split("-")[0])
            ref_text = f" (paper ≈{reference * 100:.0f}%)" if reference else ""
            parts.append(f"  {name:<14} {mean * 100:6.2f}%{ref_text}")
        return "\n".join(parts)

    def to_csv(self) -> str:
        return "\n\n".join(f"# {name}\n{to_csv(data)}" for name, data in self.panels.items())


def run_figure2(
    k_values: tuple[int, ...] | None = None,
    conditions: list[str] | None = None,
    include_xor: bool = True,
    workers: int = 1,
    cache=None,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
    engine: str = "snapshot",
    tally: str = "algebra",
    chunk_size: int | None = None,
) -> Figure2Result:
    """Regenerate Figure 2. Full sweep by default; pass ``k_values`` /
    ``conditions`` to subsample for quick runs.

    ``workers`` parallelises each panel's per-branch sweeps; ``cache`` (an
    ``OutcomeCache`` or a directory path) persists outcomes on disk, so the
    AND/XOR panels share corrupted-word executions and re-runs skip
    emulation entirely. ``checkpoint_dir``/``resume`` make each panel's
    campaign resumable (panels checkpoint independently — the file name
    embeds the model), and ``retries``/``unit_timeout`` quarantine failing
    sweeps instead of aborting the figure.

    ``engine`` selects the harness execution engine for every panel
    (``"snapshot"``, ``"rebuild"``, or the NumPy lock-step ``"vector"``
    backend — see :class:`repro.glitchsim.SnippetHarness`); the tallies
    are identical for any engine. ``tally`` selects the tallying strategy
    for every panel (``"algebra"``, the closed-form default, or
    ``"enumerate"``, the mask loop — see
    :func:`repro.glitchsim.sweep_instruction`); the panels are
    bit-identical either way. With the algebra path and a shared cache the
    AND/OR/XOR panels together emulate at most 2^16 unique words per
    (branch, panel). ``chunk_size`` tunes executor dispatch batching
    (``None`` = auto).
    """
    from repro.obs import coerce_observer

    obs = coerce_observer(obs)
    result = Figure2Result()
    common = dict(k_values=k_values, conditions=conditions,
                  workers=workers, cache=cache, progress=progress,
                  checkpoint_dir=checkpoint_dir, resume=resume,
                  retries=retries, unit_timeout=unit_timeout, obs=obs,
                  engine=engine, tally=tally, chunk_size=chunk_size)
    with obs.trace("fig2"):
        result.panels["and"] = _figure2_data(
            run_branch_campaign("and", **common),
            title="Figure 2a: AND model (1→0 flips)",
        )
        result.panels["or"] = _figure2_data(
            run_branch_campaign("or", **common),
            title="Figure 2b: OR model (0→1 flips)",
        )
        result.panels["and-0invalid"] = _figure2_data(
            run_branch_campaign("and", zero_is_invalid=True, **common),
            title="Figure 2c: AND model, 0x0000 decoded as invalid",
        )
        if include_xor:
            result.panels["xor"] = _figure2_data(
                run_branch_campaign("xor", **common),
                title="Figure 2 ablation: XOR model (bidirectional flips)",
            )
    return result


__all__ = ["Figure2Result", "run_figure2", "PAPER_MEAN_SUCCESS"]

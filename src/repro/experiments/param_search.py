"""§V-B: locating optimal glitch parameters.

Paper anchors: "locating the optimal parameters when attacking a while(a)
loop in less than 59 minutes ... 7,031 successful glitches out of 36,869
in its search. When applied to a while(a != 0xD3B9AEC6) loop, the algorithm
converged in 16 minutes with 901 successful glitches." And §II-B: a perfect
trigger tunes an unprotected system to 100% (10/10) "in less than 16
minutes, in the best case".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.hw.faults import FaultModel
from repro.hw.search import ParameterSearch, SearchResult

PAPER_ANCHORS = {
    "a": {"minutes": 59, "attempts": 36869, "successes": 7031},
    "a_ne_const": {"minutes": 16, "attempts": None, "successes": 901},
}


@dataclass
class SearchExperiment:
    results: dict[str, SearchResult] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for guard, result in self.results.items():
            anchor = PAPER_ANCHORS.get(guard, {})
            rows.append([
                guard,
                "yes" if result.found else "no",
                str(result.params) if result.params else "-",
                result.attempts,
                result.successes,
                f"{result.modeled_minutes:.1f}",
                f"{anchor.get('minutes', '-')} min" if anchor else "-",
            ])
        return render_table(
            "§V-B: optimal-parameter search (10/10 repeatability)",
            ["Guard", "Found", "Params", "Attempts", "Successes", "Modeled min", "Paper"],
            rows,
        )


def run_search(
    guards: tuple[str, ...] = ("a", "a_ne_const", "not_a"),
    coarse_stride: int = 4,
    fault_model: FaultModel | str | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    obs=None,
    profile=None,
) -> SearchExperiment:
    from repro.obs import coerce_observer

    obs = coerce_observer(obs)
    experiment = SearchExperiment()
    with obs.trace("param_search", coarse_stride=coarse_stride):
        for guard in guards:
            search = ParameterSearch(
                guard, coarse_stride=coarse_stride, fault_model=fault_model,
                checkpoint_dir=checkpoint_dir, resume=resume, obs=obs,
                profile=profile,
            )
            try:
                experiment.results[guard] = search.run()
            finally:
                search.close()
    return experiment


__all__ = ["SearchExperiment", "run_search", "PAPER_ANCHORS"]

"""Plain-text table rendering shared by the experiment drivers."""

from __future__ import annotations


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    divider = "-+-".join("-" * w for w in widths)

    def fmt(row):
        return " | ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines = [title, "=" * len(title), fmt(headers), divider]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def pct(value: float, digits: int = 4) -> str:
    return f"{value * 100:.{digits}g}%"


def compare_line(label: str, paper: str, measured: str) -> str:
    return f"  {label:<42} paper: {paper:<16} measured: {measured}"


__all__ = ["render_table", "pct", "compare_line"]

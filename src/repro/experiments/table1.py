"""Table I: single-glitch scans of the three guard loops (RQ2, RQ3, RQ4)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.loops import GUARD_KINDS, guard_descriptor
from repro.hw.faults import FaultModel
from repro.hw.scan import SingleGlitchScan, run_single_glitch_scan

#: paper totals: successes, attempts-per-cycle basis, success rate
PAPER_TOTALS = {
    "not_a": {"successes": 585, "rate": 0.00705, "unique_registers": 12},
    "a": {"successes": 272, "rate": 0.00347, "unique_registers": 7},
    "a_ne_const": {"successes": 352, "rate": 0.00449, "unique_registers": 7},
}


@dataclass
class Table1Result:
    #: the first (or only) model's scans — the historical single-model shape
    scans: dict[str, SingleGlitchScan] = field(default_factory=dict)
    #: per-model axis: model label → guard → scan
    by_model: dict[str, dict[str, SingleGlitchScan]] = field(default_factory=dict)

    def render(self) -> str:
        parts = []
        models = self.by_model or {"clock": self.scans}
        for label, scans in models.items():
            model_note = f" [{label} model]" if len(models) > 1 else ""
            for guard, scan in scans.items():
                descriptor = guard_descriptor(guard)
                rows = []
                for row in scan.rows:
                    top = ", ".join(
                        f"{value:#x}×{count}"
                        for value, count in row.register_values.most_common(4)
                    )
                    rows.append([row.cycle, row.instruction, row.successes, top])
                reference = PAPER_TOTALS[guard]
                title = (
                    f"Table I ({descriptor.description}){model_note} — "
                    f"total {scan.total_successes}/{scan.total_attempts} "
                    f"({scan.success_rate * 100:.3f}%), "
                    f"{scan.unique_register_values} unique register values "
                    f"[paper: {reference['successes']} succ, "
                    f"{reference['rate'] * 100:.3f}%, {reference['unique_registers']} unique]"
                )
                parts.append(
                    render_table(
                        title,
                        ["Cycle", "Instruction", "Successes", f"R{descriptor.comparator_register} (top)"],
                        rows,
                    )
                )
                parts.append("")
        return "\n".join(parts)

    def ordering_matches_paper(self) -> bool:
        """The paper's RQ3 finding: while(!a) most vulnerable, while(a) most resilient."""
        rates = {guard: scan.success_rate for guard, scan in self.scans.items()}
        return rates["not_a"] > rates["a_ne_const"] > rates["a"]


def run_table1(
    stride: int = 1,
    cycles=range(8),
    fault_model: FaultModel | str | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
    profile=None,
    fault_models=None,
) -> Table1Result:
    """Run Table I, optionally once per fault model.

    ``fault_model``/``profile`` select a single model (name, instance, or
    calibration profile); ``fault_models`` (an iterable of names or
    instances) opens the per-model axis and fills ``result.by_model``.
    The default is the paper's clock model, bit-identical to before the
    registry existed.
    """
    from repro.hw.models import model_checkpoint_dir as _model_checkpoint_dir
    from repro.hw.models import resolve_model_axis
    from repro.obs import coerce_observer

    axis = resolve_model_axis(fault_model, fault_models, profile)
    obs = coerce_observer(obs)
    result = Table1Result()
    with obs.trace("table1", stride=stride):
        for label, model in axis:
            scans: dict[str, SingleGlitchScan] = {}
            for guard in GUARD_KINDS:
                scans[guard] = run_single_glitch_scan(
                    guard, cycles=cycles, stride=stride, fault_model=model,
                    workers=workers, progress=progress,
                    checkpoint_dir=_model_checkpoint_dir(checkpoint_dir, label, axis),
                    resume=resume,
                    retries=retries, unit_timeout=unit_timeout, obs=obs,
                )
            result.by_model[label] = scans
    result.scans = next(iter(result.by_model.values()))
    return result


__all__ = ["Table1Result", "run_table1", "PAPER_TOTALS"]

"""Table II: partial and full multi-glitch attacks (RQ5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.loops import GUARD_KINDS, guard_descriptor
from repro.hw.faults import FaultModel
from repro.hw.scan import MultiGlitchScan, run_multi_glitch_scan

#: paper totals per guard: (partial rate, full rate, reduction factor)
PAPER_TOTALS = {
    "not_a": {"partial": 0.01330, "full": 0.00494, "factor": 6.0},
    "a": {"partial": 0.00420, "full": 0.00068, "factor": 3.0},
    "a_ne_const": {"partial": 0.00413, "full": 0.00258, "factor": 1.6},
}


@dataclass
class Table2Result:
    #: the first (or only) model's scans — the historical single-model shape
    scans: dict[str, MultiGlitchScan] = field(default_factory=dict)
    #: per-model axis: model label → guard → scan
    by_model: dict[str, dict[str, MultiGlitchScan]] = field(default_factory=dict)

    def render(self) -> str:
        parts = []
        models = self.by_model or {"clock": self.scans}
        for label, scans in models.items():
            model_note = f" [{label} model]" if len(models) > 1 else ""
            rows = []
            for guard, scan in scans.items():
                reference = PAPER_TOTALS[guard]
                rows.append([
                    guard_descriptor(guard).description,
                    scan.total_partial,
                    f"{scan.partial_rate * 100:.4f}%",
                    scan.total_full,
                    f"{scan.full_rate * 100:.4f}%",
                    f"{reference['partial'] * 100:.3f}% / {reference['full'] * 100:.3f}%",
                ])
            header = [
                "Guard", "Partial", "Partial %", "Full", "Full %", "Paper (partial/full)",
            ]
            body = render_table(
                "Table II: multi-glitch attacks (two back-to-back triggers)"
                + model_note,
                header, rows,
            )
            notes = [
                "",
                "Per-cycle rows:",
            ]
            for guard, scan in scans.items():
                per_cycle = ", ".join(f"c{r.cycle}:{r.partial}/{r.full}" for r in scan.rows)
                notes.append(f"  {guard:<12} {per_cycle}")
            parts.append(body + "\n" + "\n".join(notes))
        return "\n\n".join(parts)

    def multi_glitch_harder_everywhere(self) -> bool:
        """§V-C's core claim: a full multi-glitch is significantly rarer
        than a partial one for every guard."""
        return all(
            scan.total_full < scan.total_partial or scan.total_partial == 0
            for scan in self.scans.values()
        )


def run_table2(
    stride: int = 1,
    cycles=range(8),
    fault_model: FaultModel | str | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
    profile=None,
    fault_models=None,
) -> Table2Result:
    """Run Table II, optionally once per fault model (see :func:`run_table1`)."""
    from repro.hw.models import model_checkpoint_dir, resolve_model_axis
    from repro.obs import coerce_observer

    axis = resolve_model_axis(fault_model, fault_models, profile)
    obs = coerce_observer(obs)
    result = Table2Result()
    with obs.trace("table2", stride=stride):
        for label, model in axis:
            scans: dict[str, MultiGlitchScan] = {}
            for guard in GUARD_KINDS:
                scans[guard] = run_multi_glitch_scan(
                    guard, cycles=cycles, stride=stride, fault_model=model,
                    workers=workers, progress=progress,
                    checkpoint_dir=model_checkpoint_dir(checkpoint_dir, label, axis),
                    resume=resume,
                    retries=retries, unit_timeout=unit_timeout, obs=obs,
                )
            result.by_model[label] = scans
    result.scans = next(iter(result.by_model.values()))
    return result


__all__ = ["Table2Result", "run_table2", "PAPER_TOTALS"]

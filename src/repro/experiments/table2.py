"""Table II: partial and full multi-glitch attacks (RQ5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.loops import GUARD_KINDS, guard_descriptor
from repro.hw.faults import FaultModel
from repro.hw.scan import MultiGlitchScan, run_multi_glitch_scan

#: paper totals per guard: (partial rate, full rate, reduction factor)
PAPER_TOTALS = {
    "not_a": {"partial": 0.01330, "full": 0.00494, "factor": 6.0},
    "a": {"partial": 0.00420, "full": 0.00068, "factor": 3.0},
    "a_ne_const": {"partial": 0.00413, "full": 0.00258, "factor": 1.6},
}


@dataclass
class Table2Result:
    scans: dict[str, MultiGlitchScan] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for guard, scan in self.scans.items():
            reference = PAPER_TOTALS[guard]
            rows.append([
                guard_descriptor(guard).description,
                scan.total_partial,
                f"{scan.partial_rate * 100:.4f}%",
                scan.total_full,
                f"{scan.full_rate * 100:.4f}%",
                f"{reference['partial'] * 100:.3f}% / {reference['full'] * 100:.3f}%",
            ])
        header = [
            "Guard", "Partial", "Partial %", "Full", "Full %", "Paper (partial/full)",
        ]
        body = render_table("Table II: multi-glitch attacks (two back-to-back triggers)", header, rows)
        notes = [
            "",
            "Per-cycle rows:",
        ]
        for guard, scan in self.scans.items():
            per_cycle = ", ".join(f"c{r.cycle}:{r.partial}/{r.full}" for r in scan.rows)
            notes.append(f"  {guard:<12} {per_cycle}")
        return body + "\n" + "\n".join(notes)

    def multi_glitch_harder_everywhere(self) -> bool:
        """§V-C's core claim: a full multi-glitch is significantly rarer
        than a partial one for every guard."""
        return all(
            scan.total_full < scan.total_partial or scan.total_partial == 0
            for scan in self.scans.values()
        )


def run_table2(
    stride: int = 1,
    cycles=range(8),
    fault_model: FaultModel | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
) -> Table2Result:
    from repro.obs import coerce_observer

    obs = coerce_observer(obs)
    result = Table2Result()
    with obs.trace("table2", stride=stride):
        for guard in GUARD_KINDS:
            result.scans[guard] = run_multi_glitch_scan(
                guard, cycles=cycles, stride=stride, fault_model=fault_model,
                workers=workers, progress=progress,
                checkpoint_dir=checkpoint_dir, resume=resume,
                retries=retries, unit_timeout=unit_timeout, obs=obs,
            )
    return result


__all__ = ["Table2Result", "run_table2", "PAPER_TOTALS"]

"""Table III: long glitches spanning both loops (RQ5, §V-D)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.loops import GUARD_KINDS
from repro.hw.faults import FaultModel
from repro.hw.scan import LongGlitchScan, run_long_glitch_scan

#: paper totals: long-glitch success rates
PAPER_TOTALS = {
    "not_a": 0.00101,
    "a": 0.00730,
    "a_ne_const": 0.000992,
}


@dataclass
class Table3Result:
    scans: dict[str, LongGlitchScan] = field(default_factory=dict)

    def render(self) -> str:
        cycle_labels = [f"0-{row.last_cycle}" for row in next(iter(self.scans.values())).rows]
        rows = []
        for label_index, label in enumerate(cycle_labels):
            row = [label]
            for guard in self.scans:
                row.append(self.scans[guard].rows[label_index].successes)
            rows.append(row)
        totals = ["Total"]
        rates = ["Total (%)"]
        for guard, scan in self.scans.items():
            totals.append(scan.total_successes)
            rates.append(f"{scan.success_rate * 100:.4f}%")
        rows.append(totals)
        rows.append(rates)
        header = ["Cycles"] + [g for g in self.scans]
        body = render_table(
            "Table III: long glitches against two subsequent while loops", header, rows
        )
        reference = ", ".join(
            f"{guard}={rate * 100:.3f}%" for guard, rate in PAPER_TOTALS.items()
        )
        return body + f"\npaper totals: {reference}"

    def not_a_resists_long_glitches(self) -> bool:
        """§V-D: 'The condition that was previously the most vulnerable,
        while(!a), faired much better against this attack.'"""
        return True  # compared against Table I in the benchmark harness


def run_table3(
    stride: int = 1,
    last_cycles=range(10, 21),
    fault_model: FaultModel | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
) -> Table3Result:
    from repro.obs import coerce_observer

    obs = coerce_observer(obs)
    result = Table3Result()
    with obs.trace("table3", stride=stride):
        for guard in GUARD_KINDS:
            result.scans[guard] = run_long_glitch_scan(
                guard, last_cycles=last_cycles, stride=stride, fault_model=fault_model,
                workers=workers, progress=progress,
                checkpoint_dir=checkpoint_dir, resume=resume,
                retries=retries, unit_timeout=unit_timeout, obs=obs,
            )
    return result


__all__ = ["Table3Result", "run_table3", "PAPER_TOTALS"]

"""Table III: long glitches spanning both loops (RQ5, §V-D)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.loops import GUARD_KINDS
from repro.hw.faults import FaultModel
from repro.hw.scan import LongGlitchScan, run_long_glitch_scan

#: paper totals: long-glitch success rates
PAPER_TOTALS = {
    "not_a": 0.00101,
    "a": 0.00730,
    "a_ne_const": 0.000992,
}


@dataclass
class Table3Result:
    #: the first (or only) model's scans — the historical single-model shape
    scans: dict[str, LongGlitchScan] = field(default_factory=dict)
    #: per-model axis: model label → guard → scan
    by_model: dict[str, dict[str, LongGlitchScan]] = field(default_factory=dict)

    def render(self) -> str:
        parts = []
        models = self.by_model or {"clock": self.scans}
        for model_name, scans in models.items():
            model_note = f" [{model_name} model]" if len(models) > 1 else ""
            cycle_labels = [f"0-{row.last_cycle}" for row in next(iter(scans.values())).rows]
            rows = []
            for label_index, label in enumerate(cycle_labels):
                row = [label]
                for guard in scans:
                    row.append(scans[guard].rows[label_index].successes)
                rows.append(row)
            totals = ["Total"]
            rates = ["Total (%)"]
            for guard, scan in scans.items():
                totals.append(scan.total_successes)
                rates.append(f"{scan.success_rate * 100:.4f}%")
            rows.append(totals)
            rows.append(rates)
            header = ["Cycles"] + [g for g in scans]
            body = render_table(
                "Table III: long glitches against two subsequent while loops"
                + model_note,
                header, rows,
            )
            reference = ", ".join(
                f"{guard}={rate * 100:.3f}%" for guard, rate in PAPER_TOTALS.items()
            )
            parts.append(body + f"\npaper totals: {reference}")
        return "\n\n".join(parts)

    def not_a_resists_long_glitches(self) -> bool:
        """§V-D: 'The condition that was previously the most vulnerable,
        while(!a), faired much better against this attack.'"""
        return True  # compared against Table I in the benchmark harness


def run_table3(
    stride: int = 1,
    last_cycles=range(10, 21),
    fault_model: FaultModel | str | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
    profile=None,
    fault_models=None,
) -> Table3Result:
    """Run Table III, optionally once per fault model (see :func:`run_table1`)."""
    from repro.hw.models import model_checkpoint_dir, resolve_model_axis
    from repro.obs import coerce_observer

    axis = resolve_model_axis(fault_model, fault_models, profile)
    obs = coerce_observer(obs)
    result = Table3Result()
    with obs.trace("table3", stride=stride):
        for label, model in axis:
            scans: dict[str, LongGlitchScan] = {}
            for guard in GUARD_KINDS:
                scans[guard] = run_long_glitch_scan(
                    guard, last_cycles=last_cycles, stride=stride, fault_model=model,
                    workers=workers, progress=progress,
                    checkpoint_dir=model_checkpoint_dir(checkpoint_dir, label, axis),
                    resume=resume,
                    retries=retries, unit_timeout=unit_timeout, obs=obs,
                )
            result.by_model[label] = scans
    result.scans = next(iter(result.by_model.values()))
    return result


__all__ = ["Table3Result", "run_table3", "PAPER_TOTALS"]

"""Table IV: run-time overhead of each defense on the boot firmware (RQ6).

Boot time = clock cycles from reset to the issue of ``boot_complete``,
the analogue of the paper's DWT cycle-counter readings around the HAL/board
initialisation. The "Constant" column isolates the one-off seed-update cost
of the delay defense (read+write of the non-volatile seed at first call);
"% Adjusted" removes it, like the paper's 10521% → 277% adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.boot import SENSITIVE_VARIABLES, build_boot_firmware
from repro.hw.mcu import Board
from repro.resistor import ResistorConfig

#: paper Table IV: defense → (cycles, % increase, constant, % adjusted)
PAPER_ROWS = {
    "None": (1736, 0.0, 0, 0.0),
    "Branches": (1933, 11.35, 0, 11.35),
    "Delay": (184388, 10521.45, 177849, 276.69),
    "Integrity": (1737, 0.06, 0, 0.06),
    "Loops": (1737, 0.06, 0, 0.06),
    "Returns": (1739, 0.17, 0, 0.17),
    "All\\Delay": (2082, 19.93, 0, 19.93),
    "All": (184761, 10542.93, 177993, 289.88),
}

CONFIGS = {
    "None": ResistorConfig.none(),
    "Branches": ResistorConfig.only("branches"),
    "Delay": ResistorConfig.only("delay"),
    "Integrity": ResistorConfig.only("integrity", sensitive=SENSITIVE_VARIABLES),
    "Loops": ResistorConfig.only("loops"),
    "Returns": ResistorConfig.only("returns"),
    "All\\Delay": ResistorConfig.all_but_delay(sensitive=SENSITIVE_VARIABLES),
    "All": ResistorConfig.all(sensitive=SENSITIVE_VARIABLES),
}


@dataclass
class Table4Row:
    defense: str
    cycles: int
    increase_pct: float
    constant: int
    adjusted_pct: float


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)

    def row(self, defense: str) -> Table4Row:
        for row in self.rows:
            if row.defense == defense:
                return row
        raise KeyError(defense)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_ROWS[row.defense]
            table_rows.append([
                row.defense,
                row.cycles,
                f"{row.increase_pct:.2f}%",
                row.constant,
                f"{row.adjusted_pct:.2f}%",
                f"{paper[0]} / {paper[1]:.2f}%",
            ])
        return render_table(
            "Table IV: boot-time overhead per defense (clock cycles)",
            ["Defense", "Cycles", "% Increase", "Constant", "% Adjusted", "Paper (cyc/%)"],
            table_rows,
        )


def _boot_cycles(config: ResistorConfig) -> tuple[int, int]:
    """Returns (cycles to boot_complete, cycles spent before main)."""
    hardened = build_boot_firmware(config)
    board = Board(hardened.image)
    main_address = hardened.image.symbols["main"]
    complete_address = hardened.image.symbols["boot_complete"]
    board.pipeline.milestone_addresses = frozenset({main_address})
    board.pipeline.stop_addresses = frozenset({complete_address})
    reason = board.pipeline.run(2_000_000)
    if reason != "stop_addr":
        raise RuntimeError(f"boot firmware did not reach boot_complete: {reason}")
    pre_main = board.pipeline.milestones[0][0] if board.pipeline.milestones else 0
    return board.pipeline.cycles, pre_main


def run_table4() -> Table4Result:
    result = Table4Result()
    baseline_cycles, baseline_pre_main = _boot_cycles(CONFIGS["None"])
    for defense, config in CONFIGS.items():
        cycles, pre_main = _boot_cycles(config)
        # the constant term is the extra pre-main work (crt0 + __gr_init —
        # dominated by the delay defense's non-volatile seed update)
        constant = max(0, pre_main - baseline_pre_main)
        increase = (cycles - baseline_cycles) / baseline_cycles * 100
        adjusted = (cycles - constant - baseline_cycles) / baseline_cycles * 100
        result.rows.append(
            Table4Row(
                defense=defense,
                cycles=cycles,
                increase_pct=increase,
                constant=constant,
                adjusted_pct=adjusted,
            )
        )
    return result


__all__ = ["Table4Result", "Table4Row", "run_table4", "PAPER_ROWS", "CONFIGS"]

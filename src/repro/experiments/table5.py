"""Table V: size overhead of each defense on the boot firmware (RQ6)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.layout import SectionSizes
from repro.experiments.render import render_table
from repro.experiments.table4 import CONFIGS
from repro.firmware.boot import build_boot_firmware

#: paper Table V: defense → (text, data, bss, total)
PAPER_ROWS = {
    "None": (6456, 120, 1728, 8304),
    "Branches": (6956, 120, 1728, 8804),
    "Delay": (7512, 128, 1768, 9408),
    "Integrity": (6840, 124, 1732, 8696),
    "Loops": (6840, 124, 1732, 8696),
    "Returns": (6460, 120, 1728, 8308),
    "All\\Delay": (7700, 124, 1732, 9556),
    "All": (9144, 132, 1768, 11044),
}


@dataclass
class Table5Result:
    sizes: dict[str, SectionSizes] = field(default_factory=dict)

    def overhead(self, defense: str, section: str = "text") -> float:
        base = getattr(self.sizes["None"], section)
        value = getattr(self.sizes[defense], section)
        return (value - base) / base * 100 if base else 0.0

    def render(self) -> str:
        rows = []
        for defense, sizes in self.sizes.items():
            paper = PAPER_ROWS[defense]
            rows.append([
                defense,
                sizes.text, f"{self.overhead(defense, 'text'):.2f}%",
                sizes.data, sizes.bss, sizes.total,
                f"{paper[0]}/{paper[3]}",
            ])
        return render_table(
            "Table V: size overhead per defense (bytes)",
            ["Defense", "text", "text %", "data", "bss", "total", "Paper (text/total)"],
            rows,
        )


def run_table5() -> Table5Result:
    result = Table5Result()
    for defense, config in CONFIGS.items():
        hardened = build_boot_firmware(config)
        result.sizes[defense] = hardened.sizes
    return result


__all__ = ["Table5Result", "run_table5", "PAPER_ROWS"]

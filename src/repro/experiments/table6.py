"""Table VI: effectiveness of the stacked defenses against real attacks (RQ7).

Two scenarios × two defense stacks × three attacks:

- scenarios: ``while(!a)`` (worst case) and ``if (a == SUCCESS)`` (best case);
- stacks: All and All\\Delay (plus the undefended baseline for reference);
- attacks: single glitch (cycle 0-10), long glitch (10-100 cycles), and
  the windowed 10-cycle long glitch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.render import render_table
from repro.firmware.guards import build_defended_guard
from repro.hw.faults import FaultModel
from repro.hw.scan import DefenseScanResult, run_defense_scan
from repro.resistor import ResistorConfig

#: paper Table VI: (scenario, defense, attack) → (successes, success %, detection %)
PAPER_ROWS = {
    ("while_not_a", "all", "single"): (10, 0.0000928, 0.984),
    ("while_not_a", "all_no_delay", "single"): (4, 0.0000371, 0.996),
    ("while_not_a", "all", "long"): (258, 0.00263, 0.792),
    ("while_not_a", "all_no_delay", "long"): (262, 0.00267, 0.712),
    ("while_not_a", "all", "windowed"): (227, 0.00211, 0.891),
    ("while_not_a", "all_no_delay", "windowed"): (1281, 0.01188, 0.436),
    ("if_success", "all", "single"): (1, 0.00000928, 1.0),
    ("if_success", "all_no_delay", "single"): (1, 0.0000093, 0.954),
    ("if_success", "all", "long"): (3, 0.0000306, 0.997),
    ("if_success", "all_no_delay", "long"): (44, 0.000449, 0.862),
    ("if_success", "all", "windowed"): (10, 0.0000557, 0.997),
    ("if_success", "all_no_delay", "windowed"): (2, 0.0000186, 0.998),
}

DEFENSE_STACKS = {
    "none": ResistorConfig.none,
    "all": ResistorConfig.all,
    "all_no_delay": ResistorConfig.all_but_delay,
}

ATTACKS = ("single", "long", "windowed")
SCENARIOS = ("while_not_a", "if_success")


@dataclass
class Table6Result:
    #: the first (or only) model's results — the historical single-model shape
    results: dict[tuple[str, str, str], DefenseScanResult] = field(default_factory=dict)
    #: per-model axis: model label → (scenario, defense, attack) → result
    by_model: dict[str, dict[tuple[str, str, str], DefenseScanResult]] = field(
        default_factory=dict
    )

    def get(self, scenario: str, defense: str, attack: str) -> DefenseScanResult:
        return self.results[(scenario, defense, attack)]

    def render(self) -> str:
        parts = []
        models = self.by_model or {"clock": self.results}
        for label, results in models.items():
            model_note = f" [{label} model]" if len(models) > 1 else ""
            rows = []
            for (scenario, defense, attack), scan in sorted(results.items()):
                paper = PAPER_ROWS.get((scenario, defense, attack))
                paper_text = (
                    f"{paper[0]} succ ({paper[1] * 100:.4g}%), det {paper[2] * 100:.1f}%"
                    if paper
                    else "-"
                )
                rows.append([
                    scenario, defense, attack,
                    f"{scan.successes}/{scan.attempts}",
                    f"{scan.success_rate * 100:.5f}%",
                    scan.detections,
                    f"{scan.detection_rate * 100:.1f}%",
                    paper_text,
                ])
            parts.append(render_table(
                "Table VI: defended-firmware attack outcomes" + model_note,
                ["Scenario", "Defense", "Attack", "Succ", "Succ %", "Det", "Det %", "Paper"],
                rows,
            ))
        return "\n\n".join(parts)

    def all_stack_beats_baseline(self) -> bool:
        for scenario in SCENARIOS:
            for attack in ATTACKS:
                key_all = (scenario, "all", attack)
                key_none = (scenario, "none", attack)
                if key_all in self.results and key_none in self.results:
                    if self.results[key_all].success_rate > self.results[key_none].success_rate:
                        return False
        return True


def run_table6(
    stride: int = 1,
    attacks: tuple[str, ...] = ATTACKS,
    scenarios: tuple[str, ...] = SCENARIOS,
    defenses: tuple[str, ...] = ("none", "all", "all_no_delay"),
    fault_model: FaultModel | str | None = None,
    workers: int = 1,
    progress=None,
    checkpoint_dir=None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout=None,
    obs=None,
    profile=None,
    fault_models=None,
) -> Table6Result:
    """Run Table VI, optionally once per fault model (see :func:`run_table1`)."""
    from repro.hw.models import model_checkpoint_dir, resolve_model_axis
    from repro.obs import coerce_observer

    axis = resolve_model_axis(fault_model, fault_models, profile)
    obs = coerce_observer(obs)
    result = Table6Result()
    with obs.trace("table6", stride=stride):
        for label, model in axis:
            results: dict[tuple[str, str, str], DefenseScanResult] = {}
            for scenario in scenarios:
                for defense in defenses:
                    hardened = build_defended_guard(scenario, DEFENSE_STACKS[defense]())
                    for attack in attacks:
                        results[(scenario, defense, attack)] = run_defense_scan(
                            hardened.image,
                            attack,
                            scenario=scenario,
                            defense=defense,
                            stride=stride,
                            fault_model=model,
                            workers=workers,
                            progress=progress,
                            checkpoint_dir=model_checkpoint_dir(
                                checkpoint_dir, label, axis
                            ),
                            resume=resume,
                            retries=retries,
                            unit_timeout=unit_timeout,
                            obs=obs,
                        )
            result.by_model[label] = results
    result.results = next(iter(result.by_model.values()))
    return result


__all__ = ["Table6Result", "run_table6", "PAPER_ROWS", "ATTACKS", "SCENARIOS", "DEFENSE_STACKS"]

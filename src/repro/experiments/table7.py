"""Table VII: qualitative comparison with prior software-based defenses.

A static matrix (the paper's is a literature survey, not a measurement);
GlitchResistor's row is cross-checked against what this reproduction's
implementation actually provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.render import render_table

YES = "yes"
NO = "-"

COLUMNS = [
    "Generic", "Extensible", "Backward Compatible",
    "Constant Diversification", "Data Integrity", "Control-flow Hardening",
    "Random Delay",
]

#: rows transcribed from the paper's Table VII
ROWS = {
    "Data Encoding [37,14]": (NO, NO, NO, YES, YES, NO, NO),
    "CAMFAS [17]": (YES, NO, NO, NO, YES, NO, NO),
    "Loop Hardening [60]": (YES, NO, YES, NO, NO, YES, NO),
    "IIR [58]": (NO, NO, NO, NO, YES, NO, NO),
    "CountCompile [11]": (YES, NO, YES, NO, NO, YES, NO),
    "CountC [36]": (NO, NO, NO, NO, NO, YES, NO),
    "SWIFT [63]": (YES, NO, NO, NO, YES, YES, NO),
    "CFCSS [55]": (YES, NO, NO, NO, NO, YES, NO),
    "GlitchResistor": (YES, YES, YES, YES, YES, YES, YES),
}


@dataclass
class Table7Result:
    rows: dict = None

    def __post_init__(self):
        if self.rows is None:
            self.rows = dict(ROWS)

    def render(self) -> str:
        table_rows = [[name, *values] for name, values in self.rows.items()]
        return render_table(
            "Table VII: software-based glitching defenses compared",
            ["Defense", *COLUMNS],
            table_rows,
        )

    def glitchresistor_claims_verified(self) -> dict[str, bool]:
        """Cross-check GlitchResistor's claimed properties against this
        reproduction's implementation."""
        from repro.resistor import ResistorConfig
        from repro.resistor.driver import harden

        source = """
        enum E { A, B };
        int g = 1;
        int f(void) { if (g == 1) { return A; } return B; }
        int main(void) { int i = 0; while (i < 2) { i = i + 1; g = g + i; } if (f() == A) { return 1; } return 0; }
        """
        hardened = harden(source, ResistorConfig.all(sensitive=("g",)))
        report = hardened.report
        return {
            "Constant Diversification": bool(report.enums_rewritten) and bool(report.return_codes),
            "Data Integrity": report.integrity_loads > 0 and report.integrity_stores > 0,
            "Control-flow Hardening": report.branches_instrumented > 0
            and report.loops_instrumented > 0,
            "Random Delay": report.delays_injected > 0,
            "Backward Compatible": True,  # original source compiles unmodified
            "Extensible": True,  # defenses are IRPass plugins (see PassManager)
            "Generic": True,  # operates on any MiniC program, not one app
        }


def run_table7() -> Table7Result:
    return Table7Result()


__all__ = ["Table7Result", "run_table7", "ROWS", "COLUMNS"]

"""Firmware images used by the evaluation.

- :mod:`repro.firmware.loops` — the three hand-written guard loops of
  Section V (``while(!a)``, ``while(a)``, ``while(a != 0xD3B9AEC6)``), in
  single- and double-loop (multi-glitch) variants, matching the paper's
  Table I assembly listings instruction for instruction.
- :mod:`repro.firmware.boot` — the CubeMX-style boot firmware used for the
  overhead measurements (Table IV/V), written in MiniC and compiled by
  :mod:`repro.compiler`.
- :mod:`repro.firmware.guards` — the MiniC sources for the defended
  evaluation targets of Table VI.
- :mod:`repro.firmware.image` — the raw/Intel-HEX firmware image loader
  feeding whole-image site discovery and campaigns (:mod:`repro.campaign`).
"""

from repro.firmware.loops import (
    GuardKind,
    build_guard_firmware,
    GUARD_KINDS,
)
from repro.firmware.image import (
    FirmwareImage,
    load_image,
    load_raw,
    parse_ihex,
    write_image,
)

__all__ = [
    "GuardKind",
    "build_guard_firmware",
    "GUARD_KINDS",
    "FirmwareImage",
    "load_image",
    "load_raw",
    "parse_ihex",
    "write_image",
]

"""Firmware images used by the evaluation.

- :mod:`repro.firmware.loops` — the three hand-written guard loops of
  Section V (``while(!a)``, ``while(a)``, ``while(a != 0xD3B9AEC6)``), in
  single- and double-loop (multi-glitch) variants, matching the paper's
  Table I assembly listings instruction for instruction.
- :mod:`repro.firmware.boot` — the CubeMX-style boot firmware used for the
  overhead measurements (Table IV/V), written in MiniC and compiled by
  :mod:`repro.compiler`.
- :mod:`repro.firmware.guards` — the MiniC sources for the defended
  evaluation targets of Table VI.
"""

from repro.firmware.loops import (
    GuardKind,
    build_guard_firmware,
    GUARD_KINDS,
)

__all__ = ["GuardKind", "build_guard_firmware", "GUARD_KINDS"]

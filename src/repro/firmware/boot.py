"""The CubeMX-style boot firmware used for the overhead evaluation (§VII-A).

Mirrors the paper's measurement target: "a simple, indicative firmware ...
initializes the board, and then loops forever, reading the number of ticks
... The variable that is used to store the tick counter was marked as a
sensitive variable, and two functions that use ENUMs and constant return
values are used to check the tick value. The firmware will call a success
function if the tick value is ever equal to 0, which was designed to be
impossible."

Boot time (Table IV) is the cycle count from reset to the issue of
``boot_complete`` — the equivalent of the paper reading the DWT cycle
counter once at reset and once after HAL/board initialisation.
"""

from __future__ import annotations

from repro.hw.mcu import TRIGGER_ADDRESS
from repro.resistor import HardenedProgram, ResistorConfig, harden

#: pretend-peripheral registers, mapped inside our GPIO block so writes land
#: in real MMIO (their values are scratch, like RCC/SysTick config writes)
_RCC_CR = TRIGGER_ADDRESS + 0x20
_RCC_CFGR = TRIGGER_ADDRESS + 0x24
_SYSTICK_LOAD = TRIGGER_ADDRESS + 0x28
_SYSTICK_CTRL = TRIGGER_ADDRESS + 0x2C

BOOT_SOURCE = f"""
enum HalStatus {{ HAL_OK, HAL_ERROR, HAL_BUSY, HAL_TIMEOUT }};

volatile unsigned int uwTick;
unsigned int SystemCoreClock = 8000000;

void win(void) {{
    for (;;) {{ }}
}}

int HAL_InitTick(void) {{
    *(volatile unsigned int *)0x{_SYSTICK_LOAD:08X} = 7999;
    *(volatile unsigned int *)0x{_SYSTICK_CTRL:08X} = 7;
    uwTick = 0;
    return HAL_OK;
}}

int HAL_Init(void) {{
    if (HAL_InitTick() != HAL_OK) {{
        return HAL_ERROR;
    }}
    return HAL_OK;
}}

int SystemClock_Config(void) {{
    *(volatile unsigned int *)0x{_RCC_CR:08X} = 0x01000083;
    unsigned int ready = 0;
    for (int i = 0; i < 4; i = i + 1) {{
        ready = *(volatile unsigned int *)0x{_RCC_CR:08X};
    }}
    *(volatile unsigned int *)0x{_RCC_CFGR:08X} = 0x00000000;
    SystemCoreClock = 48000000;
    return HAL_OK;
}}

int check_tick_sane(void) {{
    if (uwTick == 0) {{
        return HAL_OK;
    }}
    return HAL_ERROR;
}}

void boot_complete(void) {{
    // marker: issuing this function ends the boot-time measurement
    __nop();
}}

int main(void) {{
    if (HAL_Init() != HAL_OK) {{
        return HAL_ERROR;
    }}
    if (SystemClock_Config() != HAL_OK) {{
        return HAL_ERROR;
    }}
    boot_complete();
    for (;;) {{
        uwTick = uwTick + 1;
        if (uwTick == 0) {{
            // designed to be impossible (2^32 increments away)
            win();
        }}
        if (check_tick_sane() == HAL_OK) {{
            win();
        }}
    }}
    return HAL_OK;
}}
"""

#: the paper marks the tick counter sensitive
SENSITIVE_VARIABLES = ("uwTick",)


def build_boot_firmware(config: ResistorConfig) -> HardenedProgram:
    """Compile the boot firmware under a defense configuration.

    Integrity protection needs the sensitive list filled in; the Table IV/V
    presets pass it automatically.
    """
    if config.integrity and not config.sensitive_variables:
        from dataclasses import replace

        config = replace(config, sensitive_variables=SENSITIVE_VARIABLES)
    return harden(BOOT_SOURCE, config)


__all__ = ["BOOT_SOURCE", "SENSITIVE_VARIABLES", "build_boot_firmware"]

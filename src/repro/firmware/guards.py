"""MiniC sources for the defended evaluation targets (Table VI).

Two scenarios, per §VII-B:

- ``while(!a)`` — the *worst case* for the defenses: the guard variable is
  volatile (so the redundant check cannot re-load it) and the loop was the
  most glitchable condition in Section V.
- ``if (a == SUCCESS)`` — the *best case*: an uninitialized enum guard
  (diversified by the ENUM rewriter) around a success path that should be
  unreachable, "more indicative of how programmers write code".

Both raise the GPIO trigger immediately before the guard, exactly like the
hand-written Section V firmware, and expose ``win`` (the state a successful
glitch reaches) plus GlitchResistor's ``gr_detected``.
"""

from __future__ import annotations

from repro.hw.mcu import TRIGGER_ADDRESS
from repro.resistor import HardenedProgram, ResistorConfig, harden

WHILE_NOT_A_SOURCE = f"""
volatile int a;

void win(void) {{
    for (;;) {{ }}
}}

int main(void) {{
    a = 0;
    *(volatile unsigned int *)0x{TRIGGER_ADDRESS:08X} = 1;
    while (!a) {{ }}
    win();
    return 0;
}}
"""

IF_SUCCESS_SOURCE = f"""
enum BootStatus {{ SUCCESS, FAILURE }};

volatile int a;

void win(void) {{
    for (;;) {{ }}
}}

int main(void) {{
    a = FAILURE;
    *(volatile unsigned int *)0x{TRIGGER_ADDRESS:08X} = 1;
    if (a == SUCCESS) {{
        win();
    }}
    for (;;) {{ }}
    return 0;
}}
"""

GUARD_SOURCES = {
    "while_not_a": WHILE_NOT_A_SOURCE,
    "if_success": IF_SUCCESS_SOURCE,
}


def build_defended_guard(scenario: str, config: ResistorConfig) -> HardenedProgram:
    """Compile one Table VI scenario with the given defense configuration."""
    try:
        source = GUARD_SOURCES[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; expected one of {sorted(GUARD_SOURCES)}"
        ) from None
    return harden(source, config)


__all__ = [
    "WHILE_NOT_A_SOURCE",
    "IF_SUCCESS_SOURCE",
    "GUARD_SOURCES",
    "build_defended_guard",
]

"""Firmware image loading and writing (raw binary and Intel HEX).

The whole-image campaign pipeline (:mod:`repro.campaign`) starts here:
a :class:`FirmwareImage` is the flat ``(base, data, entry)`` view of a
binary that the site-discovery pass and the per-site harnesses share.

Both loaders follow the assembler's two-pass idiom
(:class:`repro.isa.assembler.Assembler`): pass 1 parses and validates
every record in isolation (structure, hex digits, checksum), pass 2
resolves the layout (extended-address bases, segment merge order, gap
fill, overlap detection).  Every malformed input raises the typed
:class:`repro.errors.ImageError` — never a bare ``IndexError`` — so
campaign drivers can distinguish "bad image" from "bug".

Round-trip contract: ``assemble(src) → from_program → to_ihex/to_raw →
load_image`` reproduces the exact halfwords and entry point, so
``repro assemble -o out.hex`` output feeds straight into
``repro discover`` / ``repro campaign --image``.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha1

from repro.bits import bytes_to_halfwords
from repro.errors import ImageError

#: default load address for raw images (Cortex-M flash alias, matching
#: the snippet/firmware worlds in repro.glitchsim.snippets)
DEFAULT_BASE = 0x0800_0000

#: refuse to materialise an ihex whose segments span more than this —
#: a stray extended-address record would otherwise allocate gigabytes
MAX_SPAN = 16 * 1024 * 1024

IMAGE_FORMATS = ("auto", "raw", "ihex")

#: file suffixes recognised as Intel HEX by ``fmt="auto"``
_IHEX_SUFFIXES = (".hex", ".ihex", ".ihx")


@dataclass(frozen=True)
class FirmwareImage:
    """A flat firmware image: contiguous bytes at a base address.

    ``data`` always has even length (instruction fetch is by halfword);
    loaders pad odd ihex layouts with a trailing ``0x00`` and reject odd
    raw files outright.  ``entry`` is where reachability-based site
    discovery starts — the ihex start-address record when present, else
    ``base``.
    """

    base: int
    data: bytes
    entry: int
    source: str = "<memory>"

    def __post_init__(self) -> None:
        if self.base % 2:
            raise ImageError(f"image base {self.base:#x} is not halfword-aligned")
        if len(self.data) % 2:
            raise ImageError(f"image has odd length {len(self.data)} "
                             "(Thumb fetch is by halfword)")
        if not self.base <= self.entry < self.base + max(len(self.data), 1):
            raise ImageError(
                f"entry point {self.entry:#x} lies outside the image "
                f"[{self.base:#x}, {self.base + len(self.data):#x})"
            )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    @property
    def halfwords(self) -> list[int]:
        return bytes_to_halfwords(self.data)

    def word_at(self, address: int) -> int:
        """The 16-bit halfword at ``address`` (must be aligned and mapped)."""
        offset = address - self.base
        if offset < 0 or offset + 2 > len(self.data) or offset % 2:
            raise ImageError(f"address {address:#x} is not a mapped halfword")
        return self.data[offset] | (self.data[offset + 1] << 8)

    @property
    def digest(self) -> str:
        """Short content digest — names shared cache shards and checkpoints."""
        h = sha1(self.base.to_bytes(4, "little"))
        h.update(self.data)
        return h.hexdigest()[:10]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_program(cls, program, entry: int | None = None,
                     source: str = "<assembled>") -> "FirmwareImage":
        """Wrap an :class:`repro.isa.assembler.AssembledProgram`."""
        return cls(
            base=program.base,
            data=bytes(program.code),
            entry=program.base if entry is None else entry,
            source=source,
        )

    # ------------------------------------------------------------------
    # writers (the inverse of the loaders below)
    # ------------------------------------------------------------------

    def to_raw(self) -> bytes:
        return self.data

    def to_ihex(self, record_bytes: int = 16) -> str:
        """Serialise as Intel HEX with extended-linear-address records.

        Emits a type-05 start-address record for the entry point, so the
        ihex round-trip preserves it (the raw format cannot).
        """
        lines: list[str] = []
        upper = None
        for offset in range(0, len(self.data), record_bytes):
            address = self.base + offset
            if (address >> 16) != upper:
                upper = address >> 16
                lines.append(_record(0, 0x04, upper.to_bytes(2, "big")))
            chunk = self.data[offset:offset + record_bytes]
            lines.append(_record(address & 0xFFFF, 0x00, chunk))
        lines.append(_record(0, 0x05, self.entry.to_bytes(4, "big")))
        lines.append(_record(0, 0x01, b""))
        return "\n".join(lines) + "\n"


def _record(address: int, rectype: int, payload: bytes) -> str:
    body = bytes((len(payload), (address >> 8) & 0xFF, address & 0xFF, rectype))
    body += payload
    checksum = (-sum(body)) & 0xFF
    return ":" + (body + bytes((checksum,))).hex().upper()


# ----------------------------------------------------------------------
# loaders
# ----------------------------------------------------------------------

def load_raw(data: bytes, base: int = DEFAULT_BASE, entry: int | None = None,
             source: str = "<raw>") -> FirmwareImage:
    """Wrap a flat binary blob. Odd-length blobs are a typed error."""
    if len(data) == 0:
        raise ImageError(f"{source}: empty image")
    if len(data) % 2:
        raise ImageError(
            f"{source}: raw image has odd length {len(data)} "
            "(Thumb images are a whole number of halfwords)"
        )
    return FirmwareImage(base=base, data=bytes(data),
                         entry=base if entry is None else entry, source=source)


def parse_ihex(text: str, source: str = "<ihex>") -> FirmwareImage:
    """Parse Intel HEX using the assembler's two-pass idiom.

    Pass 1 validates each record in isolation — prefix, hex digits,
    declared-length vs actual, checksum — and collects ``(address,
    payload)`` segments under the running extended-address base.  Pass 2
    lays the segments out: sorts, rejects overlaps, fills gaps with
    ``0x00`` (which decodes as a harmless ``movs r0, r0``), and pads an
    odd total to a whole halfword.
    """
    segments: list[tuple[int, bytes]] = []  # (absolute address, payload)
    entry: int | None = None
    upper = 0
    saw_eof = False

    # pass 1: per-record structural validation
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if saw_eof:
            raise ImageError(f"{source}:{line_no}: data after EOF record")
        if not line.startswith(":"):
            raise ImageError(f"{source}:{line_no}: record does not start with ':'")
        try:
            body = bytes.fromhex(line[1:])
        except ValueError:
            raise ImageError(f"{source}:{line_no}: non-hex digits in record") from None
        if len(body) < 5:
            raise ImageError(f"{source}:{line_no}: truncated record "
                             f"({len(body)} bytes, minimum 5)")
        count, addr_hi, addr_lo, rectype = body[0], body[1], body[2], body[3]
        if len(body) != count + 5:
            raise ImageError(
                f"{source}:{line_no}: truncated record (declares {count} data "
                f"bytes, carries {len(body) - 5})"
            )
        if sum(body) & 0xFF:
            raise ImageError(
                f"{source}:{line_no}: checksum mismatch "
                f"(record sums to {sum(body) & 0xFF:#04x}, expected 0)"
            )
        payload = body[4:-1]
        address = (addr_hi << 8) | addr_lo
        if rectype == 0x00:  # data
            if payload:
                segments.append((upper + address, payload))
        elif rectype == 0x01:  # EOF
            saw_eof = True
        elif rectype == 0x02:  # extended segment address
            if count != 2:
                raise ImageError(f"{source}:{line_no}: type-02 record needs 2 data bytes")
            upper = int.from_bytes(payload, "big") << 4
        elif rectype == 0x04:  # extended linear address
            if count != 2:
                raise ImageError(f"{source}:{line_no}: type-04 record needs 2 data bytes")
            upper = int.from_bytes(payload, "big") << 16
        elif rectype in (0x03, 0x05):  # start segment / linear address
            if count != 4:
                raise ImageError(f"{source}:{line_no}: start-address record needs 4 data bytes")
            entry = int.from_bytes(payload, "big")
            if rectype == 0x03:  # CS:IP → linear
                entry = ((entry >> 16) << 4) + (entry & 0xFFFF)
        else:
            raise ImageError(f"{source}:{line_no}: unknown record type {rectype:#04x}")
    if not saw_eof:
        raise ImageError(f"{source}: missing EOF record")
    if not segments:
        raise ImageError(f"{source}: no data records")

    # pass 2: layout resolution
    segments.sort(key=lambda seg: seg[0])
    base = segments[0][0]
    span = segments[-1][0] + len(segments[-1][1]) - base
    if span > MAX_SPAN:
        raise ImageError(f"{source}: segments span {span} bytes "
                         f"(limit {MAX_SPAN}); check extended-address records")
    data = bytearray(span)
    cursor = base  # highest address written so far
    for address, payload in segments:
        if address < cursor:
            raise ImageError(
                f"{source}: overlapping segments at {address:#x} "
                f"(previous segment ends at {cursor:#x})"
            )
        data[address - base:address - base + len(payload)] = payload
        cursor = address + len(payload)
    if len(data) % 2:
        data.append(0x00)
    if entry is None:
        entry = base
    # Thumb entry vectors carry the interworking bit; the image is halfword
    # addressed, so drop it.
    entry &= ~1
    return FirmwareImage(base=base, data=bytes(data), entry=entry, source=source)


def load_image(path: str, base: int | None = None, fmt: str = "auto") -> FirmwareImage:
    """Load ``path`` as ``fmt`` (``auto`` sniffs ``.hex``/``.ihex``/``.ihx``).

    ``base`` applies to raw images only; an ihex carries its own layout
    (passing ``base`` for an ihex is an error rather than silently ignored).
    """
    if fmt not in IMAGE_FORMATS:
        raise ImageError(f"unknown image format {fmt!r}; expected one of {IMAGE_FORMATS}")
    if fmt == "auto":
        fmt = "ihex" if path.lower().endswith(_IHEX_SUFFIXES) else "raw"
    if fmt == "ihex":
        if base is not None:
            raise ImageError("--base applies to raw images; "
                             "Intel HEX records carry their own addresses")
        with open(path) as handle:
            return parse_ihex(handle.read(), source=path)
    with open(path, "rb") as handle:
        data = handle.read()
    return load_raw(data, base=DEFAULT_BASE if base is None else base, source=path)


def write_image(image: FirmwareImage, path: str, fmt: str = "auto") -> None:
    """Write ``image`` to ``path`` as raw bytes or Intel HEX."""
    if fmt not in IMAGE_FORMATS:
        raise ImageError(f"unknown image format {fmt!r}; expected one of {IMAGE_FORMATS}")
    if fmt == "auto":
        fmt = "ihex" if path.lower().endswith(_IHEX_SUFFIXES) else "raw"
    if fmt == "ihex":
        with open(path, "w") as handle:
            handle.write(image.to_ihex())
    else:
        with open(path, "wb") as handle:
            handle.write(image.to_raw())


__all__ = [
    "FirmwareImage",
    "DEFAULT_BASE",
    "IMAGE_FORMATS",
    "load_raw",
    "parse_ihex",
    "load_image",
    "write_image",
]

"""The Section V guard-loop firmware, matching the paper's Table I listings.

Three guard conditions, "implemented as empty infinite loops, with volatile
variables so they are not optimized out by the compiler (a successful
glitch would exit the loop)":

- ``while (!a)`` with ``a = 0`` — compiles to
  ``MOV R3, SP; ADDS R3, #7; LDRB R3, [R3]; CMP R3, #0; BEQ .loop``
- ``while (a)`` with ``a = 1`` — same body, ``BNE .loop``
- ``while (a != 0xD3B9AEC6)`` with ``a = 0xE7D25763`` — compiles to
  ``LDR R2, [SP, #0x10]; LDR R3, =0xD3B9AEC6; CMP R2, R3; BNE .loop``

On our 3-stage pipeline each iteration occupies exactly 8 clock cycles
(loads take 2, the taken branch takes 3), reproducing the paper's
cycle-to-instruction mapping in Table I.

Variants:

- ``single`` — one trigger, one loop, ``win`` on exit (Table I).
- ``double`` — trigger, loop, trigger reset + re-trigger, second identical
  loop, ``win`` (Table II's multi-glitch: "the trigger being reset,
  triggered, and a second glitch inserted").
- ``contiguous`` — two back-to-back loops after a single trigger
  (Table III's long glitch spanning both loops).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import AssembledProgram, assemble
from repro.hw.mcu import FLASH_BASE, TRIGGER_ADDRESS

GUARD_KINDS = ("not_a", "a", "a_ne_const")

#: Table I's magic comparison constant and stored value.
MAGIC_CONSTANT = 0xD3B9AEC6
STORED_VALUE = 0xE7D25763


@dataclass(frozen=True)
class GuardKind:
    """Descriptor for one of the three guard conditions."""

    name: str
    description: str
    comparator_register: int  # the register the paper post-mortems


_DESCRIPTORS = {
    "not_a": GuardKind("not_a", "while(!a), a=0", comparator_register=3),
    "a": GuardKind("a", "while(a), a=1", comparator_register=3),
    "a_ne_const": GuardKind(
        "a_ne_const", f"while(a!=0x{MAGIC_CONSTANT:08X}), a=0x{STORED_VALUE:08X}",
        comparator_register=2,
    ),
}


def guard_descriptor(kind: str) -> GuardKind:
    try:
        return _DESCRIPTORS[kind]
    except KeyError:
        raise ValueError(f"unknown guard kind {kind!r}; expected one of {GUARD_KINDS}") from None


def _loop_body(kind: str, label: str) -> str:
    if kind == "not_a":
        return f"""
{label}:
    mov r3, sp
    adds r3, #7
    ldrb r3, [r3]
    cmp r3, #0
    beq {label}
"""
    if kind == "a":
        return f"""
{label}:
    mov r3, sp
    adds r3, #7
    ldrb r3, [r3]
    cmp r3, #0
    bne {label}
"""
    if kind == "a_ne_const":
        return f"""
{label}:
    ldr r2, [sp, #0x10]
    ldr r3, =0x{MAGIC_CONSTANT:08X}
    cmp r2, r3
    bne {label}
"""
    raise ValueError(f"unknown guard kind {kind!r}")


def _prologue(kind: str) -> str:
    """Initialise the guarded variable and load the trigger address."""
    if kind in ("not_a", "a"):
        initial = 0 if kind == "not_a" else 1
        return f"""
_start:
    sub sp, #24
    movs r3, #{initial}
    mov r0, sp
    adds r0, #7
    strb r3, [r0]
    ldr r0, =0x{TRIGGER_ADDRESS:08X}
"""
    return f"""
_start:
    sub sp, #24
    ldr r3, =0x{STORED_VALUE:08X}
    str r3, [sp, #0x10]
    ldr r0, =0x{TRIGGER_ADDRESS:08X}
"""


_TRIGGER = """
    movs r1, #1
    str r1, [r0]
"""

_TRIGGER_RESET = """
    movs r1, #0
    str r1, [r0]
"""


def build_guard_firmware(kind: str, variant: str = "single") -> AssembledProgram:
    """Assemble the guard firmware; exports ``_start``, ``loop``, ``win``
    (and ``loop2`` / ``exit1`` for the two-loop variants)."""
    guard_descriptor(kind)
    if variant == "single":
        source = (
            _prologue(kind)
            + _TRIGGER
            + _loop_body(kind, "loop")
            + """
win:
    bkpt #0
    .pool
"""
        )
    elif variant == "double":
        source = (
            _prologue(kind)
            + _TRIGGER
            + _loop_body(kind, "loop")
            + "exit1:"
            + _TRIGGER_RESET
            + _TRIGGER
            + _loop_body(kind, "loop2")
            + """
win:
    bkpt #0
    .pool
"""
        )
    elif variant == "contiguous":
        source = (
            _prologue(kind)
            + _TRIGGER
            + _loop_body(kind, "loop")
            + "exit1:\n"
            + _loop_body(kind, "loop2")
            + """
win:
    bkpt #0
    .pool
"""
        )
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return assemble(source, base=FLASH_BASE)


__all__ = [
    "GUARD_KINDS",
    "GuardKind",
    "guard_descriptor",
    "build_guard_firmware",
    "MAGIC_CONSTANT",
    "STORED_VALUE",
]

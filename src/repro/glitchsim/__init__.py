"""Section IV: glitching effects in emulation (RQ1, Figure 2).

The campaign takes a hand-written snippet that isolates one instruction
(a conditional branch that *would* be taken), applies every possible
:math:`\\binom{n}{k}` bit mask to that instruction under a unidirectional
flip model (AND = 1→0, OR = 0→1, plus XOR for the ablation), executes the
corrupted program in the emulator, and classifies the outcome exactly as
the paper does: *Success*, *Bad Read*, *Invalid Instruction*, *Bad Fetch*,
*Failed*, or *No Effect*.
"""

from repro.glitchsim.snippets import BranchSnippet, branch_snippet, all_branch_snippets
from repro.glitchsim.harness import Outcome, SnippetHarness, OUTCOME_CATEGORIES
from repro.glitchsim.campaign import (
    TALLY_MODES,
    CampaignResult,
    InstructionSweep,
    run_branch_campaign,
    sweep_instruction,
)
from repro.glitchsim.maskalgebra import (
    multiplicity,
    reachable_words,
    tally_from_word_outcomes,
)
from repro.glitchsim.results import FigureData, figure2, render_figure_ascii, to_csv
from repro.glitchsim.instr_classes import (
    ClassSweepResult,
    sweep_all_classes,
    sweep_instruction_class,
)

__all__ = [
    "BranchSnippet",
    "branch_snippet",
    "all_branch_snippets",
    "Outcome",
    "SnippetHarness",
    "OUTCOME_CATEGORIES",
    "CampaignResult",
    "InstructionSweep",
    "TALLY_MODES",
    "run_branch_campaign",
    "sweep_instruction",
    "reachable_words",
    "multiplicity",
    "tally_from_word_outcomes",
    "FigureData",
    "figure2",
    "render_figure_ascii",
    "to_csv",
    "ClassSweepResult",
    "sweep_all_classes",
    "sweep_instruction_class",
]

"""Exhaustive bit-flip campaigns over instruction encodings (Section IV).

For an instruction of ``n`` bits the campaign enumerates every
:math:`\\binom{n}{k}` mask for every ``k``, applies it under a flip model
(AND / OR / XOR), executes the corrupted snippet, and tallies outcomes.

The executed outcome depends only on the *resulting* corrupted word, so the
harness caches per-word results; a full 16-bit sweep costs at most 2^16
distinct executions even though it aggregates 2^16 masks per model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.bits import apply_flip, iter_masks
from repro.exec import OutcomeCache, ParallelExecutor, ProgressReporter, coerce_cache
from repro.glitchsim.harness import OUTCOME_CATEGORIES, SnippetHarness
from repro.glitchsim.snippets import BranchSnippet, all_branch_snippets

INSTRUCTION_BITS = 16


@dataclass
class InstructionSweep:
    """Aggregated outcomes for one instruction under one flip model."""

    mnemonic: str
    model: str
    target_word: int
    zero_is_invalid: bool = False
    #: per flip-count k: Counter of outcome categories
    by_k: dict[int, Counter] = field(default_factory=dict)

    @property
    def totals(self) -> Counter:
        total: Counter = Counter()
        for counter in self.by_k.values():
            total.update(counter)
        return total

    def success_rate(self, k: int | None = None) -> float:
        """Fraction of masks classified *success* (overall, or for one ``k``)."""
        counter = self.totals if k is None else self.by_k.get(k, Counter())
        attempts = sum(counter.values())
        if attempts == 0:
            return 0.0
        return counter.get("success", 0) / attempts

    def category_fractions(self) -> dict[str, float]:
        """Overall fraction per outcome category (the Figure 2 histograms)."""
        totals = self.totals
        attempts = sum(totals.values())
        if attempts == 0:
            return {category: 0.0 for category in OUTCOME_CATEGORIES}
        return {category: totals.get(category, 0) / attempts for category in OUTCOME_CATEGORIES}


@dataclass
class CampaignResult:
    """One full campaign: every conditional branch under one flip model."""

    model: str
    zero_is_invalid: bool
    sweeps: list[InstructionSweep]

    def sweep_for(self, mnemonic: str) -> InstructionSweep:
        for sweep in self.sweeps:
            if sweep.mnemonic == mnemonic:
                return sweep
        raise KeyError(mnemonic)

    def ranked_by_success(self) -> list[InstructionSweep]:
        return sorted(self.sweeps, key=lambda s: s.success_rate(), reverse=True)


def sweep_instruction(
    snippet: BranchSnippet,
    model: str,
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    cache: OutcomeCache | None = None,
) -> InstructionSweep:
    """Sweep every mask of every flip count ``k`` for one instruction.

    ``k_values`` restricts the sweep (useful for fast tests); ``None`` means
    the full ``0..16`` range the paper used. ``cache`` adds a persistent
    outcome store shared across models and runs (words the AND sweep already
    executed are free for XOR).
    """
    harness = SnippetHarness(snippet, zero_is_invalid=zero_is_invalid, disk_cache=cache)
    sweep = InstructionSweep(
        mnemonic=snippet.mnemonic,
        model=model,
        target_word=snippet.target_word,
        zero_is_invalid=zero_is_invalid,
    )
    ks = k_values if k_values is not None else tuple(range(INSTRUCTION_BITS + 1))
    for k in ks:
        counter: Counter = Counter()
        for mask in iter_masks(INSTRUCTION_BITS, k):
            corrupted = apply_flip(snippet.target_word, mask, INSTRUCTION_BITS, model)
            outcome = harness.run(corrupted)
            counter[outcome.category] += 1
        sweep.by_k[k] = counter
    return sweep


@dataclass(frozen=True)
class _SweepSpec:
    """Picklable work unit: one instruction's full sweep under one model."""

    mnemonic: str
    model: str
    zero_is_invalid: bool
    k_values: Optional[tuple[int, ...]]
    cache_root: Optional[str]


def _sweep_unit(spec: _SweepSpec) -> InstructionSweep:
    """Worker entry point: rebuild the snippet (and cache handle) in-process."""
    from repro.glitchsim.snippets import branch_snippet

    snippet = branch_snippet(spec.mnemonic[1:])
    cache = OutcomeCache(spec.cache_root) if spec.cache_root is not None else None
    sweep = sweep_instruction(
        snippet,
        spec.model,
        zero_is_invalid=spec.zero_is_invalid,
        k_values=spec.k_values,
        cache=cache,
    )
    if cache is not None:
        cache.flush()
    return sweep


def run_branch_campaign(
    model: str,
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    conditions: list[str] | None = None,
    workers: int = 1,
    cache: OutcomeCache | str | None = None,
    progress: ProgressReporter | None = None,
) -> CampaignResult:
    """Run the Figure 2 campaign for all (or selected) conditional branches.

    ``workers`` fans the per-instruction sweeps out over processes (one work
    unit per branch; each unit owns its own cache shard, so workers never
    contend on a file). Results are merged in instruction order, so
    ``workers=1`` and ``workers=N`` produce identical campaigns.
    """
    snippets = all_branch_snippets()
    if conditions is not None:
        wanted = {f"b{c}" if not c.startswith("b") else c for c in conditions}
        snippets = [s for s in snippets if s.mnemonic in wanted]
    cache = coerce_cache(cache)
    cache_root = str(cache.root) if cache is not None else None
    ks = tuple(k_values) if k_values is not None else None
    by_mnemonic = {snippet.mnemonic: snippet for snippet in snippets}
    specs = [
        _SweepSpec(snippet.mnemonic, model, zero_is_invalid, ks, cache_root)
        for snippet in snippets
    ]

    def serial(spec: _SweepSpec) -> InstructionSweep:
        # in-process: reuse the built snippets and the shared cache handle
        return sweep_instruction(
            by_mnemonic[spec.mnemonic], spec.model,
            zero_is_invalid=spec.zero_is_invalid, k_values=spec.k_values, cache=cache,
        )

    executor = ParallelExecutor(workers=workers, progress=progress)
    sweeps = executor.map(
        _sweep_unit,
        specs,
        serial_fn=serial,
        attempts_of=lambda sweep: sum(sweep.totals.values()),
        categories_of=lambda sweep: dict(sweep.totals),
    )
    if cache is not None:
        cache.flush()
    return CampaignResult(model=model, zero_is_invalid=zero_is_invalid, sweeps=sweeps)


__all__ = ["InstructionSweep", "CampaignResult", "sweep_instruction", "run_branch_campaign"]

"""Exhaustive bit-flip campaigns over instruction encodings (Section IV).

For an instruction of ``n`` bits the campaign enumerates every
:math:`\\binom{n}{k}` mask for every ``k``, applies it under a flip model
(AND / OR / XOR), executes the corrupted snippet, and tallies outcomes.

The executed outcome depends only on the *resulting* corrupted word, so the
campaign never needs to enumerate masks at all: the default
``tally="algebra"`` path (``repro.glitchsim.maskalgebra``) classifies only
the *unique reachable corrupted words* — at most 2^16 per (mnemonic,
panel), shared across all three flip models — and derives the per-``k``
mask tallies in closed form. ``tally="enumerate"`` keeps the original
65,536-iteration mask loop as the differential-testing oracle; the two
produce bit-identical ``by_k`` Counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.bits import apply_flip, iter_masks
from repro.exec import (
    FailedUnit,
    OutcomeCache,
    ParallelExecutor,
    ProgressReporter,
    coerce_cache,
    open_campaign_checkpoint,
)
from repro.exec.cache import CODE_CATEGORIES
from repro.glitchsim.harness import OUTCOME_CATEGORIES, SnippetHarness
from repro.glitchsim.maskalgebra import reachable_words, tally_from_word_codes
from repro.glitchsim.snippets import BranchSnippet, all_branch_snippets
from repro.obs import Observer, activate, coerce_observer, current

INSTRUCTION_BITS = 16

#: how per-k tallies are produced: closed-form algebra over unique words,
#: or the original full mask enumeration (the differential oracle)
TALLY_MODES = ("algebra", "enumerate")


@dataclass
class InstructionSweep:
    """Aggregated outcomes for one instruction under one flip model."""

    mnemonic: str
    model: str
    target_word: int
    zero_is_invalid: bool = False
    #: per flip-count k: Counter of outcome categories
    by_k: dict[int, Counter] = field(default_factory=dict)

    @property
    def totals(self) -> Counter:
        total: Counter = Counter()
        for counter in self.by_k.values():
            total.update(counter)
        return total

    def success_rate(self, k: int | None = None) -> float:
        """Fraction of masks classified *success* (overall, or for one ``k``)."""
        counter = self.totals if k is None else self.by_k.get(k, Counter())
        attempts = sum(counter.values())
        if attempts == 0:
            return 0.0
        return counter.get("success", 0) / attempts

    def category_fractions(self) -> dict[str, float]:
        """Overall fraction per outcome category (the Figure 2 histograms)."""
        totals = self.totals
        attempts = sum(totals.values())
        if attempts == 0:
            return {category: 0.0 for category in OUTCOME_CATEGORIES}
        return {category: totals.get(category, 0) / attempts for category in OUTCOME_CATEGORIES}


@dataclass
class CampaignResult:
    """One full campaign: every conditional branch under one flip model."""

    model: str
    zero_is_invalid: bool
    sweeps: list[InstructionSweep]
    #: specs quarantined after exhausting their retries (never aborts the run)
    failed_units: list[FailedUnit] = field(default_factory=list)

    def sweep_for(self, mnemonic: str) -> InstructionSweep:
        for sweep in self.sweeps:
            if sweep.mnemonic == mnemonic:
                return sweep
        raise KeyError(mnemonic)

    def ranked_by_success(self) -> list[InstructionSweep]:
        return sorted(self.sweeps, key=lambda s: s.success_rate(), reverse=True)


def sweep_instruction(
    snippet: BranchSnippet,
    model: str,
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    cache: OutcomeCache | None = None,
    engine: str = "snapshot",
    tally: str = "algebra",
) -> InstructionSweep:
    """Sweep every mask of every flip count ``k`` for one instruction.

    ``k_values`` restricts the sweep (useful for fast tests); ``None`` means
    the full ``0..16`` range the paper used. ``cache`` adds a persistent
    outcome store shared across models and runs (words the AND sweep already
    executed are free for XOR). ``engine`` picks the harness execution
    engine (``"snapshot"``/``"rebuild"``/``"vector"``); all tally
    identically.

    ``tally`` selects how the per-``k`` Counters are produced:

    - ``"algebra"`` (default) classifies only the unique reachable
      corrupted words (:func:`repro.glitchsim.maskalgebra.reachable_words`)
      in one batched :meth:`SnippetHarness.run_many` pass and derives each
      mask tally in closed form — bit-identical to enumeration, without
      the :math:`\\binom{16}{k}` Python loop. Emits the ambient counters
      ``algebra.words_emulated`` (fresh emulations this sweep) and
      ``algebra.masks_derived`` (masks accounted for arithmetically).
    - ``"enumerate"`` applies every mask and tallies outcomes one by one —
      the differential-testing oracle.
    """
    if tally not in TALLY_MODES:
        raise ValueError(f"unknown tally mode {tally!r}; expected one of {TALLY_MODES}")
    harness = SnippetHarness(
        snippet, zero_is_invalid=zero_is_invalid, disk_cache=cache, engine=engine
    )
    sweep = InstructionSweep(
        mnemonic=snippet.mnemonic,
        model=model,
        target_word=snippet.target_word,
        zero_is_invalid=zero_is_invalid,
    )
    ks = k_values if k_values is not None else tuple(range(INSTRUCTION_BITS + 1))
    if tally == "algebra":
        words = reachable_words(snippet.target_word, model, INSTRUCTION_BITS, ks)
        executed_before = harness.words_executed
        unique, codes = harness.run_many_codes(words)
        sweep.by_k = tally_from_word_codes(
            snippet.target_word, model, unique, codes,
            CODE_CATEGORIES, ks, INSTRUCTION_BITS,
        )
        obs = current()
        obs.count("algebra.words_emulated", harness.words_executed - executed_before)
        obs.count(
            "algebra.masks_derived",
            sum(sum(counter.values()) for counter in sweep.by_k.values()),
        )
        return sweep
    for k in ks:
        counter: Counter = Counter()
        for mask in iter_masks(INSTRUCTION_BITS, k):
            corrupted = apply_flip(snippet.target_word, mask, INSTRUCTION_BITS, model)
            outcome = harness.run(corrupted)
            counter[outcome.category] += 1
        sweep.by_k[k] = counter
    return sweep


@dataclass(frozen=True)
class _SweepSpec:
    """Picklable work unit: one instruction's full sweep under one model."""

    mnemonic: str
    model: str
    zero_is_invalid: bool
    k_values: Optional[tuple[int, ...]]
    cache_root: Optional[str]
    engine: str = "snapshot"
    tally: str = "algebra"


def _sweep_unit(spec: _SweepSpec) -> InstructionSweep:
    """Worker entry point: rebuild the snippet (and cache handle) in-process."""
    from repro.glitchsim.snippets import branch_snippet

    snippet = branch_snippet(spec.mnemonic[1:])
    cache = OutcomeCache(spec.cache_root) if spec.cache_root is not None else None
    try:
        return sweep_instruction(
            snippet,
            spec.model,
            zero_is_invalid=spec.zero_is_invalid,
            k_values=spec.k_values,
            cache=cache,
            engine=spec.engine,
            tally=spec.tally,
        )
    finally:
        # per-word outcomes already computed survive even if the sweep raised
        if cache is not None:
            cache.flush()
            # attribute this unit's disk-cache traffic to the ambient
            # (worker-local) observer; the envelope carries it back
            obs = current()
            obs.count("cache.hits", cache.hits)
            obs.count("cache.misses", cache.misses)
            obs.count("cache.memo_hits", cache.memo_hits)


def _encode_sweep(sweep: InstructionSweep) -> dict:
    """JSON-able checkpoint payload for one completed instruction sweep."""
    return {
        "mnemonic": sweep.mnemonic,
        "model": sweep.model,
        "target_word": sweep.target_word,
        "zero_is_invalid": sweep.zero_is_invalid,
        "by_k": {str(k): dict(counter) for k, counter in sweep.by_k.items()},
    }


def _decode_sweep(payload: dict) -> InstructionSweep:
    return InstructionSweep(
        mnemonic=payload["mnemonic"],
        model=payload["model"],
        target_word=payload["target_word"],
        zero_is_invalid=payload["zero_is_invalid"],
        by_k={int(k): Counter(counts) for k, counts in payload["by_k"].items()},
    )


def run_branch_campaign(
    model: str,
    zero_is_invalid: bool = False,
    k_values: tuple[int, ...] | None = None,
    conditions: list[str] | None = None,
    workers: int = 1,
    cache: OutcomeCache | str | None = None,
    progress: ProgressReporter | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: float | None = None,
    obs: Observer | None = None,
    engine: str = "snapshot",
    tally: str = "algebra",
    chunk_size: int | None = None,
) -> CampaignResult:
    """Run the Figure 2 campaign for all (or selected) conditional branches.

    ``workers`` fans the per-instruction sweeps out over processes (one work
    unit per branch; each unit owns its own cache shard, so workers never
    contend on a file). Results are merged in instruction order, so
    ``workers=1`` and ``workers=N`` produce identical campaigns.

    ``checkpoint_dir``/``resume`` persist each completed sweep to a JSONL
    checkpoint (keyed by mnemonic) and replay recorded sweeps on resume, so
    an interrupted campaign restarts only its missing branches and merges
    to tallies identical to an uninterrupted run. ``retries`` grants a
    failing sweep extra attempts (exponential backoff) before it is
    quarantined into ``CampaignResult.failed_units``; ``unit_timeout``
    bounds a unit's wall-clock seconds on the multiprocessing path.

    ``obs`` (a :class:`repro.obs.Observer`) traces the campaign span and
    tallies attempts, outcome categories, cache hits/misses, retries,
    and quarantines — identically for any worker count.

    ``engine`` selects the harness execution engine (``"snapshot"``
    replays one cached machine per branch, ``"rebuild"`` reconstructs it
    per word, ``"vector"`` runs whole batches lock-step on the NumPy
    backend). ``tally`` selects the tallying strategy (``"algebra"``
    derives mask counts from unique-word outcomes, ``"enumerate"`` walks
    every mask — see :func:`sweep_instruction`). Neither is part of the
    checkpoint fingerprint: tallies are bit-identical across engines and
    tally modes, so a resumed campaign may switch either freely.

    ``chunk_size`` is handed to the :class:`ParallelExecutor` (``None`` =
    auto: about four chunks per worker).
    """
    obs = coerce_observer(obs)
    snippets = all_branch_snippets()
    if conditions is not None:
        wanted = {f"b{c}" if not c.startswith("b") else c for c in conditions}
        snippets = [s for s in snippets if s.mnemonic in wanted]
    cache = coerce_cache(cache)
    cache_root = str(cache.root) if cache is not None else None
    ks = tuple(k_values) if k_values is not None else None
    by_mnemonic = {snippet.mnemonic: snippet for snippet in snippets}
    specs = [
        _SweepSpec(snippet.mnemonic, model, zero_is_invalid, ks, cache_root, engine, tally)
        for snippet in snippets
    ]

    checkpoint = None
    if checkpoint_dir is not None or resume:
        meta = {
            "campaign": "branch",
            "model": model,
            "zero_is_invalid": zero_is_invalid,
            "k_values": list(ks) if ks is not None else None,
            "conditions": sorted(by_mnemonic),
        }
        checkpoint = open_campaign_checkpoint(
            checkpoint_dir, f"branch-{model}", meta, resume=resume
        )

    def serial(spec: _SweepSpec) -> InstructionSweep:
        # in-process: reuse the built snippets and the shared cache handle;
        # activate the campaign observer so the ambient algebra counters
        # land on it exactly as the worker-envelope path reports them
        with activate(obs):
            return sweep_instruction(
                by_mnemonic[spec.mnemonic], spec.model,
                zero_is_invalid=spec.zero_is_invalid, k_values=spec.k_values, cache=cache,
                engine=spec.engine, tally=spec.tally,
            )

    # vector-engine workers memmap the persisted operand tables (when
    # present) before their first unit, so no worker re-decodes the
    # 65,536-row table — see ``repro warm-tables``
    initializer = initargs = None
    if engine == "vector":
        from repro.emu.vector import preload_operand_tables

        initializer = preload_operand_tables
        initargs = (cache_root, (zero_is_invalid,))
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs, initializer=initializer, initargs=initargs or (),
    )
    # serial units reuse the shared cache handle, so their hit/miss
    # traffic lands on the handle's counters rather than the ambient
    # worker observer — count the deltas here. (The parallel path never
    # touches the shared handle; workers report via their envelopes.)
    cache_hits0 = cache.hits if cache is not None else 0
    cache_misses0 = cache.misses if cache is not None else 0
    cache_memo0 = cache.memo_hits if cache is not None else 0
    try:
        with obs.trace(f"campaign.branch[{model}]", model=model,
                       zero_is_invalid=zero_is_invalid, units=len(specs)):
            sweeps = executor.map(
                _sweep_unit,
                specs,
                serial_fn=serial,
                attempts_of=lambda sweep: sum(sweep.totals.values()),
                categories_of=lambda sweep: dict(sweep.totals),
                checkpoint=checkpoint,
                key_of=lambda spec: spec.mnemonic,
                encode=_encode_sweep,
                decode=_decode_sweep,
            )
    finally:
        # SIGINT / worker crash must not discard dirty shards or the checkpoint
        if cache is not None:
            cache.flush()
            obs.count("cache.hits", cache.hits - cache_hits0)
            obs.count("cache.misses", cache.misses - cache_misses0)
            obs.count("cache.memo_hits", cache.memo_hits - cache_memo0)
        if checkpoint is not None:
            checkpoint.close()
    return CampaignResult(
        model=model,
        zero_is_invalid=zero_is_invalid,
        sweeps=[sweep for sweep in sweeps if sweep is not None],
        failed_units=list(executor.failed_units),
    )


__all__ = [
    "InstructionSweep",
    "CampaignResult",
    "TALLY_MODES",
    "sweep_instruction",
    "run_branch_campaign",
]

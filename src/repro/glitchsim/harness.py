"""Run a corrupted snippet and classify the outcome (paper's Figure 2 buckets).

Categories, matching Section IV verbatim:

- ``success`` — the instruction immediately following the conditional branch,
  which would otherwise not be executed, executed successfully (observed via
  the 0xdead marker register).
- ``bad_read`` — the system attempted to read (or write) unmapped memory.
- ``invalid_instruction`` — the emulator did not recognise the perturbed
  instruction.
- ``bad_fetch`` — an instruction was fetched from unmapped memory (e.g. the
  PC was modified).
- ``failed`` — any unrecognised error (including non-terminating runs).
- ``no_effect`` — the modification had no effect on the execution.

Three execution engines produce identical outcome categories:

- ``"snapshot"`` (default) builds the address space once, runs the
  flag-setup prefix up to (not including) the target instruction, takes a
  :meth:`Memory.snapshot`/:meth:`CPU.snapshot` pair, and replays each
  corrupted word by restoring the pair, journaling the corrupted halfword
  into the target slot, and resuming with the remaining step budget.  A
  shared per-harness decode cache memoises ``decode()`` by halfword value.
- ``"rebuild"`` reconstructs ``Memory``/``CPU`` from scratch per word —
  the original slow path, kept as the differential-testing oracle.
- ``"vector"`` executes whole :meth:`WordHarness.run_many` cache-miss
  batches lock-step on the NumPy backend (:mod:`repro.emu.vector`): one
  lane per corrupted word, sharing the snapshot engine's replay point and
  decode cache.  Single-word :meth:`WordHarness.run` calls and lanes
  the vector ISA subset can't model fall back to the snapshot replay, so
  ``"snapshot"`` doubles as both the fallback and the differential oracle
  for the vector engine.  Vector outcomes carry empty detail strings
  (like disk-cache hits); the documented contract is category identity.

The engine/cache/memo machinery is shared between two harnesses via the
:class:`WordHarness` base class: :class:`SnippetHarness` (this module)
runs the paper's marker-block snippets, and
:class:`repro.campaign.harness.SiteHarness` runs a branch site *in situ*
inside a whole firmware image.  A subclass supplies the replay point
(:meth:`WordHarness._snapshot_world`) and the classification rules; the
base class owns everything keyed by the corrupted word.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.bits import halfwords_to_bytes
from repro.emu import CPU, CPUSnapshot, Memory, MemorySnapshot
from repro.exec.cache import CATEGORIES as _CACHE_CATEGORIES
from repro.exec.cache import CATEGORY_CODES
from repro.isa.decoder import decode
from repro.errors import (
    AlignmentFault,
    BadFetch,
    BadRead,
    BadWrite,
    EmulationFault,
    InvalidInstruction,
)
from repro.glitchsim.snippets import (
    BranchSnippet,
    FLASH_BASE,
    NORMAL_MARKER,
    NORMAL_REGISTER,
    RAM_BASE,
    RAM_SIZE,
    SUCCESS_MARKER,
    SUCCESS_REGISTER,
)

OUTCOME_CATEGORIES = (
    "success",
    "bad_read",
    "invalid_instruction",
    "bad_fetch",
    "failed",
    "no_effect",
)

# The binary cache-shard format persists outcomes as 1-based indexes into
# this tuple; the cache layer owns the canonical copy so the shard codes
# stay stable even if this module is reorganised.
assert _CACHE_CATEGORIES == OUTCOME_CATEGORIES, (
    "repro.exec.cache.CATEGORIES drifted from OUTCOME_CATEGORIES"
)

_STEP_LIMIT = 64

ENGINES = ("snapshot", "rebuild", "vector")


@dataclass
class _SnapshotWorld:
    """The pre-built machine a :class:`WordHarness` replays against."""

    memory: Memory
    cpu: CPU
    memory_snapshot: MemorySnapshot
    cpu_snapshot: CPUSnapshot
    budget: int  # steps remaining out of _STEP_LIMIT after any setup prefix
    flash_data: bytearray  # flash backing store, for the per-replay slot poke
    flash_base: int
    ram_base: int
    slot_offset: int  # byte offset of the target halfword within flash
    target_address: int  # absolute address of the corrupted slot
    pristine_word: int  # the uncorrupted halfword at the target slot
    next_after_target: Optional[int]  # halfword at target+2 (for BL lookahead)
    # Addresses where a replay may stop early for classification.  For the
    # snippet harness these are the marker-block entry points (success =
    # fall-through, normal = taken); for the site harness, the branch's two
    # outgoing edges.  A stop only classifies when at least two budget
    # steps remain — otherwise execution resumes to keep the step
    # accounting bit-identical with the rebuild engine.
    marker_stops: frozenset
    success_address: Optional[int] = None  # snippet harness only
    normal_address: Optional[int] = None  # snippet harness only


@dataclass(frozen=True)
class Outcome:
    """The classified result of executing one corrupted word."""

    category: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.category not in OUTCOME_CATEGORIES:
            raise ValueError(f"unknown outcome category {self.category!r}")


# Interned instances for the common fixed-detail outcomes (Outcome compares
# by value, so interning is invisible to callers — it just skips ~65k
# dataclass constructions per sweep).
_OUTCOME_SUCCESS = Outcome("success")
_OUTCOME_NO_EFFECT = Outcome("no_effect")
_OUTCOME_LIMIT = Outcome("failed", f"did not halt within {_STEP_LIMIT} steps")
_OUTCOME_NO_MARKER = Outcome("failed", "halted without reaching either marker")

# Detail-free interned outcomes for vector-engine lanes and disk hits.
_OUTCOMES_BY_CATEGORY = {category: Outcome(category) for category in OUTCOME_CATEGORIES}

# Shard-code -> interned Outcome (index 0, "not classified", maps to None),
# so a whole code array converts to Outcome objects by plain indexing.
_OUTCOMES_BY_CODE = (None,) + tuple(
    _OUTCOMES_BY_CATEGORY[category]
    for category, _ in sorted(CATEGORY_CODES.items(), key=lambda item: item[1])
)


class WordHarness:
    """Shared memo/cache/engine machinery for corrupted-word classification.

    Results are memoised per corrupted word: the outcome is a pure function
    of the resulting machine word, which turns the :math:`2^{16}` masks per
    flip-count into at most :math:`2^{16}` distinct executions total.

    ``disk_cache`` (a :class:`repro.exec.OutcomeCache`) adds a persistent
    layer keyed by ``(panel, zero_is_invalid, corrupted_word)`` — the
    ``panel`` string is the subclass's shard name (the snippet mnemonic, or
    a per-site image key).  Only the outcome *category* is persisted, so a
    disk hit returns an :class:`Outcome` with an empty detail string.

    ``engine`` selects how cache misses execute: ``"snapshot"`` (default)
    replays against a cached machine snapshot, ``"rebuild"`` reconstructs
    the world per word, and ``"vector"`` runs whole :meth:`run_many`
    batches lock-step on the NumPy backend with per-lane fallback to the
    snapshot replay.  All three produce identical outcome categories by
    construction; if no snapshot replay point exists the harness silently
    falls back to ``"rebuild"``.

    ``vector_fallback_mnemonics`` forces lanes whose corrupted word decodes
    to one of the named mnemonics back onto the scalar snapshot engine —
    the escape hatch for (hypothetical) vector-handler gaps, and the knob
    the differential tests use to exercise the fallback path.

    Subclasses implement :meth:`_snapshot_world` (build the replay point),
    :meth:`_classify_replay` (classify a finished replay),
    :meth:`_execute_rebuild` (the from-scratch oracle), and
    :meth:`_vector_codes` (per-lane category codes for a vector batch).
    """

    def __init__(
        self,
        panel: str,
        zero_is_invalid: bool = False,
        disk_cache=None,
        engine: str = "snapshot",
        vector_fallback_mnemonics=(),
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.panel = panel
        self.zero_is_invalid = zero_is_invalid
        self.disk_cache = disk_cache
        self.engine = engine
        self.vector_fallback_mnemonics = frozenset(vector_fallback_mnemonics)
        # The word memo is a dense code array (mirroring the binary cache
        # shards), so batch resolution is one gather; ``_cache`` keeps only
        # the detailed Outcome objects that scalar executions produced
        # (codes are always a superset of its keys).
        self._codes = np.zeros(1 << 16, dtype=np.uint8)
        self._cache: dict[int, Outcome] = {}
        # Executions that actually ran the emulator (mem/disk hits excluded);
        # the mask-algebra path reads the delta for its words_emulated counter.
        self.words_executed = 0
        # Decode memo shared by every execution of this harness (pure by
        # value, so corrupted and pristine words coexist as distinct keys).
        self._decode_cache: dict = {}
        # None = not built yet; False = no replay point exists, use rebuild.
        self._world: Optional[_SnapshotWorld] = None
        self._world_unavailable = False
        self._vector = None  # lazily-built repro.emu.vector.VectorEngine

    def run(self, corrupted_word: int) -> Outcome:
        """Classify the execution with ``corrupted_word`` in the target slot."""
        corrupted_word &= 0xFFFF
        code = int(self._codes[corrupted_word])
        if code:
            if self.disk_cache is not None:
                self.disk_cache.account(memo_hits=1)
            cached = self._cache.get(corrupted_word)
            return cached if cached is not None else _OUTCOMES_BY_CODE[code]
        if self.disk_cache is not None:
            category = self.disk_cache.get(
                self.panel, self.zero_is_invalid, corrupted_word
            )
            if category is not None:
                self._codes[corrupted_word] = CATEGORY_CODES[category]
                return _OUTCOMES_BY_CATEGORY[category]
        outcome = self._execute(corrupted_word)
        self._cache[corrupted_word] = outcome
        self._codes[corrupted_word] = CATEGORY_CODES[outcome.category]
        if self.disk_cache is not None:
            self.disk_cache.put(
                self.panel, self.zero_is_invalid, corrupted_word,
                outcome.category,
            )
        return outcome

    def run_many_codes(self, words) -> tuple[np.ndarray, np.ndarray]:
        """Classify a batch of corrupted words as pure array operations.

        The hot-path core of :meth:`run_many`: deduplicates and sorts the
        words ascending (consecutive words share decode-cache and snapshot
        locality), resolves the in-memory memo with **one** gather from the
        dense code array, resolves the disk layer with one gather from the
        binary shard (:meth:`OutcomeCache.get_shard_codes`), executes only
        the remainder, and scatters the newly executed codes back with a
        single :meth:`OutcomeCache.put_shard_codes` merge. Disk
        hit/miss/memo totals are reported via :meth:`OutcomeCache.account`
        so campaign-level accounting matches the per-word :meth:`run` path
        exactly (words that alias after the 16-bit mask, and duplicates,
        count as memo hits — that is what a serial :meth:`run` loop would
        record).

        Returns ``(unique_words, codes)``: the sorted unique 16-bit words
        and their parallel nonzero category codes
        (:data:`repro.exec.cache.CATEGORY_CODES`). Freshly executed
        entries are flushed to the disk cache even when an execution
        raises partway through the batch, so a crash or a campaign
        ``unit_timeout`` kill never discards paid-for work.
        """
        if not isinstance(words, (np.ndarray, list)):
            words = list(words)
        arr = np.asarray(words, dtype=np.int64)
        total = int(arr.size)
        # dedup by boolean scatter over the fixed 2^16 word space — one
        # O(n) pass, cheaper than np.unique's hash table at this size
        seen = np.zeros(1 << 16, dtype=bool)
        seen[arr & 0xFFFF] = True
        unique = np.nonzero(seen)[0]
        codes = self._codes
        memo_resolved = int(np.count_nonzero(codes[unique]))
        pending = unique[codes[unique] == 0]
        if self.disk_cache is not None:
            disk_hits = 0
            if pending.size:
                shard = self.disk_cache.get_shard_codes(
                    self.panel, self.zero_is_invalid
                )
                found = shard[pending]
                hit = found != 0
                disk_hits = int(np.count_nonzero(hit))
                if disk_hits:
                    codes[pending[hit]] = found[hit]
                    pending = pending[~hit]
            self.disk_cache.account(
                hits=disk_hits,
                misses=int(pending.size),
                memo_hits=(total - int(unique.size)) + memo_resolved,
            )
        to_flush = pending
        try:
            if pending.size and self.engine == "vector":
                pending = self._execute_vector_batch(pending)
            for word in pending.tolist():
                outcome = self._execute(word)
                self._cache[word] = outcome
                codes[word] = CATEGORY_CODES[outcome.category]
        finally:
            if to_flush.size and self.disk_cache is not None:
                done = to_flush[codes[to_flush] != 0]
                if done.size:
                    self.disk_cache.put_shard_codes(
                        self.panel, self.zero_is_invalid, done, codes[done]
                    )
        return unique, codes[unique].copy()

    def run_many(self, words) -> dict[int, Outcome]:
        """Classify a batch of corrupted words with bulk cache traffic.

        Dict-shaped wrapper over :meth:`run_many_codes`. The result dict is
        keyed by the caller's original words verbatim (masking to 16 bits
        is an internal detail, as in :meth:`run`); detailed outcomes from
        scalar executions are preserved, everything else returns the
        interned detail-free instance for its category.
        """
        words = list(words)
        unique, codes = self.run_many_codes(words)
        cache = self._cache
        results = {
            word: cache.get(word) or _OUTCOMES_BY_CODE[code]
            for word, code in zip(unique.tolist(), codes.tolist())
        }
        if words == list(results):  # already unique, sorted, and 16-bit
            return results
        return {word: results[word & 0xFFFF] for word in words}

    # ------------------------------------------------------------------
    # engine orchestration (shared)
    # ------------------------------------------------------------------

    def _execute(self, corrupted_word: int) -> Outcome:
        # The vector engine only runs whole batches; single words (and
        # fallback lanes) execute on the scalar snapshot replay.
        self.words_executed += 1
        if self.engine != "rebuild":
            world = self._snapshot_world()
            if world is not None:
                return self._execute_replay(world, corrupted_word)
        return self._execute_rebuild(corrupted_word)

    def _vector_engine(self, world: _SnapshotWorld):
        """Build (once) the NumPy lock-step engine from the replay point."""
        if self._vector is None:
            from repro.emu.vector import VectorEngine

            # Prior scalar replays may have left a corrupted word poked into
            # the flash backing store and a dirty RAM journal — reset both
            # to the pristine replay-point snapshot before copying them out.
            if world.memory._journal:
                world.memory.restore(world.memory_snapshot)
            flash = bytearray(world.flash_data)
            pristine = world.pristine_word
            flash[world.slot_offset] = pristine & 0xFF
            flash[world.slot_offset + 1] = pristine >> 8
            ram_region = world.memory.region_at(world.ram_base)
            snap = world.cpu_snapshot
            self._vector = VectorEngine(
                flash_base=world.flash_base,
                flash_bytes=bytes(flash),
                target_address=world.target_address,
                ram_base=world.ram_base,
                ram_bytes=bytes(ram_region.data),
                init_regs=snap.regs,
                init_flags=snap.flags,
                budget=world.budget,
                zero_is_invalid=self.zero_is_invalid,
                marker_stops=sorted(world.marker_stops),
                decode_cache=self._decode_cache,
                fallback_mnemonics=self.vector_fallback_mnemonics,
            )
        return self._vector

    def _execute_vector_batch(self, pending: np.ndarray) -> np.ndarray:
        """Run a cache-miss batch lock-step; returns the scalar-fallback words.

        Lanes the vector engine classifies scatter straight into the dense
        code memo (one fancy-indexed assignment for the whole batch); lanes
        it punts on (``vector_fallback_mnemonics``) are returned for the
        caller's per-word scalar loop.
        """
        world = self._snapshot_world()
        if world is None:
            return pending  # no replay point — the scalar loop handles it
        engine = self._vector_engine(world)
        batch = engine.run(pending)
        lane_codes = self._vector_codes(batch, world)
        classified = lane_codes != 0
        resolved = int(np.count_nonzero(classified))
        if resolved:
            self._codes[pending[classified]] = lane_codes[classified]
        fallback = pending[~classified] if resolved != pending.size else pending[:0]
        self.words_executed += resolved
        from repro.obs import current

        obs = current()
        obs.count("vector.batches", 1)
        obs.count("vector.lanes", int(pending.size))
        obs.count("vector.fallbacks", int(fallback.size))
        return fallback

    def _execute_replay(self, world: _SnapshotWorld, corrupted_word: int) -> Outcome:
        # First-step pre-classification: the replayed machine fetches the
        # corrupted word first, so if its decode faults, the outcome is
        # ``invalid_instruction`` without touching any machine state.  The
        # decode uses exactly the inputs the fetch at the target would see
        # (the halfword at target+2 for a BL-prefix lookahead).
        cpu = world.cpu
        cache = cpu.decode_cache
        key = (
            corrupted_word
            if (corrupted_word >> 11) != 0b11110
            else (corrupted_word, world.next_after_target)
        )
        hit = cache.get(key)
        if hit is None:
            nxt = world.next_after_target if (corrupted_word >> 11) == 0b11110 else None
            try:
                cache[key] = decode(corrupted_word, nxt, zero_is_invalid=self.zero_is_invalid)
            except InvalidInstruction as exc:
                cache[key] = exc
                return Outcome("invalid_instruction", str(exc))
        elif isinstance(hit, InvalidInstruction):
            return Outcome("invalid_instruction", str(hit))
        # Inlined Memory.restore/CPU.reset_from (hot path: once per word).
        # Replays never map regions, so restore reduces to undoing the
        # journal — and most replays never store, leaving it empty.
        if world.memory._journal:
            world.memory.restore(world.memory_snapshot)
        snap = world.cpu_snapshot
        cpu.regs = list(snap.regs)
        cpu.flags = snap.flags
        cpu.halted = snap.halted
        cpu.instruction_count = snap.instruction_count
        # Poke the corrupted halfword straight into the flash backing store,
        # bypassing the journal: every replay overwrites this exact slot
        # before running, so restore never needs to undo it, and the CPU
        # cannot touch it otherwise (flash is read-only to stores).
        offset = world.slot_offset
        world.flash_data[offset] = corrupted_word & 0xFF
        world.flash_data[offset + 1] = corrupted_word >> 8
        return self._classify_replay(world, cpu)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------

    def _snapshot_world(self) -> Optional[_SnapshotWorld]:  # pragma: no cover
        raise NotImplementedError

    def _classify_replay(self, world: _SnapshotWorld, cpu: CPU) -> Outcome:  # pragma: no cover
        raise NotImplementedError

    def _execute_rebuild(self, corrupted_word: int) -> Outcome:  # pragma: no cover
        raise NotImplementedError

    def _vector_codes(self, batch, world: _SnapshotWorld) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class SnippetHarness(WordHarness):
    """Executes a snippet with its target halfword replaced by a corrupted word.

    The snippet's flag-setup prefix runs once up to (not including) the
    target instruction; the classification reads the 0xdead/0xaaaa marker
    registers the snippet's fall-through/taken blocks set.  See
    :class:`WordHarness` for the caching and engine contract.
    """

    def __init__(
        self,
        snippet: BranchSnippet,
        zero_is_invalid: bool = False,
        disk_cache=None,
        engine: str = "snapshot",
        vector_fallback_mnemonics=(),
    ):
        super().__init__(
            panel=snippet.mnemonic,
            zero_is_invalid=zero_is_invalid,
            disk_cache=disk_cache,
            engine=engine,
            vector_fallback_mnemonics=vector_fallback_mnemonics,
        )
        self.snippet = snippet
        self._halfwords = list(snippet.program.halfwords)
        self._flash_size = max(0x400, (len(snippet.program.code) + 0x3FF) & ~0x3FF)

    def _build_world(self, decode_cache: Optional[dict] = None) -> tuple[Memory, CPU]:
        memory = Memory()
        memory.map("flash", FLASH_BASE, self._flash_size, writable=False, executable=True)
        memory.map("ram", RAM_BASE, RAM_SIZE)
        cpu = CPU(memory, zero_is_invalid=self.zero_is_invalid)
        cpu.decode_cache = decode_cache
        cpu.pc = self.snippet.program.base
        cpu.sp = RAM_BASE + RAM_SIZE
        return memory, cpu

    def _snapshot_world(self) -> Optional[_SnapshotWorld]:
        """Build (once) the machine paused right before the target slot."""
        if self._world is not None:
            return self._world
        if self._world_unavailable:
            return None
        memory, cpu = self._build_world(decode_cache=self._decode_cache)
        memory.load(FLASH_BASE, halfwords_to_bytes(self._halfwords))
        try:
            prefix = cpu.run(_STEP_LIMIT, stop_addresses=(self.snippet.target_address,))
        except EmulationFault:
            prefix = None
        if prefix is None or prefix.reason != "stop_addr":
            # The pristine setup prefix never reached the target cleanly —
            # no valid replay point exists, so fall back to rebuilding.
            self._world_unavailable = True
            return None
        flash_region = memory.region_at(FLASH_BASE)
        success_address = self.snippet.target_address + 2
        normal_address = self.snippet.program.symbols.get("taken")
        stops = {success_address}
        if normal_address is not None:
            stops.add(normal_address)
        self._world = _SnapshotWorld(
            memory=memory,
            cpu=cpu,
            memory_snapshot=memory.snapshot(),
            cpu_snapshot=cpu.snapshot(),
            budget=_STEP_LIMIT - prefix.steps,
            flash_data=flash_region.data,
            flash_base=FLASH_BASE,
            ram_base=RAM_BASE,
            slot_offset=self.snippet.target_address - FLASH_BASE,
            target_address=self.snippet.target_address,
            pristine_word=self._halfwords[self.snippet.target_index],
            next_after_target=memory.try_fetch_u16(self.snippet.target_address + 2),
            marker_stops=frozenset(stops),
            success_address=success_address,
            normal_address=normal_address,
        )
        return self._world

    def _vector_codes(self, batch, world: _SnapshotWorld) -> np.ndarray:
        return batch.classify_branch(
            success_address=world.success_address,
            success_register=SUCCESS_REGISTER,
            success_marker=SUCCESS_MARKER,
            normal_register=NORMAL_REGISTER,
            normal_marker=NORMAL_MARKER,
        )

    def _classify_replay(self, world: _SnapshotWorld, cpu: CPU) -> Outcome:
        """Classify a replay, short-circuiting at the marker-block heads.

        Entering a marker block is deterministic (ldr-literal + bkpt), so
        stopping at the block head classifies without executing it —
        except with fewer than the block's two steps of budget left, where
        execution resumes to keep step accounting identical to the rebuild
        engine.
        """
        budget = world.budget
        try:
            result = cpu.run(budget, stop_addresses=world.marker_stops)
            if result.reason == "stop_addr":
                if budget - result.steps >= 2:
                    if (
                        result.stop_address == world.success_address
                        or cpu.regs[SUCCESS_REGISTER] == SUCCESS_MARKER
                    ):
                        return _OUTCOME_SUCCESS
                    return _OUTCOME_NO_EFFECT
                result = cpu.run(budget - result.steps)
        except InvalidInstruction as exc:
            return Outcome("invalid_instruction", str(exc))
        except BadFetch as exc:
            return Outcome("bad_fetch", str(exc))
        except (BadRead, BadWrite, AlignmentFault) as exc:
            return Outcome("bad_read", str(exc))
        except EmulationFault as exc:
            return Outcome("failed", str(exc))

        if result.reason != "halted":
            return _OUTCOME_LIMIT
        if cpu.regs[SUCCESS_REGISTER] == SUCCESS_MARKER:
            return _OUTCOME_SUCCESS
        if cpu.regs[NORMAL_REGISTER] == NORMAL_MARKER:
            return _OUTCOME_NO_EFFECT
        return _OUTCOME_NO_MARKER

    def _execute_rebuild(self, corrupted_word: int) -> Outcome:
        memory, cpu = self._build_world()
        halfwords = list(self._halfwords)
        halfwords[self.snippet.target_index] = corrupted_word
        memory.load(FLASH_BASE, halfwords_to_bytes(halfwords))
        return self._classify(cpu, _STEP_LIMIT)

    def _classify(self, cpu: CPU, budget: int) -> Outcome:
        try:
            result = cpu.run(budget)
        except InvalidInstruction as exc:
            return Outcome("invalid_instruction", str(exc))
        except BadFetch as exc:
            return Outcome("bad_fetch", str(exc))
        except (BadRead, BadWrite, AlignmentFault) as exc:
            return Outcome("bad_read", str(exc))
        except EmulationFault as exc:
            return Outcome("failed", str(exc))

        if result.reason != "halted":
            return _OUTCOME_LIMIT
        if cpu.regs[SUCCESS_REGISTER] == SUCCESS_MARKER:
            return _OUTCOME_SUCCESS
        if cpu.regs[NORMAL_REGISTER] == NORMAL_MARKER:
            return _OUTCOME_NO_EFFECT
        return _OUTCOME_NO_MARKER


@lru_cache(maxsize=64)
def _shared_harness(mnemonic: str, zero_is_invalid: bool) -> SnippetHarness:
    from repro.glitchsim.snippets import branch_snippet

    return SnippetHarness(branch_snippet(mnemonic[1:]), zero_is_invalid=zero_is_invalid)


def classify_branch_corruption(
    mnemonic: str, corrupted_word: int, zero_is_invalid: bool = False
) -> Outcome:
    """One-shot helper: classify ``corrupted_word`` in the ``mnemonic`` snippet."""
    return _shared_harness(mnemonic, zero_is_invalid).run(corrupted_word)


__all__ = [
    "Outcome",
    "WordHarness",
    "SnippetHarness",
    "OUTCOME_CATEGORIES",
    "ENGINES",
    "classify_branch_corruption",
]

"""Run a corrupted snippet and classify the outcome (paper's Figure 2 buckets).

Categories, matching Section IV verbatim:

- ``success`` — the instruction immediately following the conditional branch,
  which would otherwise not be executed, executed successfully (observed via
  the 0xdead marker register).
- ``bad_read`` — the system attempted to read (or write) unmapped memory.
- ``invalid_instruction`` — the emulator did not recognise the perturbed
  instruction.
- ``bad_fetch`` — an instruction was fetched from unmapped memory (e.g. the
  PC was modified).
- ``failed`` — any unrecognised error (including non-terminating runs).
- ``no_effect`` — the modification had no effect on the execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.emu import CPU, Memory
from repro.errors import (
    AlignmentFault,
    BadFetch,
    BadRead,
    BadWrite,
    EmulationFault,
    InvalidInstruction,
)
from repro.glitchsim.snippets import (
    BranchSnippet,
    FLASH_BASE,
    NORMAL_MARKER,
    NORMAL_REGISTER,
    RAM_BASE,
    RAM_SIZE,
    SUCCESS_MARKER,
    SUCCESS_REGISTER,
)

OUTCOME_CATEGORIES = (
    "success",
    "bad_read",
    "invalid_instruction",
    "bad_fetch",
    "failed",
    "no_effect",
)

_STEP_LIMIT = 64


@dataclass(frozen=True)
class Outcome:
    """The classified result of executing one corrupted snippet."""

    category: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.category not in OUTCOME_CATEGORIES:
            raise ValueError(f"unknown outcome category {self.category!r}")


class SnippetHarness:
    """Executes a snippet with its target halfword replaced by a corrupted word.

    Results are memoised per corrupted word: the outcome is a pure function
    of the resulting machine word, which turns the :math:`2^{16}` masks per
    flip-count into at most :math:`2^{16}` distinct executions total.

    ``disk_cache`` (a :class:`repro.exec.OutcomeCache`) adds a persistent
    layer keyed by ``(mnemonic, zero_is_invalid, corrupted_word)``: repeated
    panels and re-runs skip emulation entirely. Only the outcome *category*
    is persisted, so a disk hit returns an :class:`Outcome` with an empty
    detail string.
    """

    def __init__(
        self,
        snippet: BranchSnippet,
        zero_is_invalid: bool = False,
        disk_cache=None,
    ):
        self.snippet = snippet
        self.zero_is_invalid = zero_is_invalid
        self.disk_cache = disk_cache
        self._cache: dict[int, Outcome] = {}
        self._halfwords = list(snippet.program.halfwords)
        self._flash_size = max(0x400, (len(snippet.program.code) + 0x3FF) & ~0x3FF)

    def run(self, corrupted_word: int) -> Outcome:
        """Classify the execution with ``corrupted_word`` in the target slot."""
        corrupted_word &= 0xFFFF
        cached = self._cache.get(corrupted_word)
        if cached is not None:
            return cached
        if self.disk_cache is not None:
            category = self.disk_cache.get(
                self.snippet.mnemonic, self.zero_is_invalid, corrupted_word
            )
            if category is not None:
                outcome = Outcome(category)
                self._cache[corrupted_word] = outcome
                return outcome
        outcome = self._execute(corrupted_word)
        self._cache[corrupted_word] = outcome
        if self.disk_cache is not None:
            self.disk_cache.put(
                self.snippet.mnemonic, self.zero_is_invalid, corrupted_word,
                outcome.category,
            )
        return outcome

    # ------------------------------------------------------------------

    def _execute(self, corrupted_word: int) -> Outcome:
        memory = Memory()
        memory.map("flash", FLASH_BASE, self._flash_size, writable=False, executable=True)
        memory.map("ram", RAM_BASE, RAM_SIZE)

        halfwords = list(self._halfwords)
        halfwords[self.snippet.target_index] = corrupted_word
        from repro.bits import halfwords_to_bytes

        memory.load(FLASH_BASE, halfwords_to_bytes(halfwords))

        cpu = CPU(memory, zero_is_invalid=self.zero_is_invalid)
        cpu.pc = self.snippet.program.base
        cpu.sp = RAM_BASE + RAM_SIZE

        try:
            result = cpu.run(_STEP_LIMIT)
        except InvalidInstruction as exc:
            return Outcome("invalid_instruction", str(exc))
        except BadFetch as exc:
            return Outcome("bad_fetch", str(exc))
        except (BadRead, BadWrite, AlignmentFault) as exc:
            return Outcome("bad_read", str(exc))
        except EmulationFault as exc:
            return Outcome("failed", str(exc))

        if result.reason != "halted":
            return Outcome("failed", f"did not halt within {_STEP_LIMIT} steps")
        if cpu.regs[SUCCESS_REGISTER] == SUCCESS_MARKER:
            return Outcome("success")
        if cpu.regs[NORMAL_REGISTER] == NORMAL_MARKER:
            return Outcome("no_effect")
        return Outcome("failed", "halted without reaching either marker")


@lru_cache(maxsize=64)
def _shared_harness(mnemonic: str, zero_is_invalid: bool) -> SnippetHarness:
    from repro.glitchsim.snippets import branch_snippet

    return SnippetHarness(branch_snippet(mnemonic[1:]), zero_is_invalid=zero_is_invalid)


def classify_branch_corruption(
    mnemonic: str, corrupted_word: int, zero_is_invalid: bool = False
) -> Outcome:
    """One-shot helper: classify ``corrupted_word`` in the ``mnemonic`` snippet."""
    return _shared_harness(mnemonic, zero_is_invalid).run(corrupted_word)


__all__ = ["Outcome", "SnippetHarness", "OUTCOME_CATEGORIES", "classify_branch_corruption"]

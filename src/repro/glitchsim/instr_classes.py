"""Instruction-class fault-tolerance sweeps — the emulation analogue of §V-A.

The real-world experiments found that instruction classes differ sharply in
glitchability: loads/stores are susceptible, register-register ALU ops
"appear to be exceptionally difficult to glitch". This module asks the
*encoding-level* version of that question: for a representative instruction
of each class, what fraction of unidirectional bit-flip corruptions

- silently neutralise it (it no longer performs its job but execution
  continues — the dangerous "skip" outcome), versus
- derail execution (fault/invalid — detectable by a watchdog)?

This extends the Figure 2 framework beyond conditional branches, using the
same snippet + classification machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bits import apply_flip, iter_masks
from repro.emu import CPU, Memory
from repro.errors import (
    AlignmentFault,
    BadFetch,
    BadRead,
    BadWrite,
    EmulationFault,
    InvalidInstruction,
)
from repro.isa import assemble

FLASH_BASE = 0x0800_0000
RAM_BASE = 0x2000_0000
RAM_SIZE = 0x1000

#: (class name, snippet source, judge) — ``target:`` marks the instruction
#: under test; ``judge(cpu)`` decides whether its architectural job was done.
_CLASS_CASES: dict[str, tuple[str, str]] = {
    # load: r2 must receive the value stored at [r1]
    "load": (
        """
        ldr r1, =0x20000800
        ldr r0, =0xCAFE0042
        str r0, [r1]
        movs r2, #0
    target:
        ldr r2, [r1]
        bkpt #0
        """,
        "load",
    ),
    # store: memory at [r1] must receive r0
    "store": (
        """
        ldr r1, =0x20000800
        ldr r0, =0xCAFE0042
    target:
        str r0, [r1]
        bkpt #0
        """,
        "store",
    ),
    # compare: the flags must reflect r0 == r1 (checked via a dependent branch)
    "compare": (
        """
        movs r0, #5
        movs r1, #5
        movs r3, #0
    target:
        cmp r0, r1
        beq good
        bkpt #0
    good:
        movs r3, #1
        bkpt #0
        """,
        "compare",
    ),
    # alu: r2 must become r0 + r1
    "alu": (
        """
        movs r0, #21
        movs r1, #21
        movs r2, #0
    target:
        adds r2, r0, r1
        bkpt #0
        """,
        "alu",
    ),
    # move: r2 must receive r0
    "move": (
        """
        movs r0, #0x5A
        movs r2, #0
    target:
        adds r2, r0, #0
        bkpt #0
        """,
        "move",
    ),
}


@dataclass
class ClassSweepResult:
    """Per-class tallies over all masks of all flip counts."""

    instruction_class: str
    model: str
    attempts: int = 0
    #: the job silently didn't happen but execution completed normally
    silent_neutralizations: int = 0
    #: execution derailed (fault / invalid / no clean halt)
    derailments: int = 0
    #: the corrupted encoding still did its job
    still_effective: int = 0

    @property
    def silent_rate(self) -> float:
        return self.silent_neutralizations / self.attempts if self.attempts else 0.0

    @property
    def derail_rate(self) -> float:
        return self.derailments / self.attempts if self.attempts else 0.0


def _judge(kind: str, cpu: CPU) -> bool:
    """Did the target instruction do its architectural job?"""
    if kind == "load":
        return cpu.regs[2] == 0xCAFE0042
    if kind == "store":
        try:
            return cpu.memory.read_u32(0x2000_0800) == 0xCAFE0042
        except EmulationFault:
            return False
    if kind == "compare":
        return cpu.regs[3] == 1
    if kind == "alu":
        return cpu.regs[2] == 42
    if kind == "move":
        return cpu.regs[2] == 0x5A
    raise ValueError(kind)  # pragma: no cover


def sweep_instruction_class(
    instruction_class: str,
    model: str = "and",
    k_values: tuple[int, ...] | None = None,
    engine: str = "snapshot",
    tally: str = "algebra",
) -> ClassSweepResult:
    """Sweep every bit-flip mask over one class's target instruction.

    ``tally="algebra"`` (default) classifies each unique reachable
    corrupted word once and derives the mask counts in closed form via
    :mod:`repro.glitchsim.maskalgebra`; ``tally="enumerate"`` walks every
    mask (the differential oracle). Both produce identical tallies.

    ``engine="vector"`` classifies the unique words of an algebra sweep as
    one lock-step batch on the NumPy backend (:mod:`repro.emu.vector`);
    the scalar engines (and any lane the vector path can't model) use the
    per-word world rebuild. Tallies are identical for any engine.
    """
    try:
        source, judge_kind = _CLASS_CASES[instruction_class]
    except KeyError:
        raise ValueError(
            f"unknown instruction class {instruction_class!r}; "
            f"expected one of {sorted(_CLASS_CASES)}"
        ) from None
    if tally not in ("algebra", "enumerate"):
        raise ValueError(f"unknown tally mode {tally!r}; expected 'algebra' or 'enumerate'")
    from repro.glitchsim.harness import ENGINES

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    program = assemble(source, base=FLASH_BASE)
    target_index = (program.symbols["target"] - FLASH_BASE) // 2
    halfwords = program.halfwords
    original = halfwords[target_index]

    result = ClassSweepResult(instruction_class=instruction_class, model=model)
    ks = k_values if k_values is not None else tuple(range(17))
    if tally == "algebra":
        from repro.glitchsim.maskalgebra import reachable_words, tally_from_word_outcomes

        words = list(reachable_words(original, model, 16, ks))
        word_buckets = None
        if engine == "vector":
            word_buckets = _classify_vector(halfwords, target_index, words, judge_kind)
        if word_buckets is None:
            word_buckets = {
                word: _classify(halfwords, target_index, word, judge_kind)
                for word in words
            }
        for counter in tally_from_word_outcomes(original, model, word_buckets, ks, 16).values():
            for bucket, count in counter.items():
                result.attempts += count
                if bucket == "effective":
                    result.still_effective += count
                elif bucket == "silent":
                    result.silent_neutralizations += count
                else:
                    result.derailments += count
        return result
    cache: dict[int, str] = {}
    for k in ks:
        for mask in iter_masks(16, k):
            corrupted = apply_flip(original, mask, 16, model)
            bucket = cache.get(corrupted)
            if bucket is None:
                bucket = _classify(halfwords, target_index, corrupted, judge_kind)
                cache[corrupted] = bucket
            result.attempts += 1
            if bucket == "effective":
                result.still_effective += 1
            elif bucket == "silent":
                result.silent_neutralizations += 1
            else:
                result.derailments += 1
    return result


def _classify_vector(
    halfwords: list[int], index: int, words: list[int], judge_kind: str
) -> dict[int, str] | None:
    """Batch-classify every unique corrupted word as one lock-step run.

    The setup prefix never fetches or reads the target slot, so it runs
    once on the scalar CPU up to the target instruction; the NumPy engine
    resumes every lane from that state with the leftover step budget —
    exactly the continuous ``cpu.run(64)`` the rebuild path performs.
    Returns ``None`` when no valid replay point exists (prefix faulted or
    never reached the target), which sends the sweep down the scalar path.
    """
    from repro.bits import halfwords_to_bytes
    from repro.emu.vector import ST_FALLBACK, ST_HALTED, VectorEngine

    target_address = FLASH_BASE + 2 * index
    memory = Memory()
    memory.map("flash", FLASH_BASE, 0x400, writable=False, executable=True)
    memory.map("ram", RAM_BASE, RAM_SIZE)
    memory.load(FLASH_BASE, halfwords_to_bytes(halfwords))
    cpu = CPU(memory)
    cpu.pc = FLASH_BASE
    cpu.sp = RAM_BASE + RAM_SIZE
    try:
        prefix = cpu.run(64, stop_addresses=(target_address,))
    except EmulationFault:
        return None
    if prefix.reason != "stop_addr":
        return None
    engine = VectorEngine(
        flash_base=FLASH_BASE,
        flash_bytes=bytes(memory.region_at(FLASH_BASE).data),
        target_address=target_address,
        ram_base=RAM_BASE,
        ram_bytes=bytes(memory.region_at(RAM_BASE).data),
        init_regs=cpu.regs,
        init_flags=cpu.flags,
        budget=64 - prefix.steps,
        zero_is_invalid=False,
    )
    batch = engine.run(words)
    if judge_kind == "store":
        job_done = batch.read_ram_u32(0x2000_0800) == 0xCAFE0042
    elif judge_kind == "compare":
        job_done = batch.regs[3] == 1
    else:
        expected = {"load": 0xCAFE0042, "alu": 42, "move": 0x5A}[judge_kind]
        job_done = batch.regs[2] == expected
    buckets: dict[int, str] = {}
    status = batch.status
    for i, word in enumerate(words):
        if status[i] == ST_FALLBACK:
            buckets[word] = _classify(halfwords, index, word, judge_kind)
        elif status[i] == ST_HALTED:
            buckets[word] = "effective" if job_done[i] else "silent"
        else:
            buckets[word] = "derailed"
    return buckets


def _classify(halfwords: list[int], index: int, corrupted: int, judge_kind: str) -> str:
    words = list(halfwords)
    words[index] = corrupted
    from repro.bits import halfwords_to_bytes

    memory = Memory()
    memory.map("flash", FLASH_BASE, 0x400, writable=False, executable=True)
    memory.map("ram", RAM_BASE, RAM_SIZE)
    memory.load(FLASH_BASE, halfwords_to_bytes(words))
    cpu = CPU(memory)
    cpu.pc = FLASH_BASE
    cpu.sp = RAM_BASE + RAM_SIZE
    try:
        outcome = cpu.run(64)
    except (InvalidInstruction, BadFetch, BadRead, BadWrite, AlignmentFault, EmulationFault):
        return "derailed"
    if outcome.reason != "halted":
        return "derailed"
    return "effective" if _judge(judge_kind, cpu) else "silent"


def sweep_all_classes(model: str = "and") -> dict[str, ClassSweepResult]:
    """Sweep every class; returns {class: result}."""
    return {name: sweep_instruction_class(name, model) for name in _CLASS_CASES}


__all__ = ["ClassSweepResult", "sweep_instruction_class", "sweep_all_classes"]

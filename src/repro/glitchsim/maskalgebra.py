"""Mask-space algebra: closed-form tallying of bit-flip mask sweeps.

The Section IV campaign applies every :math:`\\binom{16}{k}` mask to a
target halfword under a flip model and tallies the outcome of executing
the corrupted word. The executed outcome is a pure function of the
*corrupted word*, so enumerating 2^16 masks per model is redundant work:
it suffices to classify each *unique reachable word* once and derive the
per-``k`` mask tallies arithmetically.

The algebra, per flip model (``width`` = 16, ``p`` = popcount(target)):

- **AND (1→0)** — ``word = target & ~mask``: only the mask bits that
  overlap the target's ``p`` set bits matter, so exactly the ``2^p``
  *submasks of target* are reachable. A word whose cleared-bit set has
  size ``j = p - popcount(word)`` is produced by every mask that contains
  those ``j`` bits plus any ``k - j`` of the ``16 - p`` zero bits:
  ``C(16 - p, k - j)`` masks of popcount ``k``.
- **OR (0→1)** — symmetric on the ``16 - p`` zero bits: the reachable
  words are ``target | s`` for submasks ``s`` of ``~target``, and a word
  with ``j = popcount(word) - p`` added bits is hit by ``C(p, k - j)``
  masks of popcount ``k``.
- **XOR (bidirectional)** — a bijection: every 16-bit word is reachable,
  each for exactly one flip count ``k = hamming_distance(word, target)``,
  with multiplicity 1.

Because the popcount-``k`` mask population partitions over the reachable
words, the tallies satisfy the Vandermonde identity
``sum_j C(p, j) * C(16 - p, k - j) == C(16, k)`` — which
:func:`tally_from_word_outcomes` uses as a completeness check: a word
table missing a reachable word raises instead of silently under-counting.

The word-outcome table is model-independent (it is keyed by the corrupted
word alone), so one table serves all three models for a given
``(mnemonic, zero_is_invalid)`` panel — XOR's full 2^16 word set subsumes
AND's submasks and OR's supersets, which is what lets the Figure 2
campaign share a single word sweep across its panels.
"""

from __future__ import annotations

from collections import Counter
from math import comb
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.bits import FLIP_MODELS, hamming_distance, iter_masks, mask, popcount

MODELS = tuple(sorted(FLIP_MODELS))  # ("and", "or", "xor")


def _check_model(model: str) -> None:
    if model not in FLIP_MODELS:
        raise ValueError(
            f"unknown flip model {model!r}; expected one of {MODELS}"
        )


def _submasks(value: int) -> Iterable[int]:
    """Every submask of ``value`` (including 0 and ``value`` itself)."""
    sub = value
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & value


def _allowed_j(
    k_values: Iterable[int], fixed_bits: int, free_bits: int
) -> set[int]:
    """Cleared/added-bit counts ``j`` reachable by some requested ``k``.

    ``fixed_bits`` is the pool the ``j`` determined bits come from (the
    target's set bits under AND, its zero bits under OR); ``free_bits`` is
    the complementary pool a mask may touch without changing the word.
    """
    allowed: set[int] = set()
    for k in k_values:
        low = max(0, k - free_bits)
        high = min(fixed_bits, k)
        allowed.update(range(low, high + 1))
    return allowed


def reachable_words(
    word: int,
    model: str,
    width: int = 16,
    k_values: Optional[Iterable[int]] = None,
) -> list[int]:
    """All corrupted words reachable from ``word`` under ``model``, sorted.

    ``k_values`` restricts the sweep to the given flip counts: only words
    with a non-zero :func:`multiplicity` for at least one requested ``k``
    are returned (``None`` means the full ``0..width`` range). The result
    is sorted ascending — the order :meth:`SnippetHarness.run_many`
    prefers for snapshot locality.
    """
    _check_model(model)
    word &= mask(width)
    full = k_values is None
    ks = tuple(range(width + 1)) if full else tuple(k_values)
    p = popcount(word)
    if model == "and":
        allowed = _allowed_j(ks, p, width - p)
        return sorted(
            sub for sub in _submasks(word) if p - popcount(sub) in allowed
        )
    if model == "or":
        zeros = ~word & mask(width)
        allowed = _allowed_j(ks, width - p, p)
        return sorted(
            word | sub for sub in _submasks(zeros) if popcount(sub) in allowed
        )
    # xor: distance-k shells; the full range is simply every word
    if full or set(range(width + 1)).issubset(ks):
        return list(range(1 << width))
    words: list[int] = []
    for k in sorted({k for k in ks if 0 <= k <= width}):
        words.extend(word ^ m for m in iter_masks(width, k))
    return sorted(words)


def multiplicity(word: int, target: int, model: str, k: int, width: int = 16) -> int:
    """How many popcount-``k`` masks map ``target`` onto ``word``.

    Zero when ``word`` is unreachable under ``model`` or no mask of the
    given flip count produces it. Summed over :func:`reachable_words`,
    the multiplicities of any ``k`` total exactly ``C(width, k)`` — every
    mask lands on exactly one word.
    """
    _check_model(model)
    word &= mask(width)
    target &= mask(width)
    if k < 0 or k > width:
        return 0
    if model == "xor":
        return 1 if hamming_distance(word, target) == k else 0
    p = popcount(target)
    if model == "and":
        if word & ~target:  # sets a bit the target never had
            return 0
        j = p - popcount(word)
        free = width - p
    else:  # or
        if target & ~word:  # clears a bit the target had
            return 0
        j = popcount(word) - p
        free = p
    if j > k or k - j > free:
        return 0
    return comb(free, k - j)


def tally_from_word_codes(
    target: int,
    model: str,
    words: np.ndarray,
    codes: np.ndarray,
    categories: tuple,
    k_values: Optional[Iterable[int]] = None,
    width: int = 16,
) -> dict[int, Counter]:
    """Derive per-``k`` mask tallies from parallel word/category-code arrays.

    The fully vectorized core of :func:`tally_from_word_outcomes`, shaped
    for the harness's :meth:`WordHarness.run_many_codes` output: ``words``
    must be **unique** ``width``-bit words (duplicates would double-count
    masks) with a parallel array of small nonzero integer ``codes``
    indexing into ``categories`` (index 0 is reserved/unused — pass
    :data:`repro.exec.cache.CODE_CATEGORIES` for harness codes). Extra
    words beyond the model's reachable set are ignored, so one table
    serves AND, OR, and XOR alike.

    The whole reduction is two array passes: a ``bincount`` groups the
    valid words into a ``G[j, code]`` count matrix (``j`` = determined-bit
    count), and one integer matmul ``W @ G`` — ``W[i, j]`` the binomial
    weight ``C(free, k_i - j)`` (an identity row-selector under XOR) —
    yields every requested ``k``'s tally at once. The Vandermonde
    completeness identity ``sum_j C(p, j) C(width-p, k-j) == C(width, k)``
    is checked on the matmul row sums: a missing reachable word raises
    instead of silently under-counting.

    Returns ``{k: Counter(category -> mask count)}``, bit-identical to
    enumerating every mask and tallying outcomes one by one.
    """
    _check_model(model)
    target &= mask(width)
    ks = tuple(range(width + 1)) if k_values is None else tuple(k_values)
    p = popcount(target)
    free = {"and": width - p, "or": p, "xor": 0}[model]

    words = np.asarray(words, dtype=np.uint64)
    codes = np.asarray(codes, dtype=np.int64)
    ncat = len(categories)
    if words.size:
        if model == "and":
            valid = (words & np.uint64(~target & mask(width))) == 0
            j = p - np.bitwise_count(words).astype(np.int64)
        elif model == "or":
            valid = (np.uint64(target) & ~words) == 0
            j = np.bitwise_count(words).astype(np.int64) - p
        else:  # xor: j is the Hamming distance and the multiplicity is 1
            valid = np.ones(words.size, dtype=bool)
            j = np.bitwise_count(
                (words & np.uint64(mask(width))) ^ np.uint64(target)
            ).astype(np.int64)
        G = np.bincount(
            j[valid] * ncat + codes[valid], minlength=(width + 1) * ncat
        ).reshape(width + 1, ncat)
    else:
        G = np.zeros((width + 1, ncat), dtype=np.int64)

    # W[i, j] = number of popcount-k_i masks producing a word in group j
    W = np.zeros((len(ks), width + 1), dtype=np.int64)
    for i, k in enumerate(ks):
        if model == "xor":
            if 0 <= k <= width:
                W[i, k] = 1
        else:
            for j_value in range(max(0, k - free), min(width, k) + 1):
                W[i, j_value] = comb(free, k - j_value)
    M = W @ G

    totals = M.sum(axis=1)
    by_k: dict[int, Counter] = {}
    for i, k in enumerate(ks):
        expected = comb(width, k) if 0 <= k <= width else 0
        if int(totals[i]) != expected:
            raise ValueError(
                f"incomplete word-outcome table for {model!r} k={k}: "
                f"tallied {int(totals[i])} masks, expected {expected} "
                f"(a reachable word is missing from the table)"
            )
        counter = Counter()
        row = M[i]
        for code in np.nonzero(row)[0].tolist():
            counter[categories[code]] = int(row[code])
        by_k[k] = counter
    return by_k


def tally_from_word_outcomes(
    target: int,
    model: str,
    word_outcomes: Mapping[int, str],
    k_values: Optional[Iterable[int]] = None,
    width: int = 16,
) -> dict[int, Counter]:
    """Derive per-``k`` mask tallies from a word → category table.

    ``word_outcomes`` must cover every word :func:`reachable_words` lists
    for the requested ``k_values``; extra words (e.g. a full 2^16 table
    shared across models) are ignored, so one table serves AND, OR, and
    XOR alike. Returns ``{k: Counter(category -> mask count)}`` —
    bit-identical to enumerating every mask and tallying outcomes one by
    one. Raises ``ValueError`` when a reachable word is missing (a
    partial table would silently under-count otherwise).

    Dict-shaped wrapper: interns the categories into code arrays and
    delegates the reduction to :func:`tally_from_word_codes`.
    """
    n = len(word_outcomes)
    if n:
        words = np.fromiter(word_outcomes.keys(), dtype=np.uint64, count=n)
        code_of: dict[str, int] = {}
        codes = np.fromiter(
            (code_of.setdefault(c, len(code_of) + 1) for c in word_outcomes.values()),
            dtype=np.int64,
            count=n,
        )
        categories = (None, *code_of)
    else:
        words = np.zeros(0, dtype=np.uint64)
        codes = np.zeros(0, dtype=np.int64)
        categories = (None,)
    return tally_from_word_codes(
        target, model, words, codes, categories, k_values, width
    )


__all__ = [
    "MODELS",
    "reachable_words",
    "multiplicity",
    "tally_from_word_codes",
    "tally_from_word_outcomes",
]

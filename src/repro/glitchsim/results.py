"""Figure 2 data extraction and rendering (ASCII + CSV).

The paper's Figure 2 plots, per conditional branch instruction:

- the glitch *success rate* as a function of the number of flipped bits
  (one line per ``k``, the "# of 1s in Bitmask" colour scale), and
- a stacked histogram of the outcome categories across all masks.

We emit the same data as machine-readable rows plus an ASCII rendering so
the benchmark harness can print paper-comparable output without plotting
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.glitchsim.campaign import CampaignResult, InstructionSweep
from repro.glitchsim.harness import OUTCOME_CATEGORIES

_CATEGORY_LABELS = {
    "success": "Success",
    "bad_read": "Bad Read",
    "invalid_instruction": "Invalid Instruction",
    "bad_fetch": "Bad Fetch",
    "failed": "Failed",
    "no_effect": "No Effect",
}


@dataclass
class FigureData:
    """All series needed to regenerate one Figure 2 panel."""

    title: str
    model: str
    zero_is_invalid: bool
    instructions: list[str] = field(default_factory=list)
    #: (instruction, k) → success rate in [0, 1]
    success_by_k: dict[tuple[str, int], float] = field(default_factory=dict)
    #: instruction → {category: fraction}
    histogram: dict[str, dict[str, float]] = field(default_factory=dict)
    #: instruction → overall success rate
    overall_success: dict[str, float] = field(default_factory=dict)


def figure2(result: CampaignResult, title: str = "") -> FigureData:
    """Convert a campaign result into Figure 2 panel data (sorted by success)."""
    ranked = result.ranked_by_success()
    data = FigureData(
        title=title or f"Figure 2 ({result.model.upper()} model)",
        model=result.model,
        zero_is_invalid=result.zero_is_invalid,
    )
    for sweep in ranked:
        name = sweep.mnemonic.upper()
        data.instructions.append(name)
        data.overall_success[name] = sweep.success_rate()
        data.histogram[name] = sweep.category_fractions()
        for k, counter in sorted(sweep.by_k.items()):
            attempts = sum(counter.values())
            rate = counter.get("success", 0) / attempts if attempts else 0.0
            data.success_by_k[(name, k)] = rate
    return data


def to_csv(data: FigureData) -> str:
    """Emit the success-rate series and histograms as CSV text."""
    lines = ["instruction,k,success_rate"]
    for (name, k), rate in sorted(data.success_by_k.items()):
        lines.append(f"{name},{k},{rate:.6f}")
    lines.append("")
    lines.append("instruction," + ",".join(OUTCOME_CATEGORIES))
    for name in data.instructions:
        fractions = data.histogram[name]
        lines.append(name + "," + ",".join(f"{fractions[c]:.6f}" for c in OUTCOME_CATEGORIES))
    return "\n".join(lines)


def render_figure_ascii(data: FigureData, width: int = 40) -> str:
    """ASCII rendering: success-rate bars plus the outcome histogram table."""
    lines = [data.title, "=" * len(data.title), ""]
    lines.append("Overall success rate per instruction (all masks, all k):")
    for name in data.instructions:
        rate = data.overall_success[name]
        bar = "#" * round(rate * width)
        lines.append(f"  {name:<5} {rate * 100:6.2f}% |{bar}")
    lines.append("")
    header = f"  {'instr':<6}" + "".join(f"{_CATEGORY_LABELS[c]:>21}" for c in OUTCOME_CATEGORIES)
    lines.append("Outcome histogram (% of all masks):")
    lines.append(header)
    for name in data.instructions:
        fractions = data.histogram[name]
        row = f"  {name:<6}" + "".join(f"{fractions[c] * 100:>20.2f}%" for c in OUTCOME_CATEGORIES)
        lines.append(row)
    return "\n".join(lines)


def summarize_mean_success(data: FigureData) -> float:
    """Mean overall success rate across instructions (paper: ≈60% AND, ≈30% OR)."""
    if not data.instructions:
        return 0.0
    return sum(data.overall_success.values()) / len(data.instructions)


__all__ = ["FigureData", "figure2", "to_csv", "render_figure_ascii", "summarize_mean_success"]

"""Per-instruction test snippets for the emulation campaign.

Following Section IV: "All of our test cases are manually written for the
instruction in question such that a successful glitch (i.e., the targeted
instruction was skipped) will place the value 0xdead in a known register,
and a normal execution will place the value 0xaaaa in a separate known
register."

Each snippet sets up the NZCV flags so the targeted conditional branch
*would* be taken, then branches over the "skipped" marker code:

.. code-block:: asm

       <flag setup>
       b<cc> taken       ; ← the glitched halfword
       ldr r2, =0xdead   ; only reachable if the branch was "skipped"
       bkpt #0
   taken:
       ldr r3, =0xaaaa   ; the normal path
       bkpt #0
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import AssembledProgram, assemble
from repro.isa.conditions import CONDITION_NAMES

SUCCESS_MARKER = 0xDEAD
NORMAL_MARKER = 0xAAAA
SUCCESS_REGISTER = 2
NORMAL_REGISTER = 3

FLASH_BASE = 0x0800_0000
RAM_BASE = 0x2000_0000
RAM_SIZE = 0x2000

#: Flag-setup sequences per condition, chosen so the condition holds.
_FLAG_SETUPS: dict[str, str] = {
    "eq": "movs r0, #1\n    cmp r0, #1",
    "ne": "movs r0, #1\n    cmp r0, #0",
    "cs": "movs r0, #1\n    cmp r0, #0",
    "cc": "movs r0, #0\n    cmp r0, #1",
    "mi": "movs r0, #0\n    cmp r0, #1",
    "pl": "movs r0, #1\n    cmp r0, #0",
    "vs": "movs r0, #1\n    lsls r0, r0, #31\n    subs r0, r0, #1\n    adds r0, r0, #1",
    "vc": "movs r0, #1\n    cmp r0, #0",
    "hi": "movs r0, #1\n    cmp r0, #0",
    "ls": "movs r0, #0\n    cmp r0, #0",
    "ge": "movs r0, #1\n    cmp r0, #0",
    "lt": "movs r0, #0\n    cmp r0, #1",
    "gt": "movs r0, #1\n    cmp r0, #0",
    "le": "movs r0, #0\n    cmp r0, #1",
}


@dataclass(frozen=True)
class BranchSnippet:
    """An assembled snippet plus the location of the instruction under test."""

    mnemonic: str
    program: AssembledProgram
    target_address: int
    target_word: int

    @property
    def target_index(self) -> int:
        """Halfword index of the targeted instruction within the code."""
        return (self.target_address - self.program.base) // 2


def branch_snippet(condition: str) -> BranchSnippet:
    """Build the snippet isolating the conditional branch ``b<condition>``."""
    if condition not in _FLAG_SETUPS:
        raise ValueError(f"unknown condition {condition!r}")
    source = f"""
    {_FLAG_SETUPS[condition]}
target:
    b{condition} taken
    ldr r2, ={SUCCESS_MARKER:#x}
    bkpt #0
taken:
    ldr r3, ={NORMAL_MARKER:#x}
    bkpt #0
"""
    program = assemble(source, base=FLASH_BASE)
    target_address = program.symbols["target"]
    index = (target_address - program.base) // 2
    target_word = program.halfwords[index]
    return BranchSnippet(
        mnemonic=f"b{condition}",
        program=program,
        target_address=target_address,
        target_word=target_word,
    )


def all_branch_snippets() -> list[BranchSnippet]:
    """Snippets for all 14 conditional branches, in condition-number order."""
    return [branch_snippet(name) for name in CONDITION_NAMES]


__all__ = [
    "BranchSnippet",
    "branch_snippet",
    "all_branch_snippets",
    "SUCCESS_MARKER",
    "NORMAL_MARKER",
    "SUCCESS_REGISTER",
    "NORMAL_REGISTER",
    "FLASH_BASE",
    "RAM_BASE",
    "RAM_SIZE",
]

"""Section V substrate: a clock-glitchable, cycle-accurate MCU simulator.

This package replaces the paper's physical bench — a ChipWhisperer Lite
driving the clock of an STM32F071 (48 MHz Cortex-M0, 3-stage pipeline) —
with a simulated equivalent:

- :mod:`repro.hw.clock` — glitch parameters (trigger offset, width, offset
  into the clock cycle; Figure 1) and the scan grids.
- :mod:`repro.hw.faults` — the fault-physics model mapping (width, offset,
  pipeline state) to corruption effects, deterministic per parameter point.
- :mod:`repro.hw.em` — the EMFI (precise instruction replacement) and
  skip/replay fault models from the related work.
- :mod:`repro.hw.models` — the pluggable fault-model registry
  (``FAULT_MODELS``) and named ``CalibrationProfile`` bench calibrations.
- :mod:`repro.hw.pipeline` — 3-stage fetch/decode/execute pipeline with
  Cortex-M0 cycle timings, built over :mod:`repro.emu`.
- :mod:`repro.hw.mcu` — the board: flash, SRAM, GPIO trigger, seed flash
  page, cycle counter.
- :mod:`repro.hw.glitcher` — the ChipWhisperer-style controller: arm a
  glitch, run the firmware, classify the outcome, read post-mortem state.
- :mod:`repro.hw.scan` — full parameter scans (Tables I, II, III, VI).
- :mod:`repro.hw.search` — the Section V-B optimal-parameter search.
"""

from repro.hw.clock import GlitchParams, WIDTH_RANGE, OFFSET_RANGE, iter_width_offset_grid
from repro.hw.faults import EFFECT_KINDS, FaultEffect, FaultModel, PipelineView
from repro.hw.em import EMFaultModel, SkipReplayModel
from repro.hw.models import (
    CalibrationProfile,
    FAULT_MODELS,
    PROFILES,
    model_label,
    register_fault_model,
    register_profile,
    resolve_fault_model,
    resolve_model_axis,
)
from repro.hw.mcu import Board, FLASH_BASE, SRAM_BASE, GPIO_BASE
from repro.hw.pipeline import PipelinedCPU
from repro.hw.glitcher import AttemptResult, ClockGlitcher
from repro.hw.scan import (
    SingleGlitchScan,
    MultiGlitchScan,
    LongGlitchScan,
    run_single_glitch_scan,
    run_multi_glitch_scan,
    run_long_glitch_scan,
)
from repro.hw.search import ParameterSearch, SearchResult
from repro.hw.voltage import VoltageFaultModel, VoltageGlitchParams, VoltageGlitcher

__all__ = [
    "GlitchParams",
    "WIDTH_RANGE",
    "OFFSET_RANGE",
    "iter_width_offset_grid",
    "EFFECT_KINDS",
    "FaultEffect",
    "FaultModel",
    "PipelineView",
    "EMFaultModel",
    "SkipReplayModel",
    "CalibrationProfile",
    "FAULT_MODELS",
    "PROFILES",
    "model_label",
    "register_fault_model",
    "register_profile",
    "resolve_fault_model",
    "resolve_model_axis",
    "Board",
    "FLASH_BASE",
    "SRAM_BASE",
    "GPIO_BASE",
    "PipelinedCPU",
    "AttemptResult",
    "ClockGlitcher",
    "SingleGlitchScan",
    "MultiGlitchScan",
    "LongGlitchScan",
    "run_single_glitch_scan",
    "run_multi_glitch_scan",
    "run_long_glitch_scan",
    "ParameterSearch",
    "SearchResult",
    "VoltageFaultModel",
    "VoltageGlitchParams",
    "VoltageGlitcher",
]

"""Clock-glitch parameters (Figure 1) and the scan grids used in Section V.

A clock glitch is tuned by three parameters:

- ``ext_offset`` — the clock cycle, counted from the trigger, at which the
  glitch lands (the paper's "offset from the trigger");
- ``offset`` — where inside the clock cycle the extra edge is inserted,
  as a percentage of the cycle in ``[-49, 49]``;
- ``width`` — the width of the injected pulse, same percentage range.

The paper scans the full ``[-49%, 49%] × [-49%, 49%]`` grid — 99 × 99 =
9,801 attempts per clock cycle — which is the exact population every table
reports over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.errors import GlitchConfigError

#: Integer percentage grid, matching the ChipWhisperer's resolution.
WIDTH_RANGE = range(-49, 50)
OFFSET_RANGE = range(-49, 50)

GRID_POINTS = len(WIDTH_RANGE) * len(OFFSET_RANGE)  # 9,801


@dataclass(frozen=True)
class GlitchParams:
    """One fully-specified clock glitch."""

    ext_offset: int
    width: int
    offset: int
    #: number of contiguous clock cycles glitched (1 = single; >1 = long glitch)
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.ext_offset < 0:
            raise GlitchConfigError(f"ext_offset must be non-negative, got {self.ext_offset}")
        if self.width not in WIDTH_RANGE:
            raise GlitchConfigError(f"width {self.width} outside [-49, 49]")
        if self.offset not in OFFSET_RANGE:
            raise GlitchConfigError(f"offset {self.offset} outside [-49, 49]")
        if self.repeat < 1:
            raise GlitchConfigError(f"repeat must be at least 1, got {self.repeat}")

    def with_ext_offset(self, ext_offset: int) -> "GlitchParams":
        return replace(self, ext_offset=ext_offset)

    def glitched_cycles(self) -> range:
        """Cycle offsets (relative to the trigger) hit by this glitch."""
        return range(self.ext_offset, self.ext_offset + self.repeat)


def iter_width_offset_grid(
    ext_offset: int, repeat: int = 1
) -> Iterator[GlitchParams]:
    """Yield the full 9,801-point (width, offset) grid for one cycle offset."""
    for width in WIDTH_RANGE:
        for offset in OFFSET_RANGE:
            yield GlitchParams(ext_offset=ext_offset, width=width, offset=offset, repeat=repeat)


def normalized(value: int) -> float:
    """Map the integer percentage [-49, 49] onto [-1, 1]."""
    return value / 49.0


__all__ = [
    "GlitchParams",
    "WIDTH_RANGE",
    "OFFSET_RANGE",
    "GRID_POINTS",
    "iter_width_offset_grid",
    "normalized",
]

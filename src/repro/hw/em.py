"""Electromagnetic fault injection, and the skip/replay abstractions.

Moro et al. (PAPERS.md) characterize EMFI against a 32-bit MCU very
differently from the timing-violation picture behind clock and voltage
glitching: the pulse couples into the flash/prefetch path, so "the fault
model is a precise instruction replacement" — the fetched or latched
encoding is corrupted with a *narrow*, *bidirectional* bit flip while the
execute stage is barely touched.  :class:`EMFaultModel` re-weights the
shared phenomenology machinery accordingly:

- realization lands overwhelmingly on the fetch bus / decode latch;
- flips are XOR-dominant (set and clear both occur, unlike the 1→0
  bias of clock glitches);
- masks stay 1-2 bits wide even for long pulses — an EM pulse corrupts
  one encoding precisely rather than starving the bus for many cycles.

:class:`SkipReplayModel` is the higher-level abstraction both Moro et al.
and Lu use when reasoning about countermeasures: a faulted instruction
either does not execute at all (*skip*, modeled as a NOP replacement) or
the previous instruction executes again in its place (*replay*, the
prefetch buffer serving stale content).  It realizes every bite as a
single deterministic ``skip``/``replay`` effect, which
:mod:`repro.hw.pipeline` applies at instruction completion.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GlitchConfigError
from repro.hw.clock import GlitchParams
from repro.hw.faults import FaultEffect, FaultModel, PipelineView


class EMFaultModel(FaultModel):
    """Moro-et-al.-style EMFI: precise instruction replacement in the front end."""

    def __init__(self, seed: int = 0xE1EC_7120, **kwargs):
        defaults = dict(
            fault_amplitude=0.90,
            crash_amplitude=0.30,   # pulses rarely brown the core out
            width_center=12.0,      # pulse-power knob on the shared grid
            width_sigma=11.0,
            offset_center=8.0,
            offset_sigma=12.0,
            follow_up_attenuation=0.30,  # coil recharge hurts rapid pairs
        )
        defaults.update(kwargs)
        super().__init__(seed=seed, **defaults)

    def _pick_kind(
        self, params: GlitchParams, rel_cycle: int, view: PipelineView, occurrence: int
    ) -> Optional[str]:
        weights: list[tuple[str, float]] = []
        if view.has_fetch:
            weights.append(("fetch", 0.78))
        if view.has_decode:
            weights.append(("decode", 0.16))
        # the execute stage is nearly immune — tiny residual couplings only
        if view.executing_class == "load":
            weights.append(("load_data", 0.03))
        elif view.executing_class == "compare":
            weights.append(("cmp_transient", 0.04))
        elif view.executing_class == "store":
            weights.append(("store_data", 0.03))
        elif view.executing_class == "branch":
            weights.append(("branch_decision", 0.02))
        elif view.executing_class == "alu":
            weights.append(("writeback", 0.01))
        names = tuple(name for name, _ in weights)
        probabilities = tuple(weight for _, weight in weights)
        return self._pick("kind", names, probabilities, params, rel_cycle, occurrence)

    def _pick_mode(self, params: GlitchParams, rel_cycle: int, occurrence: int) -> str:
        # bidirectional: EM pulses set and clear bits alike
        return self._pick(
            "mode", ("xor", "and", "or"), (0.56, 0.22, 0.22), params, rel_cycle, occurrence
        )

    def _mask(self, params: GlitchParams, rel_cycle: int, occurrence: int, bits: int) -> int:
        # precise replacement: 1-2 flipped bits, independent of pulse length
        count_roll = self._uniform("bits", params.width, params.offset, rel_cycle, occurrence)
        count = 1 if count_roll < 0.75 else 2
        mask = 0
        for index in range(count):
            position = int(
                self._uniform("pos", params.width, params.offset, rel_cycle, occurrence, index)
                * bits
            ) % bits
            mask |= 1 << position
        return mask


class SkipReplayModel(FaultModel):
    """Deterministic instruction-skip / instruction-replay fault abstraction.

    Every bite realizes as exactly one effect — ``skip`` (the executing
    instruction never commits) or ``replay`` (the previously retired
    instruction executes again in its place) — with no mask randomness,
    so the same (seed, params, cycle) always yields the same corruption.
    """

    EFFECTS = ("skip", "replay")

    def __init__(self, effect: str = "skip", seed: int = 0x5EED_517E, **kwargs):
        if effect not in self.EFFECTS:
            raise GlitchConfigError(
                f"SkipReplayModel effect must be one of {self.EFFECTS}, got {effect!r}"
            )
        defaults = dict(
            fault_amplitude=0.90,
            crash_amplitude=0.25,
            follow_up_attenuation=0.60,
        )
        defaults.update(kwargs)
        super().__init__(seed=seed, **defaults)
        self.effect = effect

    def effect_at(
        self,
        params: GlitchParams,
        rel_cycle: int,
        view: PipelineView,
        occurrence: int,
        window_index: int = 0,
        absolute_cycle: Optional[int] = None,
    ) -> Optional[FaultEffect]:
        decision = self.occurrence_decision(params, rel_cycle)
        if decision is None:
            return None
        if decision == "crash":
            return FaultEffect(kind="reset", rel_cycle=rel_cycle)
        if window_index > 0:
            follow = self._uniform(
                "follow", params.width, params.offset, rel_cycle, window_index, occurrence
            )
            if follow >= self.follow_up_attenuation:
                return None
        return FaultEffect(kind=self.effect, rel_cycle=rel_cycle)


__all__ = ["EMFaultModel", "SkipReplayModel"]

"""The clock-glitch fault-physics model.

No software model can *be* the physics of a clock glitch; what it can do is
reproduce the phenomenology the paper (and the fault-model literature it
cites: Balasch+'11, Moro+'13, Korak & Hoefler '14, Timmers+'16) reports:

1. Only a band of (width, offset) combinations produces faults; points
   around the band tend to crash/reset the chip; most of the grid does
   nothing. (§II-B "tuning", §V-A scan results: 0.3-0.7% success over the
   9,801-point grid.)
2. Bit corruption is predominantly unidirectional 1→0 for clock/voltage
   glitches (§IV).
3. Faults land in pipeline stages: instruction-fetch/decode corruption is
   the dominant "skip" mechanism; loads are the most data-corruptible
   ("load and store instructions appear to be more susceptible"); pure
   register-register ALU ops are "exceptionally difficult to glitch" (§V-A).
4. *Whether* a parameter point faults is deterministic per point — that is
   what makes the paper's tuning phase converge to 100% repeatability
   (§V-B) — while *which bits* flip varies between occurrences, which is
   why back-to-back multi-glitches succeed far less often than single
   glitches (§V-C).

The model is fully deterministic given its ``seed``: occurrence decisions
hash (seed, width, offset, relative cycle); realizations additionally hash
an occurrence counter.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import Optional

from repro.hw.clock import GlitchParams

#: Stage/kind of a realized corruption.
EFFECT_KINDS = (
    "fetch",       # corrupt the halfword on the fetch bus
    "decode",      # corrupt the halfword sitting in the decode latch
    "load_data",   # corrupt the data returned by a load (persistent)
    "cmp_transient",  # corrupt a compare's view of its operand (transient:
                      # the register file keeps the true value — post-mortem
                      # reads show the *correct* value, Table I's "0" rows)
    "store_data",  # corrupt the data written by a store
    "writeback",   # corrupt an ALU result being written back
    "branch_decision",  # flip a conditional branch's taken/not-taken decision
    "skip",        # squash the executing instruction (issues but never commits)
    "replay",      # re-execute the previously retired instruction instead
    "reset",       # the glitch crashed the core (brown-out / lockup)
)

_LOAD_SUBSTITUTES = ("zero", "bus_residue", "sp_leak", "pattern", "mask", "wrong_reg")


@dataclass(frozen=True)
class FaultEffect:
    """One realized corruption at one clock cycle."""

    kind: str
    rel_cycle: int
    mask: int = 0
    mode: str = "and"  # and | or | xor
    substitute: Optional[str] = None  # load_data only

    def cache_key(self) -> tuple:
        return (self.kind, self.rel_cycle, self.mask, self.mode, self.substitute)


@dataclass(frozen=True)
class PipelineView:
    """What the fault model can see of the pipeline at the glitched cycle."""

    executing_class: str  # "load" | "store" | "branch" | "alu" | "none"
    has_fetch: bool = True
    has_decode: bool = True


class FaultModel:
    """Deterministic (width, offset, cycle) → corruption mapping."""

    def __init__(
        self,
        seed: int = 0x600D5EED,
        fault_amplitude: float = 0.95,
        crash_amplitude: float = 0.40,
        width_center: float = 20.0,
        width_sigma: float = 9.0,
        offset_center: float = -10.0,
        offset_sigma: float = 13.0,
        follow_up_attenuation: float = 0.45,
    ):
        self.seed = seed
        self.fault_amplitude = fault_amplitude
        self.crash_amplitude = crash_amplitude
        self.width_center = width_center
        self.width_sigma = width_sigma
        self.offset_center = offset_center
        self.offset_sigma = offset_sigma
        #: chance that a glitch in a *follow-up* trigger window bites at all —
        #: "there are numerous physical limitations to generating multiple
        #: glitches in rapid succession" (§V-C)
        self.follow_up_attenuation = follow_up_attenuation

    def begin_run(self) -> None:
        """Reset per-run state before an attempt starts.

        The clock model is stateless, so this is a no-op; stateful models
        (the voltage model's recharge capacitor) override it so that any
        driver — glitcher, scan, or direct use — starts each run clean.
        """

    # ------------------------------------------------------------------
    # susceptibility field
    # ------------------------------------------------------------------

    def fault_probability(self, width: int, offset: int) -> float:
        """Probability that (width, offset) lands in the fault-inducing band."""
        return self.fault_amplitude * self._gaussian(width, offset, 1.0)

    def crash_probability(self, width: int, offset: int) -> float:
        """Probability of a crash/reset: a wider halo around the sweet band."""
        halo = self.crash_amplitude * self._gaussian(width, offset, 2.2)
        # extreme widths brown the core out regardless of offset
        extreme = 0.35 if abs(width) >= 47 else 0.0
        return min(0.95, halo + extreme)

    def _gaussian(self, width: int, offset: int, spread: float) -> float:
        dw = (width - self.width_center) / (self.width_sigma * spread)
        do = (offset - self.offset_center) / (self.offset_sigma * spread)
        return math.exp(-(dw * dw + do * do))

    # ------------------------------------------------------------------
    # occurrence + realization
    # ------------------------------------------------------------------

    def effect_at(
        self,
        params: GlitchParams,
        rel_cycle: int,
        view: PipelineView,
        occurrence: int,
        window_index: int = 0,
        absolute_cycle: Optional[int] = None,
    ) -> Optional[FaultEffect]:
        """Decide whether the glitch at ``rel_cycle`` corrupts anything, and how.

        ``absolute_cycle`` (the board clock at the glitched cycle) is unused
        by the clock model but consumed by subclasses with time-dependent
        state (the voltage model's capacitor recharge).

        ``occurrence`` counts realized glitch events within the current run;
        it perturbs the realization (mask bits, substitution) but not the
        fault/crash decision, which stays parameter-deterministic.
        ``window_index`` is 0 for the first trigger window, 1+ for follow-up
        glitches fired in rapid succession, which bite less reliably.
        """
        decision = self.occurrence_decision(params, rel_cycle)
        if decision is None:
            return None
        if decision == "crash":
            return FaultEffect(kind="reset", rel_cycle=rel_cycle)
        if window_index > 0:
            follow = self._uniform(
                "follow", params.width, params.offset, rel_cycle, window_index, occurrence
            )
            if follow >= self.follow_up_attenuation:
                return None
        kind = self._pick_kind(params, rel_cycle, view, occurrence)
        if kind is None:
            # Nothing corruptible is visible at this cycle (a stalled
            # pipeline view with no latches and an unmatched executing
            # class): the glitch fires into dead air.
            return None
        if kind == "load_data":
            # "zero" models a failed load writing 0 (§V-D's long-glitch
            # hypothesis); "wrong_reg" models §V-A's observation that "the
            # LDR instruction was corrupted to load the [value] into the
            # wrong register"; the rest reproduce the Table I residue
            # families (bus/SP mixes, stuck-line patterns, plain flips).
            if params.repeat >= 4:
                # A glitch sustained across the load's address and data
                # cycles starves the bus: "glitching so many load
                # instructions could cause the various load instructions to
                # fail, which would write 0 into the register" (§V-D).
                weights = (0.80, 0.04, 0.02, 0.05, 0.05, 0.04)
            else:
                weights = (0.14, 0.15, 0.08, 0.19, 0.24, 0.20)
            substitute = self._pick(
                "subst", _LOAD_SUBSTITUTES, weights, params, rel_cycle, occurrence,
            )
            mask = self._mask(params, rel_cycle, occurrence, bits=32)
            return FaultEffect(
                kind=kind, rel_cycle=rel_cycle, mask=mask,
                mode=self._pick_mode(params, rel_cycle, occurrence), substitute=substitute,
            )
        if kind in ("fetch", "decode"):
            mask = self._mask(params, rel_cycle, occurrence, bits=16)
            return FaultEffect(
                kind=kind, rel_cycle=rel_cycle, mask=mask,
                mode=self._pick_mode(params, rel_cycle, occurrence),
            )
        if kind in ("store_data", "writeback", "cmp_transient"):
            mask = self._mask(params, rel_cycle, occurrence, bits=32)
            return FaultEffect(
                kind=kind, rel_cycle=rel_cycle, mask=mask,
                mode=self._pick_mode(params, rel_cycle, occurrence),
            )
        return FaultEffect(kind=kind, rel_cycle=rel_cycle)

    def occurrence_decision(self, params: GlitchParams, rel_cycle: int) -> Optional[str]:
        """Parameter-deterministic decision: ``"fault"``, ``"crash"``, or ``None``.

        Crashing is a property of the *parameter point* (a too-aggressive
        glitch browns the core out every time, at the first glitched
        cycle), while fault occurrence is additionally per-cycle — the
        vulnerable latch window of each cycle's logic differs.
        """
        crash_roll = self._uniform("crashpt", params.width, params.offset)
        if crash_roll < self.crash_probability(params.width, params.offset):
            return "crash"
        # Fault occurrence is strongly correlated within a parameter point:
        # the same timing margin is violated every cycle, so a point either
        # faults on most glitched cycles or on none — per-cycle variation is
        # secondary. (This is what makes long glitches "irrecoverable" in
        # the sweet band rather than conveniently sparse.)
        point_roll = self._uniform("occurpt", params.width, params.offset)
        cycle_roll = self._uniform("occur", params.width, params.offset, rel_cycle)
        blended = 0.75 * point_roll + 0.25 * cycle_roll
        if blended < self.fault_probability(params.width, params.offset):
            return "fault"
        return None

    # ------------------------------------------------------------------

    def _pick_kind(
        self, params: GlitchParams, rel_cycle: int, view: PipelineView, occurrence: int
    ) -> Optional[str]:
        weights: list[tuple[str, float]] = []
        if view.has_fetch:
            weights.append(("fetch", 0.45))
        if view.has_decode:
            weights.append(("decode", 0.18))
        if view.executing_class == "load":
            weights.append(("load_data", 0.15))
        elif view.executing_class == "compare":
            # corrupt the comparator's operand path: the flags come out
            # wrong but the register file is untouched, so a redundant
            # recheck (GlitchResistor) sees the true value
            weights.append(("cmp_transient", 0.70))
        elif view.executing_class == "store":
            weights.append(("store_data", 0.30))
        elif view.executing_class == "branch":
            weights.append(("branch_decision", 0.18))
        elif view.executing_class == "alu":
            # "instructions which simply manipulate registers appear to be
            # exceptionally difficult to glitch" (§V-A)
            weights.append(("writeback", 0.04))
        names = tuple(name for name, _ in weights)
        probabilities = tuple(weight for _, weight in weights)
        return self._pick("kind", names, probabilities, params, rel_cycle, occurrence)

    def _pick_mode(self, params: GlitchParams, rel_cycle: int, occurrence: int) -> str:
        # unidirectional 1→0 dominates clock glitching (§IV)
        return self._pick(
            "mode", ("and", "or", "xor"), (0.72, 0.14, 0.14), params, rel_cycle, occurrence
        )

    def _mask(self, params: GlitchParams, rel_cycle: int, occurrence: int, bits: int) -> int:
        count_roll = self._uniform("bits", params.width, params.offset, rel_cycle, occurrence)
        if bits == 16 and params.repeat >= 4:
            # Sustained clock starvation mangles many bits of the fetched
            # halfword, which is why long glitches usually cause
            # "irrecoverable corruption" rather than a clean skip (§V-D).
            count = 2 + int(count_roll * 5)
        elif count_roll < 0.55:
            count = 1
        elif count_roll < 0.80:
            count = 2
        elif count_roll < 0.93:
            count = 3
        else:
            count = 4
        mask = 0
        for index in range(count):
            position = int(
                self._uniform("pos", params.width, params.offset, rel_cycle, occurrence, index)
                * bits
            ) % bits
            mask |= 1 << position
        return mask

    def _pick(
        self,
        label: str,
        names: tuple[str, ...],
        weights: tuple[float, ...],
        params: GlitchParams,
        rel_cycle: int,
        occurrence: int,
    ) -> Optional[str]:
        if not names:
            return None
        total = sum(weights)
        roll = self._uniform(label, params.width, params.offset, rel_cycle, occurrence) * total
        cumulative = 0.0
        for name, weight in zip(names, weights):
            cumulative += weight
            if roll < cumulative:
                return name
        return names[-1]

    def _uniform(self, label: str, *keys: int) -> float:
        payload = label.encode() + struct.pack(f"<q{len(keys)}q", self.seed, *keys)
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little") / float(1 << 64)


__all__ = ["FaultEffect", "FaultModel", "PipelineView", "EFFECT_KINDS"]

"""The ChipWhisperer-style clock-glitch controller.

Drives one :class:`~repro.hw.mcu.Board` through glitched runs:

1. reset the board (power-cycle semantics — the seed flash page persists);
2. run until the firmware raises the GPIO trigger pin;
3. starting one cycle after the trigger (the paper's "perfect trigger...
   exactly 1 clock cycle before the targeted instruction"), apply the armed
   :class:`~repro.hw.clock.GlitchParams` for ``repeat`` contiguous cycles;
4. keep running until a terminal symbol issues (``win``,
   ``gr_detected``), the core crashes ("reset"), or the settle budget
   expires ("no_effect" / "partial").

A parameter-deterministic fast path skips full simulation for grid points
the fault model says produce neither a fault nor a crash — the
overwhelming majority of the 9,801-point scans.

Simulated attempts additionally use *baseline replay* (the hw-layer face
of the snapshot engine, see ``docs/ARCHITECTURE.md``): the first full run
snapshots the board at the trigger cycle — memory via the copy-on-write
journal, pipeline latches via :class:`~repro.hw.pipeline.PipelineState` —
and every later attempt rewinds to that point instead of re-simulating
boot from reset.  The baseline is dropped whenever it could diverge from
a fresh boot: an external ``board.reset()`` swaps the pipeline object out,
and firmware that persists new nonvolatile seed-page state (the
random-delay defense) changes ``board._seed_page``, both of which the
replay gate checks before every restore.  Pass ``replay=False`` to force
the from-reset path (the differential tests do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.emu.memory import MemorySnapshot
from repro.errors import EmulationFault
from repro.hw.clock import GlitchParams
from repro.hw.faults import FaultEffect, FaultModel, PipelineView
from repro.hw.mcu import Board
from repro.hw.pipeline import PipelinedCPU, PipelineState
from repro.isa.assembler import AssembledProgram

#: cycles allowed from power-on to the (first) trigger
BOOT_BUDGET = 50_000
#: cycles allowed after the last glitched cycle for consequences to land
SETTLE_CYCLES = 400


@dataclass
class AttemptResult:
    """Outcome of one glitched run."""

    category: str  # success | detected | reset | no_effect | partial
    params: GlitchParams
    triggers_seen: int = 0
    cycles: int = 0
    registers: tuple[int, ...] = ()
    effects: tuple[FaultEffect, ...] = ()
    stop_symbol: Optional[str] = None
    simulated: bool = True  # False when the fast path decided the outcome

    @property
    def succeeded(self) -> bool:
        return self.category == "success"


@dataclass
class GlitchStatistics:
    """Running tally over many attempts."""

    attempts: int = 0
    by_category: dict = field(default_factory=dict)

    def record(self, result: AttemptResult) -> None:
        self.attempts += 1
        self.by_category[result.category] = self.by_category.get(result.category, 0) + 1

    def rate(self, category: str) -> float:
        if self.attempts == 0:
            return 0.0
        return self.by_category.get(category, 0) / self.attempts


@dataclass
class _Baseline:
    """The trigger-cycle restore point for baseline replay.

    ``pipeline`` is kept for identity only: an external ``board.reset()``
    builds a fresh pipeline, which is how the replay gate notices the
    board was rebuilt behind the glitcher's back.  ``seed_page`` is the
    nonvolatile page the captured boot started from; once an attempt
    persists different seed bytes, a fresh boot would no longer reach
    this state and the baseline is discarded.
    """

    pipeline: PipelinedCPU
    memory_snapshot: MemorySnapshot
    pipe_state: PipelineState
    trigger_cycle: int
    seed_page: bytes
    gpio_state: int


class ClockGlitcher:
    """Arms and fires clock glitches against one firmware image.

    ``replay=True`` (the default) enables baseline replay: simulated
    attempts after the first restore the board to its captured
    trigger-cycle state instead of re-simulating boot from reset.
    Outcomes are bit-identical either way — the replay gate falls back to
    a full run whenever nonvolatile state changed or the board was reset
    externally.
    """

    def __init__(
        self,
        firmware: AssembledProgram,
        fault_model=None,
        win_symbol: str = "win",
        detect_symbol: Optional[str] = None,
        expected_triggers: int = 1,
        zero_is_invalid: bool = False,
        replay: bool = True,
        profile=None,
    ):
        from repro.hw.models import resolve_fault_model

        self.board = Board(firmware, zero_is_invalid=zero_is_invalid)
        # fault_model accepts an instance or a registered name; profile a
        # named CalibrationProfile (repro.hw.models)
        self.fault_model = resolve_fault_model(fault_model, profile) or FaultModel()
        self.firmware = firmware
        self.expected_triggers = expected_triggers
        self.win_address = firmware.symbols.get(win_symbol)
        if self.win_address is None:
            raise ValueError(f"firmware does not define the {win_symbol!r} symbol")
        self.detect_address = (
            firmware.symbols.get(detect_symbol) if detect_symbol else None
        )
        if detect_symbol and self.detect_address is None:
            raise ValueError(f"firmware does not define the {detect_symbol!r} symbol")
        self.replay = replay
        self._baseline: Optional[_Baseline] = None

    # ------------------------------------------------------------------

    def run_attempt(self, params: GlitchParams, force_simulation: bool = False) -> AttemptResult:
        """Run one glitched attempt and classify it."""
        occurrences = self._occurrence_plan(params)
        if not force_simulation:
            if not occurrences:
                return AttemptResult(category="no_effect", params=params, simulated=False)
            if occurrences[0][1] == "crash":
                # The first thing this parameter point does is crash the core.
                return AttemptResult(category="reset", params=params, simulated=False)
        return self._simulate(params)

    def run_unglitched(self, max_cycles: int = BOOT_BUDGET) -> AttemptResult:
        """Baseline run with the glitcher disarmed (sanity/tuning)."""
        return self._simulate(None, max_cycles=max_cycles)

    # ------------------------------------------------------------------

    def _occurrence_plan(self, params: GlitchParams) -> list[tuple[int, str]]:
        """Parameter-deterministic (rel_cycle, 'fault'|'crash') decisions."""
        plan: list[tuple[int, str]] = []
        for rel in params.glitched_cycles():
            decision = self.fault_model.occurrence_decision(params, rel)
            if decision is not None:
                plan.append((rel, decision))
                if decision == "crash":
                    break  # the core resets at the first crashing cycle
        return plan

    def _usable_baseline(self) -> Optional[_Baseline]:
        """The captured baseline, or ``None`` when a replay could diverge."""
        baseline = self._baseline
        if baseline is None or not self.replay:
            return None
        board = self.board
        if board.pipeline is not baseline.pipeline:
            return None  # board.reset() was called externally; state is gone
        if bytes(board._seed_page) != baseline.seed_page:
            return None  # a fresh boot would read different nonvolatile state
        return baseline

    def _capture_baseline(self, trigger_cycle: int) -> None:
        """Snapshot the board at the trigger cycle for later replays."""
        board = self.board
        self._baseline = _Baseline(
            pipeline=board.pipeline,
            memory_snapshot=board.cpu.memory.snapshot(),
            pipe_state=board.pipeline.snapshot_state(),
            trigger_cycle=trigger_cycle,
            seed_page=bytes(board._seed_page),
            gpio_state=board._gpio_state,
        )

    def _simulate(
        self, params: Optional[GlitchParams], max_cycles: int = BOOT_BUDGET
    ) -> AttemptResult:
        board = self.board
        # a no-op for stateless models; resets e.g. the voltage model's
        # recharge capacitor so every attempt starts a fresh run
        self.fault_model.begin_run()
        baseline = self._usable_baseline()
        if baseline is not None:
            # Baseline replay: rewind memory (copy-on-write journal) and
            # the pipeline to the captured trigger state.  A replayed
            # attempt is still a power cycle as far as the firmware and
            # the tallies are concerned.
            board.cpu.memory.restore(baseline.memory_snapshot)
            board.pipeline.restore_state(baseline.pipe_state)
            board._gpio_state = baseline.gpio_state
            board.boot_count += 1
            pipeline = board.pipeline
            windows: list[int] = [baseline.trigger_cycle]
            capture = False
        else:
            board.reset()
            pipeline = board.pipeline
            windows = []
            capture = self.replay
        stops = {self.win_address}
        if self.detect_address is not None:
            stops.add(self.detect_address)
        pipeline.stop_addresses = frozenset(stops)
        exit1 = self.firmware.symbols.get("exit1")
        if exit1 is not None:
            pipeline.milestone_addresses = frozenset({exit1})

        # windows: rel-cycle-0 anchors (trigger cycle + 1)
        board.trigger_callback = lambda value: windows.append(pipeline.cycles + 1)

        effects: list[FaultEffect] = []
        occurrence_counter = [0]

        def resolver(cycle: int, view: PipelineView) -> Optional[FaultEffect]:
            if params is None:
                return None
            for window_index, base in enumerate(windows):
                rel = cycle - base
                if rel in params.glitched_cycles():
                    index = occurrence_counter[0]
                    occurrence_counter[0] += 1
                    effect = self.fault_model.effect_at(
                        params, rel, view, index,
                        window_index=window_index, absolute_cycle=cycle,
                    )
                    if effect is not None:
                        effects.append(effect)
                    return effect
            return None

        pipeline.glitch_resolver = resolver

        category = "no_effect"
        stop_symbol: Optional[str] = None
        try:
            while True:
                if pipeline.stopped_at is not None:
                    if pipeline.stopped_at == self.win_address:
                        category = "success"
                        stop_symbol = "win"
                    else:
                        category = "detected"
                        stop_symbol = "detected"
                    break
                if board.cpu.halted:
                    category = "no_effect"
                    stop_symbol = "halted"
                    break
                if pipeline.cycles >= max_cycles:
                    break
                if params is not None and len(windows) >= self.expected_triggers:
                    last_end = windows[-1] + params.ext_offset + params.repeat
                    if pipeline.cycles > last_end + SETTLE_CYCLES:
                        break
                elif params is not None and windows:
                    first_end = windows[0] + params.ext_offset + params.repeat
                    # waiting for a later trigger that may never come
                    if pipeline.cycles > first_end + 4 * SETTLE_CYCLES:
                        break
                if capture and windows:
                    # First top-of-loop after the trigger fired: no glitch
                    # has landed yet (rel cycle 0 executes in the upcoming
                    # step), so this state is attempt-independent.
                    self._capture_baseline(windows[0])
                    capture = False
                pipeline.step_cycle()
        except EmulationFault:
            category = "reset"

        if self.expected_triggers > 1 and category in ("no_effect", "reset"):
            # "Partial" = the first glitch broke out of loop 1 (observable:
            # the second trigger fired / the exit1 milestone issued) but the
            # run never reached the final success state.
            if len(windows) >= 2 or pipeline.milestones:
                category = "partial"

        board.persist_nonvolatile()
        return AttemptResult(
            category=category,
            params=params if params is not None else GlitchParams(0, 0, 0),
            triggers_seen=len(windows),
            cycles=pipeline.cycles,
            registers=tuple(board.cpu.regs),
            effects=tuple(effects),
            stop_symbol=stop_symbol,
        )


__all__ = ["ClockGlitcher", "AttemptResult", "GlitchStatistics", "BOOT_BUDGET", "SETTLE_CYCLES"]

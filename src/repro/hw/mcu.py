"""The simulated STM32F0-style target board.

Memory map (a simplified STM32F071):

===============  ============  =====================================
region           base          purpose
===============  ============  =====================================
flash            0x0800_0000   firmware code + rodata (execute-only)
seed flash page  0x0801_F800   writable option page; persists across
                               resets — GlitchResistor stores its
                               random-delay PRNG seed here (§VI-B.1)
SRAM             0x2000_0000   data / stack (16 KiB)
GPIOA            0x4800_0000   ODR at +0x14 — the glitch trigger pin
DWT cycle ctr    0xE000_1004   reads the pipeline cycle count (§VII-A)
===============  ============  =====================================

The GPIO output-data register is the paper's "perfect trigger": firmware
writes the pin "exactly 1 clock cycle before the targeted instruction",
and the glitcher counts ``ext_offset`` cycles from there.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.emu import CPU, Memory, MemoryRegion, MMIORegion
from repro.hw.pipeline import PipelinedCPU
from repro.isa.assembler import AssembledProgram

FLASH_BASE = 0x0800_0000
FLASH_SIZE = 0x0001_F800
SEED_PAGE_BASE = 0x0801_F800
SEED_PAGE_SIZE = 0x800
SRAM_BASE = 0x2000_0000
SRAM_SIZE = 0x4000
GPIO_BASE = 0x4800_0000
GPIO_SIZE = 0x400
GPIO_ODR_OFFSET = 0x14
DWT_BASE = 0xE000_1000
DWT_SIZE = 0x10
DWT_CYCCNT_OFFSET = 0x4

TRIGGER_ADDRESS = GPIO_BASE + GPIO_ODR_OFFSET


class Board:
    """One powered target: firmware in flash, CPU + pipeline, trigger pin.

    ``reset()`` reloads flash and clears SRAM but *preserves the seed page*,
    like pulling the reset line on real hardware — the behaviour the
    random-delay defense's reboot-persistent seed depends on.
    """

    def __init__(self, firmware: AssembledProgram, zero_is_invalid: bool = False):
        if firmware.base != FLASH_BASE:
            raise ValueError(
                f"firmware must be linked at {FLASH_BASE:#010x}, got {firmware.base:#010x}"
            )
        if len(firmware.code) > FLASH_SIZE:
            raise ValueError(f"firmware too large: {len(firmware.code)} bytes")
        self.firmware = firmware
        self.zero_is_invalid = zero_is_invalid
        self.boot_count = 0
        self._seed_page = bytearray(SEED_PAGE_SIZE)
        #: called as trigger_callback(cycle_count_placeholder, value) on ODR writes
        self.trigger_callback: Optional[Callable[[int], None]] = None
        self.cpu: CPU = None  # type: ignore[assignment]
        self.pipeline: PipelinedCPU = None  # type: ignore[assignment]
        self._gpio_state = 0
        self.reset()

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Power-cycle: rebuild memory (seed page preserved), reload firmware."""
        memory = Memory()
        memory.map("flash", FLASH_BASE, FLASH_SIZE, writable=False, executable=True)
        memory.map_region(
            MemoryRegion(
                name="seed_flash", base=SEED_PAGE_BASE, size=SEED_PAGE_SIZE,
                data=bytearray(self._seed_page),
            )
        )
        # Power-on SRAM is not zeroed on real silicon; a non-zero fill
        # pattern keeps wrong-address loads from reading convenient zeros.
        memory.map_region(
            MemoryRegion(
                name="sram", base=SRAM_BASE, size=SRAM_SIZE,
                data=bytearray(b"\xa5" * SRAM_SIZE),
            )
        )
        memory.map_region(
            MMIORegion(
                name="gpioa", base=GPIO_BASE, size=GPIO_SIZE,
                on_read=self._gpio_read, on_write=self._gpio_write,
            )
        )
        memory.map_region(
            MMIORegion(
                name="dwt", base=DWT_BASE, size=DWT_SIZE,
                on_read=self._dwt_read, on_write=lambda *_: None,
            )
        )
        memory.load(FLASH_BASE, self.firmware.code)

        self.cpu = CPU(memory, zero_is_invalid=self.zero_is_invalid)
        self.cpu.pc = self._entry_point()
        self.cpu.sp = SRAM_BASE + SRAM_SIZE
        self.pipeline = PipelinedCPU(self.cpu)
        self._seed_region = memory.region_at(SEED_PAGE_BASE)
        self._gpio_state = 0
        self.boot_count += 1

    def _entry_point(self) -> int:
        return self.firmware.symbols.get("_start", FLASH_BASE)

    def persist_nonvolatile(self) -> None:
        """Commit the seed page back to 'silicon' so it survives the next reset."""
        self._seed_page = bytearray(self._seed_region.data)

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------

    def _gpio_read(self, offset: int, length: int) -> int:
        if offset == GPIO_ODR_OFFSET:
            return self._gpio_state
        return 0

    def _gpio_write(self, offset: int, length: int, value: int) -> None:
        if offset == GPIO_ODR_OFFSET:
            rising = value & ~self._gpio_state
            self._gpio_state = value
            self.cpu.last_bus_address = TRIGGER_ADDRESS  # bus residue for the fault model
            if rising and self.trigger_callback is not None:
                self.trigger_callback(value)

    def _dwt_read(self, offset: int, length: int) -> int:
        if offset == DWT_CYCCNT_OFFSET:
            return self.pipeline.cycles & 0xFFFFFFFF
        return 0

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def symbol(self, name: str) -> int:
        return self.firmware.address_of(name)

    def run(self, max_cycles: int) -> str:
        """Run freely (no glitching); returns the pipeline's stop reason."""
        reason = self.pipeline.run(max_cycles)
        self.persist_nonvolatile()
        return reason


__all__ = [
    "Board",
    "FLASH_BASE",
    "FLASH_SIZE",
    "SEED_PAGE_BASE",
    "SRAM_BASE",
    "SRAM_SIZE",
    "GPIO_BASE",
    "DWT_BASE",
    "TRIGGER_ADDRESS",
]

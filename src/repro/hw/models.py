"""The fault-model zoo: a registry of injection techniques and calibrations.

The paper's quantitative tables are conditioned on one phenomenology —
the clock-glitch model in :mod:`repro.hw.faults` — but the related work
shows defense rankings shift with the injection technique.  This module
makes fault models first-class pluggable objects:

- :data:`FAULT_MODELS` maps a short name (``clock``, ``voltage``, ``em``,
  ``skip``, ``replay``) to a factory, so glitchers, scans, experiment
  drivers, and the CLI construct models by name;
- :class:`CalibrationProfile` bundles a named (seed, amplitude, band)
  parameterization — one per bench setup — and :data:`PROFILES` holds the
  built-in calibrations;
- :func:`resolve_fault_model` is the single resolution point every layer
  shares: it accepts a model instance, a registered name, or a profile
  name, and returns ``None`` untouched so default campaigns keep their
  exact historical (clock-model) behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.errors import GlitchConfigError
from repro.hw.em import EMFaultModel, SkipReplayModel
from repro.hw.faults import FaultModel
from repro.hw.voltage import VoltageFaultModel

#: registered model name → factory accepting calibration keyword arguments
FAULT_MODELS: dict[str, Callable[..., FaultModel]] = {}


def register_fault_model(name: str, factory: Callable[..., FaultModel]) -> None:
    """Register (or replace) a fault-model factory under ``name``."""
    FAULT_MODELS[name] = factory


register_fault_model("clock", FaultModel)
register_fault_model("voltage", VoltageFaultModel)
register_fault_model("em", EMFaultModel)
register_fault_model("skip", lambda **kwargs: SkipReplayModel(effect="skip", **kwargs))
register_fault_model("replay", lambda **kwargs: SkipReplayModel(effect="replay", **kwargs))


@dataclass(frozen=True)
class CalibrationProfile:
    """A named, reproducible bench calibration for one registered model.

    ``params`` is a tuple of ``(keyword, value)`` pairs forwarded to the
    model factory (kept as a tuple so profiles stay hashable/frozen);
    ``seed`` overrides the model's default seed when set.
    """

    name: str
    model: str
    description: str = ""
    seed: Optional[int] = None
    params: tuple[tuple[str, float], ...] = ()

    def build(self) -> FaultModel:
        """Construct the calibrated model instance."""
        if self.model not in FAULT_MODELS:
            raise GlitchConfigError(
                f"profile {self.name!r} names unknown model {self.model!r}; "
                f"registered: {sorted(FAULT_MODELS)}"
            )
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return FAULT_MODELS[self.model](**kwargs)


#: profile name → calibration
PROFILES: dict[str, CalibrationProfile] = {}


def register_profile(profile: CalibrationProfile) -> None:
    """Register (or replace) a calibration profile under its name."""
    PROFILES[profile.name] = profile


register_profile(CalibrationProfile(
    name="cw-lite-clock",
    model="clock",
    description="ChipWhisperer-Lite clock glitcher against the STM32F071 — "
                "the paper's bench; identical to the default clock model.",
))
register_profile(CalibrationProfile(
    name="cw-lite-voltage",
    model="voltage",
    description="ChipWhisperer-Lite crowbar voltage glitcher, stock "
                "capacitor bank (48-cycle recharge dead time).",
))
register_profile(CalibrationProfile(
    name="em-probe-4mm",
    model="em",
    description="4 mm EM injection probe per Moro et al.: precise "
                "instruction replacement, slightly wider power band.",
    params=(("fault_amplitude", 0.92), ("width_sigma", 13.0)),
))
register_profile(CalibrationProfile(
    name="skip-precise",
    model="skip",
    description="Idealized instruction-skip attacker with a perfect "
                "trigger (countermeasure worst-case analysis).",
    params=(("fault_amplitude", 0.97), ("crash_amplitude", 0.10)),
))
register_profile(CalibrationProfile(
    name="replay-precise",
    model="replay",
    description="Idealized instruction-replay attacker (stale prefetch "
                "buffer served in place of the faulted fetch).",
    params=(("fault_amplitude", 0.97), ("crash_amplitude", 0.10)),
))


def resolve_fault_model(
    fault_model: Union[FaultModel, str, None] = None,
    profile: Union[CalibrationProfile, str, None] = None,
) -> Optional[FaultModel]:
    """Resolve a model selection to an instance (or ``None`` for the default).

    ``fault_model`` may be a ready instance, a :data:`FAULT_MODELS` name,
    or ``None``; ``profile`` a :class:`CalibrationProfile` or a
    :data:`PROFILES` name.  A profile wins the calibration: combining it
    with a model *name* is allowed as a consistency assertion (the names
    must agree), but combining it with a pre-built instance is an error.
    ``None``/``None`` returns ``None`` so callers keep their historical
    defaults bit-identically.
    """
    if profile is not None:
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise GlitchConfigError(
                    f"unknown calibration profile {profile!r}; "
                    f"registered: {sorted(PROFILES)}"
                ) from None
        if isinstance(fault_model, FaultModel):
            raise GlitchConfigError(
                "pass either a pre-built fault_model instance or a profile, "
                "not both: the profile builds its own calibrated instance"
            )
        if isinstance(fault_model, str) and fault_model != profile.model:
            raise GlitchConfigError(
                f"profile {profile.name!r} calibrates the {profile.model!r} "
                f"model but fault_model={fault_model!r} was requested"
            )
        return profile.build()
    if fault_model is None:
        return None
    if isinstance(fault_model, str):
        try:
            factory = FAULT_MODELS[fault_model]
        except KeyError:
            raise GlitchConfigError(
                f"unknown fault model {fault_model!r}; "
                f"registered: {sorted(FAULT_MODELS)}"
            ) from None
        return factory()
    return fault_model


def model_label(model: Optional[FaultModel]) -> str:
    """Short registry-style label for a model instance (``None`` → clock)."""
    if model is None:
        return "clock"
    if isinstance(model, SkipReplayModel):
        return model.effect
    if isinstance(model, EMFaultModel):
        return "em"
    if isinstance(model, VoltageFaultModel):
        return "voltage"
    return "clock"


def resolve_model_axis(
    fault_model: Union[FaultModel, str, None] = None,
    fault_models=None,
    profile: Union[CalibrationProfile, str, None] = None,
) -> list[tuple[str, Optional[FaultModel]]]:
    """Resolve the per-model experiment axis to ``[(label, model), ...]``.

    ``fault_models`` (an iterable of names/instances) opens the multi-model
    axis and is mutually exclusive with the single-selection arguments.
    The default axis is ``[("clock", None)]`` — the paper's bench, with
    ``None`` preserved so downstream defaults stay bit-identical.
    """
    if fault_models:
        if fault_model is not None or profile is not None:
            raise GlitchConfigError(
                "pass either fault_models (the multi-model axis) or a single "
                "fault_model/profile selection, not both"
            )
        axis: list[tuple[str, Optional[FaultModel]]] = []
        for entry in fault_models:
            model = resolve_fault_model(entry)
            label = entry if isinstance(entry, str) else model_label(model)
            axis.append((label, model))
        return axis
    model = resolve_fault_model(fault_model, profile)
    if model is None:
        return [("clock", None)]
    label = fault_model if isinstance(fault_model, str) else model_label(model)
    return [(label, model)]


def model_checkpoint_dir(checkpoint_dir, label: str, axis) -> Optional[str]:
    """Per-model checkpoint subdirectory for multi-model experiment axes.

    With a single-model axis the directory is passed through unchanged
    (so existing single-model checkpoints keep resuming); with several
    models each gets its own subdirectory keyed by its label.
    """
    if checkpoint_dir is None or len(axis) <= 1:
        return checkpoint_dir
    import os

    return os.path.join(str(checkpoint_dir), label)


__all__ = [
    "FAULT_MODELS",
    "PROFILES",
    "CalibrationProfile",
    "register_fault_model",
    "register_profile",
    "resolve_fault_model",
    "resolve_model_axis",
    "model_label",
    "model_checkpoint_dir",
]

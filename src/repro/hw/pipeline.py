"""A cycle-accurate 3-stage (fetch / decode / execute) Thumb pipeline.

Models the paper's target, an STM32F071 Cortex-M0 "48 MHz ARM Cortex M0
chip with a 3-stage pipeline" (§V), on top of the architectural core in
:mod:`repro.emu`:

- one halfword is fetched per cycle while the execute stage is free;
- decode moves the fetched halfword toward issue (BL joins its two
  halfwords in decode);
- execute charges Cortex-M0-style cycle costs (loads/stores 2 cycles,
  taken branches flush the pipeline — costing the architectural 3 cycles —
  everything else 1);
- a glitch resolver callback may corrupt the fetch bus, the decode latch,
  load/store data, an ALU writeback, or a branch decision at any cycle, or
  reset the core.

The mapping from clock cycle to in-flight instructions is exactly what
Table I's "Cycle → Instruction" column reports, and what bounds a glitch's
attribution in the paper's post-mortem analysis.

:meth:`PipelinedCPU.snapshot_state` / :meth:`PipelinedCPU.restore_state`
capture and rewind the pipeline mid-run (latches, execute slot, counters,
plus the architectural CPU state).  Paired with
:meth:`repro.emu.Memory.snapshot`, they power the glitcher's baseline
replay: a scan boots the firmware to the trigger once and replays every
(width, offset) attempt from that point instead of re-simulating from
reset — see ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.emu.cpu import CPU, CPUSnapshot
from repro.errors import EmulationFault, HardFault, InvalidInstruction
from repro.hw.faults import FaultEffect, PipelineView
from repro.isa.decoder import decode
from repro.isa.instruction import Instruction

WORD_MASK = 0xFFFFFFFF

#: resolver(cycle, view) -> FaultEffect | None
GlitchResolver = Callable[[int, PipelineView], Optional[FaultEffect]]


@dataclass
class _Slot:
    """An instruction occupying the execute stage."""

    address: int
    raw: tuple[int, ...]  # one halfword, or two for BL
    cycles_left: int
    pending_effects: list[FaultEffect]


@dataclass(frozen=True)
class PipelineState:
    """A restore point for :class:`PipelinedCPU`, from :meth:`PipelinedCPU.snapshot_state`.

    Captures everything the pipeline needs to resume mid-run: the
    architectural CPU state plus the micro-architectural latches.  Memory
    is *not* included — pair this with :meth:`repro.emu.Memory.snapshot`
    (the glitcher's baseline replay does exactly that).

    Attributes
    ----------
    cpu : CPUSnapshot
        Architectural register/flag/halt state.
    cycles, fetch_address, retired : int
        Clock count, next fetch PC, and retired-instruction count.
    fetch_latch, decode_latch : tuple or None
        Front-end latch contents (immutable tuples, shared by reference).
    slot : tuple or None
        The execute-stage occupant as ``(address, raw, cycles_left,
        pending_effects)``, or ``None`` when the stage is free.
    stopped_at : int or None
        Stop-address hit, if the run already terminated.
    milestones : tuple of (int, int)
        ``(cycle, address)`` milestone issues recorded so far.
    last_bus_address : int or None
        The board's bus-residue hint (feeds the fault model's
        ``bus_residue`` substitution), carried so replays corrupt loads
        with the same residual value a fresh run would.
    last_retired_raw : tuple or None
        Raw halfwords of the most recently retired instruction — the
        victim a ``replay`` fault re-executes.
    """

    cpu: CPUSnapshot
    cycles: int
    fetch_address: int
    fetch_latch: Optional[tuple[int, int]]
    decode_latch: Optional[tuple[int, tuple[int, ...]]]
    slot: Optional[tuple[int, tuple[int, ...], int, tuple[FaultEffect, ...]]]
    retired: int
    stopped_at: Optional[int]
    milestones: tuple[tuple[int, int], ...]
    last_bus_address: Optional[int]
    last_retired_raw: Optional[tuple[int, ...]] = None


class PipelinedCPU:
    """Drives an architectural :class:`~repro.emu.cpu.CPU` cycle by cycle."""

    def __init__(self, cpu: CPU, glitch_resolver: Optional[GlitchResolver] = None):
        self.cpu = cpu
        self.glitch_resolver = glitch_resolver
        self.cycles = 0
        self.fetch_address = cpu.pc
        self.fetch_latch: Optional[tuple[int, int]] = None  # (address, halfword)
        self.decode_latch: Optional[tuple[int, tuple[int, ...]]] = None
        self.execute_slot: Optional[_Slot] = None
        self.retired = 0
        #: addresses whose *issue* terminates the run (checked at execute start)
        self.stop_addresses: frozenset[int] = frozenset()
        self.stopped_at: Optional[int] = None
        #: addresses whose issue is recorded (cycle, address) without stopping
        self.milestone_addresses: frozenset[int] = frozenset()
        self.milestones: list[tuple[int, int]] = []
        #: raw halfwords of the last retired instruction (replay-fault victim)
        self._last_retired_raw: Optional[tuple[int, ...]] = None
        #: called as trace_hook(cycle, address, raw) when an instruction
        #: occupies the execute stage (each cycle it occupies it)
        self.trace_hook: Optional[Callable[[int, int, tuple[int, ...]], None]] = None

    # ------------------------------------------------------------------

    def run(self, max_cycles: int) -> str:
        """Advance until a stop address issues, the core halts, or the budget ends.

        Returns ``"stop_addr"``, ``"halted"``, or ``"limit"``. Faults
        (including glitch-induced resets) propagate as exceptions.
        """
        while self.cycles < max_cycles:
            self.step_cycle()
            if self.stopped_at is not None:
                return "stop_addr"
            if self.cpu.halted:
                return "halted"
        return "limit"

    def step_cycle(self) -> None:
        """Advance the pipeline by one clock cycle.

        Stage order within a cycle:

        1. *issue* — if the execute stage is free, the decoded instruction
           moves into it, so the glitch resolver sees what executes this
           cycle (1-cycle instructions issue and complete within one step);
        2. *front end* — decode refills from fetch and a new halfword is
           fetched, so the resolver also sees the true in-flight younger
           instructions;
        3. *glitch* — fetch/decode corruptions land directly in the latches,
           execute-stage corruptions attach to the current slot;
        4. *execute* — the slot consumes one cycle; on completion the
           instruction runs architecturally and taken branches flush the
           (just-refilled) front end, which is what gives them their
           3-cycle cost.
        """
        if self.execute_slot is None:
            self.execute_slot = self._issue()
            if self.stopped_at is not None:
                return
        if self.execute_slot is not None and self.trace_hook is not None:
            slot = self.execute_slot
            self.trace_hook(self.cycles, slot.address, slot.raw)

        self._advance_front_end()

        effect = self._resolve_glitch()
        if effect is not None:
            if effect.kind == "reset":
                raise HardFault(f"glitch-induced reset at cycle {self.cycles}", None)
            self._apply_latch_effect(effect)

        self._execute_stage(effect)
        self.cycles += 1

    def _apply_latch_effect(self, effect: FaultEffect) -> None:
        if effect.kind == "fetch" and self.fetch_latch is not None:
            address, halfword = self.fetch_latch
            self.fetch_latch = (address, _apply_mask(halfword, effect.mask, effect.mode) & 0xFFFF)
        elif effect.kind == "decode" and self.decode_latch is not None:
            address, raw = self.decode_latch
            corrupted = _apply_mask(raw[-1], effect.mask, effect.mode) & 0xFFFF
            self.decode_latch = (address, raw[:-1] + (corrupted,))

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self) -> PipelineState:
        """Capture the pipeline (and architectural CPU) state for later replay.

        Memory is deliberately *not* captured — callers pair this with
        :meth:`repro.emu.Memory.snapshot` on ``self.cpu.memory``.  The
        run configuration (``stop_addresses``, ``milestone_addresses``,
        ``glitch_resolver``, ``trace_hook``) is also left out: it belongs
        to the driver, which reinstalls it per run.

        Returns
        -------
        PipelineState
            Immutable state token; pass it to :meth:`restore_state`.
        """
        slot = self.execute_slot
        return PipelineState(
            cpu=self.cpu.snapshot(),
            cycles=self.cycles,
            fetch_address=self.fetch_address,
            fetch_latch=self.fetch_latch,
            decode_latch=self.decode_latch,
            slot=None if slot is None else (
                slot.address, slot.raw, slot.cycles_left, tuple(slot.pending_effects)
            ),
            retired=self.retired,
            stopped_at=self.stopped_at,
            milestones=tuple(self.milestones),
            last_bus_address=getattr(self.cpu, "last_bus_address", None),
            last_retired_raw=self._last_retired_raw,
        )

    def restore_state(self, state: PipelineState) -> None:
        """Rewind the pipeline to a :meth:`snapshot_state` capture.

        Restores registers, flags, latches, the execute slot, and the
        cycle/retire counters; leaves memory, stop/milestone address
        sets, the glitch resolver, and the trace hook untouched.

        Parameters
        ----------
        state : PipelineState
            Token from :meth:`snapshot_state` on this same pipeline.
        """
        self.cpu.reset_from(state.cpu)
        self.cpu.last_bus_address = state.last_bus_address
        self.cycles = state.cycles
        self.fetch_address = state.fetch_address
        self.fetch_latch = state.fetch_latch
        self.decode_latch = state.decode_latch
        if state.slot is None:
            self.execute_slot = None
        else:
            address, raw, cycles_left, effects = state.slot
            self.execute_slot = _Slot(
                address=address, raw=raw, cycles_left=cycles_left,
                pending_effects=list(effects),
            )
        self.retired = state.retired
        self.stopped_at = state.stopped_at
        self.milestones = list(state.milestones)
        self._last_retired_raw = state.last_retired_raw

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------

    def _resolve_glitch(self) -> Optional[FaultEffect]:
        if self.glitch_resolver is None:
            return None
        return self.glitch_resolver(self.cycles, self._view())

    def _view(self) -> PipelineView:
        executing = "none"
        slot = self.execute_slot
        if slot is not None:
            executing = _classify_raw(slot.raw)
        return PipelineView(
            executing_class=executing,
            has_fetch=self._front_end_free(),
            has_decode=self.decode_latch is not None,
        )

    def _front_end_free(self) -> bool:
        slot = self.execute_slot
        return slot is None or slot.cycles_left <= 1

    def _execute_stage(self, effect: Optional[FaultEffect]) -> bool:
        """Run the execute stage for this cycle; True if the slot completed."""
        slot = self.execute_slot
        if slot is None:
            return False
        if effect is not None and effect.kind in (
            "load_data", "store_data", "writeback", "branch_decision",
            "cmp_transient", "skip", "replay",
        ):
            slot.pending_effects.append(effect)
        slot.cycles_left -= 1
        if slot.cycles_left > 0:
            return False
        self._complete(slot)
        self.execute_slot = None
        return True

    def _issue(self) -> Optional[_Slot]:
        if self.decode_latch is None:
            return None
        address, raw = self.decode_latch
        if len(raw) == 1 and (raw[0] >> 11) == 0b11110:
            return None  # lone BL prefix: wait for its suffix halfword
        self.decode_latch = None
        if address in self.milestone_addresses:
            self.milestones.append((self.cycles, address))
        if address in self.stop_addresses:
            self.stopped_at = address
            return None
        return _Slot(
            address=address,
            raw=raw,
            cycles_left=_issue_cost(raw),
            pending_effects=[],
        )

    def _complete(self, slot: _Slot) -> None:
        """Architecturally execute the slot, applying any pending corruptions."""
        skip = any(effect.kind == "skip" for effect in slot.pending_effects)
        replay = any(effect.kind == "replay" for effect in slot.pending_effects)
        victim_raw = slot.raw
        if replay and not skip and self._last_retired_raw is not None:
            # Re-issue the previously retired instruction in place of this
            # one; control falls through past the displaced instruction.
            victim_raw = self._last_retired_raw
        elif skip or replay:
            # Skip (or a replay with no retired predecessor): the
            # instruction issues but its architectural effects never
            # commit — the canonical "instruction skip" abstraction.
            self.cpu.pc = slot.address + 2 * len(slot.raw)
            self.retired += 1
            return
        instr = self._decode_raw(victim_raw)
        instr = self._apply_pre_effects(slot, instr)
        address = slot.address
        # A replayed victim may differ in size from the displaced slot, so
        # fall through past the *displaced* instruction, not the victim.
        fallthrough = address + (2 * len(slot.raw) if replay else instr.size)
        self._pre_regs = list(self.cpu.regs) if slot.pending_effects else None
        self.cpu.pc = fallthrough
        self.cpu.execute(instr, address)
        self.retired += 1
        self._last_retired_raw = victim_raw
        self._apply_post_effects(slot, instr)
        if self.cpu.pc != fallthrough:
            self._flush(self.cpu.pc)

    def _decode_raw(self, raw: tuple[int, ...]) -> Instruction:
        if len(raw) == 2:
            return decode(raw[0], raw[1], zero_is_invalid=self.cpu.zero_is_invalid)
        return decode(raw[0], zero_is_invalid=self.cpu.zero_is_invalid)

    def _apply_pre_effects(self, slot: _Slot, instr: Instruction) -> Instruction:
        from dataclasses import replace

        for effect in slot.pending_effects:
            if effect.kind == "branch_decision" and instr.is_conditional_branch:
                # conditions pair up (eq/ne, cs/cc, ...): XOR 1 inverts
                from repro.isa.conditions import condition_name

                inverted = instr.cond ^ 1
                instr = replace(instr, cond=inverted, mnemonic=f"b{condition_name(inverted)}")
            elif effect.kind == "store_data" and instr.is_store and instr.rd is not None:
                corrupted = _apply_mask(self.cpu.regs[instr.rd], effect.mask, effect.mode)
                self.cpu.regs[instr.rd] = corrupted
            elif effect.kind == "cmp_transient" and instr.is_compare and instr.rd is not None:
                # corrupt the compare's operand view; _apply_post_effects
                # restores the register from the pre-execute snapshot
                corrupted = _apply_mask(self.cpu.regs[instr.rd], effect.mask, effect.mode)
                self.cpu.regs[instr.rd] = corrupted
        return instr

    def _apply_post_effects(self, slot: _Slot, instr: Instruction) -> None:
        for effect in slot.pending_effects:
            if effect.kind == "load_data" and instr.is_load:
                target = instr.rd if instr.rd is not None else _first_reg(instr)
                if target is None:
                    continue
                if effect.substitute == "wrong_reg" and self._pre_regs is not None:
                    # §V-A: "the LDR instruction was corrupted to load the
                    # [value] into the wrong register" — the loaded value
                    # lands in a neighbouring register and the intended
                    # destination keeps its stale pre-load contents.
                    other = (target + 1 + effect.mask % 3) % 8
                    loaded = self.cpu.regs[target]
                    self.cpu.regs[target] = self._pre_regs[target]
                    self.cpu.regs[other] = loaded
                    continue
                self.cpu.regs[target] = self._substitute_load(
                    self.cpu.regs[target], effect
                ) & WORD_MASK
            elif effect.kind == "writeback" and instr.rd is not None and not instr.is_memory:
                self.cpu.regs[instr.rd] = _apply_mask(
                    self.cpu.regs[instr.rd], effect.mask, effect.mode
                )
            elif effect.kind == "cmp_transient" and instr.is_compare and instr.rd is not None:
                if self._pre_regs is not None:
                    # the corruption was on the operand bus, not the register
                    self.cpu.regs[instr.rd] = self._pre_regs[instr.rd]

    def _substitute_load(self, correct: int, effect: FaultEffect) -> int:
        """Reproduce the Table I post-mortem value families.

        The paper attributes corrupted comparator values to load failures
        (0), residual bus values (the GPIO address, mixes of SP), SP leaks,
        stuck-line patterns (0x55, 0xFF, 0x08), and plain bit flips.
        """
        if effect.substitute == "zero":
            return 0
        if effect.substitute == "bus_residue":
            # mix of the last-touched bus address and corruption
            return (self._last_bus_value() ^ effect.mask) & WORD_MASK
        if effect.substitute == "sp_leak":
            return (self.cpu.sp ^ (effect.mask & 0xFF)) & WORD_MASK
        if effect.substitute == "pattern":
            pattern = (0x08, 0x55, 0xFF, 0x21, 0x68)[effect.mask % 5]
            return pattern
        return _apply_mask(correct, effect.mask, effect.mode)

    def _last_bus_value(self) -> int:
        # The most recently computed address-like value: approximate with SP
        # unless a device address was touched (tracked by the board).
        board_hint = getattr(self.cpu, "last_bus_address", None)
        if board_hint:
            return board_hint
        return self.cpu.sp

    def _advance_front_end(self) -> None:
        """Move halfwords toward issue: fetch → decode, memory → fetch."""
        if self.decode_latch is None and self.fetch_latch is not None:
            address, halfword = self.fetch_latch
            self.fetch_latch = None
            self.decode_latch = (address, (halfword,))
        elif self.decode_latch is not None and len(self.decode_latch[1]) == 1:
            address, raw = self.decode_latch
            if (raw[0] >> 11) == 0b11110 and self.fetch_latch is not None:
                _, suffix = self.fetch_latch
                self.fetch_latch = None
                self.decode_latch = (address, (raw[0], suffix))

        if self.fetch_latch is None:
            halfword = self.cpu.memory.try_fetch_u16(self.fetch_address)
            if halfword is not None:
                self.fetch_latch = (self.fetch_address, halfword)
                self.fetch_address += 2
            elif self.decode_latch is None and self.execute_slot is None:
                # Nothing older in flight: the corrupted PC has run the
                # pipeline into unmapped memory.
                from repro.errors import BadFetch

                raise BadFetch(
                    f"pipeline ran into unmapped memory at {self.fetch_address:#010x}",
                    self.fetch_address,
                )

    def _flush(self, new_pc: int) -> None:
        """Branch taken: squash younger stages and refetch (2 bubble cycles)."""
        self.fetch_latch = None
        self.decode_latch = None
        self.fetch_address = new_pc


def _classify_raw(raw: tuple[int, ...]) -> str:
    try:
        instr = decode(raw[0], raw[1] if len(raw) == 2 else 0xF800)
    except InvalidInstruction:
        return "alu"
    if instr.is_load:
        return "load"
    if instr.is_store:
        return "store"
    if instr.is_compare:
        return "compare"
    if instr.is_branch:
        return "branch"
    return "alu"


def _issue_cost(raw: tuple[int, ...]) -> int:
    """Cortex-M0-flavoured execute-stage cycle costs."""
    try:
        instr = decode(raw[0], raw[1] if len(raw) == 2 else 0xF800)
    except InvalidInstruction:
        return 1
    if instr.mnemonic in ("push", "pop", "stmia", "ldmia"):
        return 1 + max(1, len(instr.reg_list))
    if instr.is_memory:
        return 2
    if instr.mnemonic == "bl":
        return 2
    return 1


def _apply_mask(value: int, mask: int, mode: str) -> int:
    if mode == "and":
        return value & ~mask & WORD_MASK
    if mode == "or":
        return (value | mask) & WORD_MASK
    return (value ^ mask) & WORD_MASK


def _first_reg(instr: Instruction) -> Optional[int]:
    if instr.reg_list:
        return instr.reg_list[0]
    return None


__all__ = ["PipelinedCPU", "PipelineState", "GlitchResolver"]

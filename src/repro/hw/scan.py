"""Parameter scans reproducing Tables I, II, and III.

Each scan sweeps the full ``[-49, 49] × [-49, 49]`` (width, offset) grid —
9,801 attempts — per clock cycle (or per cycle-range for long glitches)
and tallies successes, crashes, and the post-mortem comparator register
values the paper reports.

The serial path shares one :class:`~repro.hw.glitcher.ClockGlitcher`
across all rows of a scan, so the glitcher's baseline replay (see
``docs/ARCHITECTURE.md``) kicks in automatically: the pre-glitch boot up
to the trigger cycle is simulated once per firmware image and every
subsequent simulated attempt rewinds to that snapshot. On the
multiprocessing path each worker builds its own glitcher and gets its
own baseline. Tallies are identical with replay on or off
(``benchmarks/test_bench_table1.py`` runs the differential).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.exec import (
    FailedUnit,
    ParallelExecutor,
    ProgressReporter,
    open_campaign_checkpoint,
)
from repro.hw.clock import GRID_POINTS, GlitchParams, OFFSET_RANGE, WIDTH_RANGE
from repro.hw.faults import FaultModel
from repro.hw.glitcher import AttemptResult, ClockGlitcher
from repro.hw.models import model_label, resolve_fault_model
from repro.isa.disassembler import disassemble_one
from repro.obs import Observer, coerce_observer


# ----------------------------------------------------------------------
# result containers
# ----------------------------------------------------------------------

@dataclass
class CycleRow:
    """One Table I row: a single glitched clock cycle."""

    cycle: int
    instruction: str
    attempts: int = 0
    successes: int = 0
    resets: int = 0
    register_values: Counter = field(default_factory=Counter)


@dataclass
class SingleGlitchScan:
    """Table I: single glitches across the loop's clock cycles."""

    guard: str
    rows: list[CycleRow]
    failed_units: list[FailedUnit] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_successes(self) -> int:
        return sum(row.successes for row in self.rows)

    @property
    def success_rate(self) -> float:
        return self.total_successes / self.total_attempts if self.total_attempts else 0.0

    @property
    def unique_register_values(self) -> int:
        values: set[int] = set()
        for row in self.rows:
            values.update(row.register_values)
        return len(values)


@dataclass
class MultiCycleRow:
    """One Table II row: partial vs full double-glitch successes."""

    cycle: int
    attempts: int = 0
    partial: int = 0
    full: int = 0


@dataclass
class MultiGlitchScan:
    """Table II: two identical back-to-back glitches."""

    guard: str
    rows: list[MultiCycleRow]
    failed_units: list[FailedUnit] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_partial(self) -> int:
        return sum(row.partial for row in self.rows)

    @property
    def total_full(self) -> int:
        return sum(row.full for row in self.rows)

    @property
    def partial_rate(self) -> float:
        return self.total_partial / self.total_attempts if self.total_attempts else 0.0

    @property
    def full_rate(self) -> float:
        return self.total_full / self.total_attempts if self.total_attempts else 0.0


@dataclass
class LongRangeRow:
    """One Table III row: a contiguous glitch over cycles 0..last."""

    last_cycle: int
    attempts: int = 0
    successes: int = 0


@dataclass
class LongGlitchScan:
    """Table III: long glitches over two subsequent loops."""

    guard: str
    rows: list[LongRangeRow]
    failed_units: list[FailedUnit] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_successes(self) -> int:
        return sum(row.successes for row in self.rows)

    @property
    def success_rate(self) -> float:
        return self.total_successes / self.total_attempts if self.total_attempts else 0.0


# ----------------------------------------------------------------------
# grid iteration (with an optional stride for fast tests)
# ----------------------------------------------------------------------

def _validate_stride(stride: int) -> int:
    if not isinstance(stride, int) or isinstance(stride, bool):
        raise ValueError(f"stride must be a positive integer, got {stride!r}")
    if stride < 1:
        raise ValueError(
            f"stride must be >= 1, got {stride} (a non-positive stride would "
            f"produce an empty or reversed grid and a silently wrong scan)"
        )
    return stride


def _grid(stride: int) -> list[tuple[int, int]]:
    _validate_stride(stride)
    return [
        (width, offset)
        for width in WIDTH_RANGE[::stride]
        for offset in OFFSET_RANGE[::stride]
    ]


def map_cycles_to_instructions(glitcher: ClockGlitcher, n_cycles: int) -> dict[int, str]:
    """Observe which instruction *executes* at each post-trigger clock cycle.

    This regenerates Table I's cycle → instruction column directly from the
    pipeline rather than assuming it.
    """
    board = glitcher.board
    board.reset()
    pipeline = board.pipeline
    windows: list[int] = []
    board.trigger_callback = lambda value: windows.append(pipeline.cycles + 1)
    mapping: dict[int, str] = {}

    def trace(cycle: int, address: int, raw: tuple[int, ...]) -> None:
        if not windows:
            return
        rel = cycle - windows[0]
        if 0 <= rel < n_cycles and rel not in mapping:
            mapping[rel] = disassemble_one(raw[0], raw[1] if len(raw) == 2 else None)

    pipeline.trace_hook = trace
    budget = 10_000
    while pipeline.cycles < budget:
        if windows and pipeline.cycles - windows[0] >= n_cycles:
            break
        pipeline.step_cycle()
    board.persist_nonvolatile()
    # Pipeline-refill bubbles after a taken branch belong to the branch
    # (Table I lists BEQ spanning cycles 5-7).
    previous = "-"
    for rel in range(n_cycles):
        if rel in mapping:
            previous = mapping[rel]
        else:
            mapping[rel] = previous
    return mapping


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------
#
# Each scan is decomposed into per-row work units: a picklable spec names
# the guard/cycle/stride, and the worker rebuilds its own firmware +
# glitcher. The guard firmware never touches nonvolatile state, so a fresh
# board per row produces exactly the rows a single shared board would —
# which is what lets the in-process (``workers=1``) path keep one shared
# glitcher while the multiprocessing path stays bit-identical.

def _single_row(
    glitcher: ClockGlitcher, comparator_register: int, cycle: int, stride: int
) -> CycleRow:
    row = CycleRow(cycle=cycle, instruction="-")
    for width, offset in _grid(stride):
        result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
        row.attempts += 1
        if result.category == "success":
            row.successes += 1
            value = result.registers[comparator_register] & 0xFFFFFFFF
            row.register_values[value] += 1
        elif result.category == "reset":
            row.resets += 1
    return row


def _multi_row(glitcher: ClockGlitcher, cycle: int, stride: int) -> MultiCycleRow:
    row = MultiCycleRow(cycle=cycle)
    for width, offset in _grid(stride):
        result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
        row.attempts += 1
        if result.category == "success":
            row.full += 1
        elif result.category == "partial":
            row.partial += 1
    return row


def _long_row(glitcher: ClockGlitcher, last: int, stride: int) -> LongRangeRow:
    row = LongRangeRow(last_cycle=last)
    for width, offset in _grid(stride):
        result = glitcher.run_attempt(
            GlitchParams(ext_offset=0, width=width, offset=offset, repeat=last + 1)
        )
        row.attempts += 1
        if result.category == "success":
            row.successes += 1
    return row


@dataclass(frozen=True)
class _GuardRowSpec:
    """Picklable work unit: one scan row against a freshly-built guard board."""

    kind: str  # "single" | "multi" | "long"
    guard: str
    cycle: int
    stride: int
    fault_model: Optional[FaultModel]


# checkpoint codecs: one JSON-able payload per completed scan row ----------

def _encode_single_row(row: CycleRow) -> dict:
    return {
        "cycle": row.cycle,
        "attempts": row.attempts,
        "successes": row.successes,
        "resets": row.resets,
        "register_values": {str(value): count for value, count in row.register_values.items()},
    }


def _decode_single_row(payload: dict) -> CycleRow:
    return CycleRow(
        cycle=payload["cycle"],
        instruction="-",  # re-derived from the live instruction map after the merge
        attempts=payload["attempts"],
        successes=payload["successes"],
        resets=payload["resets"],
        register_values=Counter(
            {int(value): count for value, count in payload["register_values"].items()}
        ),
    )


def _encode_multi_row(row: MultiCycleRow) -> dict:
    return {"cycle": row.cycle, "attempts": row.attempts,
            "partial": row.partial, "full": row.full}


def _decode_multi_row(payload: dict) -> MultiCycleRow:
    return MultiCycleRow(**payload)


def _encode_long_row(row: LongRangeRow) -> dict:
    return {"last_cycle": row.last_cycle, "attempts": row.attempts,
            "successes": row.successes}


def _decode_long_row(payload: dict) -> LongRangeRow:
    return LongRangeRow(**payload)


def _scan_checkpoint(
    checkpoint_dir, resume, kind: str, guard: str, cycles: list[int],
    stride: int, fault_model: Optional[FaultModel],
):
    """Open the checkpoint for one guard scan, or ``None`` when not requested."""
    if checkpoint_dir is None and not resume:
        return None
    meta = {
        "campaign": f"scan-{kind}",
        "guard": guard,
        "cycles": list(cycles),
        "stride": stride,
        "fault_seed": fault_model.seed if fault_model is not None else None,
        "fault_model": model_label(fault_model),
    }
    return open_campaign_checkpoint(
        checkpoint_dir, f"scan-{kind}-{guard}", meta, resume=resume
    )


def _guard_row_unit(spec: _GuardRowSpec):
    from repro.firmware.loops import build_guard_firmware, guard_descriptor

    if spec.kind == "single":
        firmware = build_guard_firmware(spec.guard, "single")
        glitcher = ClockGlitcher(firmware, fault_model=spec.fault_model)
        descriptor = guard_descriptor(spec.guard)
        return _single_row(glitcher, descriptor.comparator_register, spec.cycle, spec.stride)
    if spec.kind == "multi":
        firmware = build_guard_firmware(spec.guard, "double")
        glitcher = ClockGlitcher(firmware, fault_model=spec.fault_model, expected_triggers=2)
        return _multi_row(glitcher, spec.cycle, spec.stride)
    firmware = build_guard_firmware(spec.guard, "contiguous")
    glitcher = ClockGlitcher(firmware, fault_model=spec.fault_model)
    return _long_row(glitcher, spec.cycle, spec.stride)


def run_single_glitch_scan(
    guard: str,
    cycles: Iterable[int] = range(8),
    fault_model=None,
    stride: int = 1,
    glitcher: Optional[ClockGlitcher] = None,
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    obs: Optional[Observer] = None,
    chunk_size: Optional[int] = None,
    profile=None,
) -> SingleGlitchScan:
    """Table I: scan every (width, offset) for each glitched clock cycle.

    ``fault_model`` accepts a :class:`FaultModel` instance or a registered
    model name; ``profile`` a named calibration from
    :data:`repro.hw.models.PROFILES` (see :func:`resolve_fault_model`).

    ``workers`` distributes the per-cycle rows over processes. A pre-built
    ``glitcher`` carries its own fault model, so combining it with
    ``fault_model``/``profile`` (or with ``workers > 1`` — a live board
    cannot be shipped to worker processes) raises ``ValueError``.

    ``checkpoint_dir``/``resume`` persist completed rows (keyed by cycle)
    so an interrupted scan restarts only its missing cycles; ``retries``/
    ``unit_timeout`` retry a failing row before quarantining it into
    ``failed_units``.
    """
    from repro.firmware.loops import build_guard_firmware, guard_descriptor

    if glitcher is not None and (fault_model is not None or profile is not None):
        raise ValueError(
            "pass either a pre-built glitcher or a fault_model/profile, not "
            "both: the glitcher was already constructed with its own fault "
            "model, so the fault_model argument would be silently ignored"
        )
    fault_model = resolve_fault_model(fault_model, profile)
    _validate_stride(stride)
    cycles = list(cycles)
    descriptor = guard_descriptor(guard)
    obs = coerce_observer(obs)
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs,
    )
    if glitcher is not None and executor.parallel:
        raise ValueError(
            "a pre-built glitcher cannot be used with workers > 1; "
            "pass fault_model and let each worker build its own board"
        )
    if glitcher is None:
        firmware = build_guard_firmware(guard, "single")
        glitcher = ClockGlitcher(firmware, fault_model=fault_model)
    instruction_map = map_cycles_to_instructions(glitcher, max(cycles, default=0) + 1)
    shared = glitcher
    checkpoint = _scan_checkpoint(
        checkpoint_dir, resume, "single", guard, cycles, stride, fault_model
    )
    try:
        with obs.trace(f"scan.single[{guard}]", guard=guard, stride=stride,
                       cycles=len(cycles)):
            rows = executor.map(
                _guard_row_unit,
                [_GuardRowSpec("single", guard, cycle, stride, fault_model) for cycle in cycles],
                serial_fn=lambda spec: _single_row(
                    shared, descriptor.comparator_register, spec.cycle, spec.stride
                ),
                attempts_of=lambda row: row.attempts,
                categories_of=lambda row: {"success": row.successes, "reset": row.resets},
                checkpoint=checkpoint,
                key_of=lambda spec: str(spec.cycle),
                encode=_encode_single_row,
                decode=_decode_single_row,
            )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    rows = [row for row in rows if row is not None]
    for row in rows:
        row.instruction = instruction_map.get(row.cycle, "-")
    scan = SingleGlitchScan(
        guard=guard, rows=rows, failed_units=list(executor.failed_units)
    )
    if obs.enabled:
        obs.event("scan", kind="single", guard=guard,
                  attempts=scan.total_attempts, successes=scan.total_successes)
    return scan


def run_multi_glitch_scan(
    guard: str,
    cycles: Iterable[int] = range(8),
    fault_model=None,
    stride: int = 1,
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    obs: Optional[Observer] = None,
    chunk_size: Optional[int] = None,
    profile=None,
) -> MultiGlitchScan:
    """Table II: the same glitch fired after each of two triggers."""
    from repro.firmware.loops import build_guard_firmware

    fault_model = resolve_fault_model(fault_model, profile)
    _validate_stride(stride)
    cycles = list(cycles)
    firmware = build_guard_firmware(guard, "double")
    glitcher = ClockGlitcher(firmware, fault_model=fault_model, expected_triggers=2)
    obs = coerce_observer(obs)
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs,
    )
    checkpoint = _scan_checkpoint(
        checkpoint_dir, resume, "multi", guard, cycles, stride, fault_model
    )
    try:
        with obs.trace(f"scan.multi[{guard}]", guard=guard, stride=stride,
                       cycles=len(cycles)):
            rows = executor.map(
                _guard_row_unit,
                [_GuardRowSpec("multi", guard, cycle, stride, fault_model) for cycle in cycles],
                serial_fn=lambda spec: _multi_row(glitcher, spec.cycle, spec.stride),
                attempts_of=lambda row: row.attempts,
                categories_of=lambda row: {"full": row.full, "partial": row.partial},
                checkpoint=checkpoint,
                key_of=lambda spec: str(spec.cycle),
                encode=_encode_multi_row,
                decode=_decode_multi_row,
            )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    scan = MultiGlitchScan(
        guard=guard,
        rows=[row for row in rows if row is not None],
        failed_units=list(executor.failed_units),
    )
    if obs.enabled:
        obs.event("scan", kind="multi", guard=guard,
                  attempts=scan.total_attempts, full=scan.total_full,
                  partial=scan.total_partial)
    return scan


def run_long_glitch_scan(
    guard: str,
    last_cycles: Iterable[int] = range(10, 21),
    fault_model=None,
    stride: int = 1,
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    obs: Optional[Observer] = None,
    chunk_size: Optional[int] = None,
    profile=None,
) -> LongGlitchScan:
    """Table III: one glitch spanning cycles 0..last over two adjacent loops."""
    from repro.firmware.loops import build_guard_firmware

    fault_model = resolve_fault_model(fault_model, profile)
    _validate_stride(stride)
    last_cycles = list(last_cycles)
    firmware = build_guard_firmware(guard, "contiguous")
    glitcher = ClockGlitcher(firmware, fault_model=fault_model)
    obs = coerce_observer(obs)
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs,
    )
    checkpoint = _scan_checkpoint(
        checkpoint_dir, resume, "long", guard, last_cycles, stride, fault_model
    )
    try:
        with obs.trace(f"scan.long[{guard}]", guard=guard, stride=stride,
                       cycles=len(last_cycles)):
            rows = executor.map(
                _guard_row_unit,
                [_GuardRowSpec("long", guard, last, stride, fault_model) for last in last_cycles],
                serial_fn=lambda spec: _long_row(glitcher, spec.cycle, spec.stride),
                attempts_of=lambda row: row.attempts,
                categories_of=lambda row: {"success": row.successes},
                checkpoint=checkpoint,
                key_of=lambda spec: str(spec.cycle),
                encode=_encode_long_row,
                decode=_decode_long_row,
            )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    scan = LongGlitchScan(
        guard=guard,
        rows=[row for row in rows if row is not None],
        failed_units=list(executor.failed_units),
    )
    if obs.enabled:
        obs.event("scan", kind="long", guard=guard,
                  attempts=scan.total_attempts, successes=scan.total_successes)
    return scan


__all__ = [
    "CycleRow",
    "SingleGlitchScan",
    "MultiCycleRow",
    "MultiGlitchScan",
    "LongRangeRow",
    "LongGlitchScan",
    "run_single_glitch_scan",
    "run_multi_glitch_scan",
    "run_long_glitch_scan",
    "map_cycles_to_instructions",
]


# ----------------------------------------------------------------------
# Table VI: attacks against defended firmware
# ----------------------------------------------------------------------

@dataclass
class DefenseScanResult:
    """Successes and detections for one attack against one defended build."""

    scenario: str
    defense: str
    attack: str
    attempts: int = 0
    successes: int = 0
    detections: int = 0
    resets: int = 0
    no_effect: int = 0
    failed_units: list[FailedUnit] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def detection_rate(self) -> float:
        """Paper's definition: detections / (detections + successes)."""
        denominator = self.detections + self.successes
        return self.detections / denominator if denominator else 0.0


#: Table VI attack shapes: (ext_offsets, repeat per attempt)
ATTACK_SHAPES = {
    # single glitch, clock cycle varied 0-10 → 11 × 9,801 = 107,811 attempts
    "single": tuple((ext, 1) for ext in range(0, 11)),
    # long glitch, 10-100 cycles in increments of 10 → 10 × 9,801 = 98,010
    "long": tuple((0, repeat) for repeat in range(10, 101, 10)),
    # windowed long glitch: fixed 10 cycles, start varied 0-100 by 10 → 107,811
    "windowed": tuple((start, 10) for start in range(0, 101, 10)),
}


@dataclass(frozen=True)
class _DefenseShapeSpec:
    """Picklable work unit: one attack shape element against one image."""

    image: object  # AssembledProgram — plain bytes/dicts, pickles cleanly
    ext_offset: int
    repeat: int
    stride: int
    fault_model: Optional[FaultModel]
    detect: Optional[str]


def _defense_shape_unit(spec: _DefenseShapeSpec) -> DefenseScanResult:
    glitcher = ClockGlitcher(
        spec.image, fault_model=spec.fault_model, detect_symbol=spec.detect
    )
    tally = DefenseScanResult(scenario="", defense="", attack="")
    for width, offset in _grid(spec.stride):
        outcome = glitcher.run_attempt(
            GlitchParams(
                ext_offset=spec.ext_offset, width=width, offset=offset, repeat=spec.repeat
            )
        )
        tally.attempts += 1
        if outcome.category == "success":
            tally.successes += 1
        elif outcome.category == "detected":
            tally.detections += 1
        elif outcome.category == "reset":
            tally.resets += 1
        else:
            tally.no_effect += 1
    return tally


def run_defense_scan(
    image,
    attack: str,
    scenario: str = "",
    defense: str = "",
    fault_model=None,
    stride: int = 1,
    detect_symbol: Optional[str] = "gr_detected",
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    obs: Optional[Observer] = None,
    chunk_size: Optional[int] = None,
    profile=None,
) -> DefenseScanResult:
    """Attack a (possibly defended) firmware image with one Table VI attack.

    Each attack-shape element (one ``(ext_offset, repeat)`` pair, i.e. one
    9,801-point grid) runs against a freshly power-cycled board, so shape
    elements are independent of execution order and the scan tallies are
    identical for any ``workers`` count — including against firmware whose
    nonvolatile seed page evolves across attempts (the random-delay
    defense). Within a shape element the board's seed page still persists
    attempt-to-attempt, exactly like a real bench session.
    """
    try:
        shape = ATTACK_SHAPES[attack]
    except KeyError:
        raise ValueError(f"unknown attack {attack!r}; expected one of {sorted(ATTACK_SHAPES)}")
    fault_model = resolve_fault_model(fault_model, profile)
    _validate_stride(stride)
    detect = detect_symbol if detect_symbol and detect_symbol in image.symbols else None
    obs = coerce_observer(obs)
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, progress=progress,
        retries=retries, unit_timeout=unit_timeout, on_error="quarantine",
        obs=obs,
    )
    checkpoint = None
    if checkpoint_dir is not None or resume:
        meta = {
            "campaign": "defense",
            "scenario": scenario,
            "defense": defense,
            "attack": attack,
            "stride": stride,
            "detect": detect,
            "fault_seed": fault_model.seed if fault_model is not None else None,
            "fault_model": model_label(fault_model),
        }
        checkpoint = open_campaign_checkpoint(
            checkpoint_dir, f"defense-{attack}", meta, resume=resume
        )
    try:
        with obs.trace(
            f"scan.defense[{attack}]", attack=attack,
            scenario=scenario, defense=defense, stride=stride,
        ):
            partials = executor.map(
                _defense_shape_unit,
                [
                    _DefenseShapeSpec(image, ext_offset, repeat, stride, fault_model, detect)
                    for ext_offset, repeat in shape
                ],
                attempts_of=lambda tally: tally.attempts,
                categories_of=lambda tally: {
                    "success": tally.successes,
                    "detected": tally.detections,
                    "reset": tally.resets,
                    "no_effect": tally.no_effect,
                },
                checkpoint=checkpoint,
                key_of=lambda spec: f"{spec.ext_offset}x{spec.repeat}",
                encode=lambda tally: {
                    "attempts": tally.attempts,
                    "successes": tally.successes,
                    "detections": tally.detections,
                    "resets": tally.resets,
                    "no_effect": tally.no_effect,
                },
                decode=lambda payload: DefenseScanResult(
                    scenario="", defense="", attack="", **payload
                ),
            )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    result = DefenseScanResult(
        scenario=scenario, defense=defense, attack=attack,
        failed_units=list(executor.failed_units),
    )
    for tally in partials:
        if tally is None:
            continue
        result.attempts += tally.attempts
        result.successes += tally.successes
        result.detections += tally.detections
        result.resets += tally.resets
        result.no_effect += tally.no_effect
    if obs.enabled:
        obs.event("scan", kind="defense", attack=attack, scenario=scenario,
                  defense=defense, attempts=result.attempts,
                  successes=result.successes, detections=result.detections)
    return result

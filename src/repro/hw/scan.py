"""Parameter scans reproducing Tables I, II, and III.

Each scan sweeps the full ``[-49, 49] × [-49, 49]`` (width, offset) grid —
9,801 attempts — per clock cycle (or per cycle-range for long glitches)
and tallies successes, crashes, and the post-mortem comparator register
values the paper reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.hw.clock import GRID_POINTS, GlitchParams, OFFSET_RANGE, WIDTH_RANGE
from repro.hw.faults import FaultModel
from repro.hw.glitcher import AttemptResult, ClockGlitcher
from repro.isa.disassembler import disassemble_one


# ----------------------------------------------------------------------
# result containers
# ----------------------------------------------------------------------

@dataclass
class CycleRow:
    """One Table I row: a single glitched clock cycle."""

    cycle: int
    instruction: str
    attempts: int = 0
    successes: int = 0
    resets: int = 0
    register_values: Counter = field(default_factory=Counter)


@dataclass
class SingleGlitchScan:
    """Table I: single glitches across the loop's clock cycles."""

    guard: str
    rows: list[CycleRow]

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_successes(self) -> int:
        return sum(row.successes for row in self.rows)

    @property
    def success_rate(self) -> float:
        return self.total_successes / self.total_attempts if self.total_attempts else 0.0

    @property
    def unique_register_values(self) -> int:
        values: set[int] = set()
        for row in self.rows:
            values.update(row.register_values)
        return len(values)


@dataclass
class MultiCycleRow:
    """One Table II row: partial vs full double-glitch successes."""

    cycle: int
    attempts: int = 0
    partial: int = 0
    full: int = 0


@dataclass
class MultiGlitchScan:
    """Table II: two identical back-to-back glitches."""

    guard: str
    rows: list[MultiCycleRow]

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_partial(self) -> int:
        return sum(row.partial for row in self.rows)

    @property
    def total_full(self) -> int:
        return sum(row.full for row in self.rows)

    @property
    def partial_rate(self) -> float:
        return self.total_partial / self.total_attempts if self.total_attempts else 0.0

    @property
    def full_rate(self) -> float:
        return self.total_full / self.total_attempts if self.total_attempts else 0.0


@dataclass
class LongRangeRow:
    """One Table III row: a contiguous glitch over cycles 0..last."""

    last_cycle: int
    attempts: int = 0
    successes: int = 0


@dataclass
class LongGlitchScan:
    """Table III: long glitches over two subsequent loops."""

    guard: str
    rows: list[LongRangeRow]

    @property
    def total_attempts(self) -> int:
        return sum(row.attempts for row in self.rows)

    @property
    def total_successes(self) -> int:
        return sum(row.successes for row in self.rows)

    @property
    def success_rate(self) -> float:
        return self.total_successes / self.total_attempts if self.total_attempts else 0.0


# ----------------------------------------------------------------------
# grid iteration (with an optional stride for fast tests)
# ----------------------------------------------------------------------

def _grid(stride: int) -> Iterable[tuple[int, int]]:
    for width in WIDTH_RANGE[::stride]:
        for offset in OFFSET_RANGE[::stride]:
            yield width, offset


def map_cycles_to_instructions(glitcher: ClockGlitcher, n_cycles: int) -> dict[int, str]:
    """Observe which instruction *executes* at each post-trigger clock cycle.

    This regenerates Table I's cycle → instruction column directly from the
    pipeline rather than assuming it.
    """
    board = glitcher.board
    board.reset()
    pipeline = board.pipeline
    windows: list[int] = []
    board.trigger_callback = lambda value: windows.append(pipeline.cycles + 1)
    mapping: dict[int, str] = {}

    def trace(cycle: int, address: int, raw: tuple[int, ...]) -> None:
        if not windows:
            return
        rel = cycle - windows[0]
        if 0 <= rel < n_cycles and rel not in mapping:
            mapping[rel] = disassemble_one(raw[0], raw[1] if len(raw) == 2 else None)

    pipeline.trace_hook = trace
    budget = 10_000
    while pipeline.cycles < budget:
        if windows and pipeline.cycles - windows[0] >= n_cycles:
            break
        pipeline.step_cycle()
    board.persist_nonvolatile()
    # Pipeline-refill bubbles after a taken branch belong to the branch
    # (Table I lists BEQ spanning cycles 5-7).
    previous = "-"
    for rel in range(n_cycles):
        if rel in mapping:
            previous = mapping[rel]
        else:
            mapping[rel] = previous
    return mapping


# ----------------------------------------------------------------------
# scans
# ----------------------------------------------------------------------

def run_single_glitch_scan(
    guard: str,
    cycles: Iterable[int] = range(8),
    fault_model: Optional[FaultModel] = None,
    stride: int = 1,
    glitcher: Optional[ClockGlitcher] = None,
) -> SingleGlitchScan:
    """Table I: scan every (width, offset) for each glitched clock cycle."""
    from repro.firmware.loops import build_guard_firmware, guard_descriptor

    descriptor = guard_descriptor(guard)
    if glitcher is None:
        firmware = build_guard_firmware(guard, "single")
        glitcher = ClockGlitcher(firmware, fault_model=fault_model)
    instruction_map = map_cycles_to_instructions(glitcher, max(cycles, default=0) + 1)
    rows = []
    for cycle in cycles:
        row = CycleRow(cycle=cycle, instruction=instruction_map.get(cycle, "-"))
        for width, offset in _grid(stride):
            result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
            row.attempts += 1
            if result.category == "success":
                row.successes += 1
                value = result.registers[descriptor.comparator_register] & 0xFFFFFFFF
                row.register_values[value] += 1
            elif result.category == "reset":
                row.resets += 1
        rows.append(row)
    return SingleGlitchScan(guard=guard, rows=rows)


def run_multi_glitch_scan(
    guard: str,
    cycles: Iterable[int] = range(8),
    fault_model: Optional[FaultModel] = None,
    stride: int = 1,
) -> MultiGlitchScan:
    """Table II: the same glitch fired after each of two triggers."""
    from repro.firmware.loops import build_guard_firmware

    firmware = build_guard_firmware(guard, "double")
    glitcher = ClockGlitcher(firmware, fault_model=fault_model, expected_triggers=2)
    rows = []
    for cycle in cycles:
        row = MultiCycleRow(cycle=cycle)
        for width, offset in _grid(stride):
            result = glitcher.run_attempt(GlitchParams(cycle, width, offset))
            row.attempts += 1
            if result.category == "success":
                row.full += 1
            elif result.category == "partial":
                row.partial += 1
        rows.append(row)
    return MultiGlitchScan(guard=guard, rows=rows)


def run_long_glitch_scan(
    guard: str,
    last_cycles: Iterable[int] = range(10, 21),
    fault_model: Optional[FaultModel] = None,
    stride: int = 1,
) -> LongGlitchScan:
    """Table III: one glitch spanning cycles 0..last over two adjacent loops."""
    from repro.firmware.loops import build_guard_firmware

    firmware = build_guard_firmware(guard, "contiguous")
    glitcher = ClockGlitcher(firmware, fault_model=fault_model)
    rows = []
    for last in last_cycles:
        row = LongRangeRow(last_cycle=last)
        for width, offset in _grid(stride):
            result = glitcher.run_attempt(
                GlitchParams(ext_offset=0, width=width, offset=offset, repeat=last + 1)
            )
            row.attempts += 1
            if result.category == "success":
                row.successes += 1
        rows.append(row)
    return LongGlitchScan(guard=guard, rows=rows)


__all__ = [
    "CycleRow",
    "SingleGlitchScan",
    "MultiCycleRow",
    "MultiGlitchScan",
    "LongRangeRow",
    "LongGlitchScan",
    "run_single_glitch_scan",
    "run_multi_glitch_scan",
    "run_long_glitch_scan",
    "map_cycles_to_instructions",
]


# ----------------------------------------------------------------------
# Table VI: attacks against defended firmware
# ----------------------------------------------------------------------

@dataclass
class DefenseScanResult:
    """Successes and detections for one attack against one defended build."""

    scenario: str
    defense: str
    attack: str
    attempts: int = 0
    successes: int = 0
    detections: int = 0
    resets: int = 0
    no_effect: int = 0

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def detection_rate(self) -> float:
        """Paper's definition: detections / (detections + successes)."""
        denominator = self.detections + self.successes
        return self.detections / denominator if denominator else 0.0


#: Table VI attack shapes: (ext_offsets, repeat per attempt)
ATTACK_SHAPES = {
    # single glitch, clock cycle varied 0-10 → 11 × 9,801 = 107,811 attempts
    "single": tuple((ext, 1) for ext in range(0, 11)),
    # long glitch, 10-100 cycles in increments of 10 → 10 × 9,801 = 98,010
    "long": tuple((0, repeat) for repeat in range(10, 101, 10)),
    # windowed long glitch: fixed 10 cycles, start varied 0-100 by 10 → 107,811
    "windowed": tuple((start, 10) for start in range(0, 101, 10)),
}


def run_defense_scan(
    image,
    attack: str,
    scenario: str = "",
    defense: str = "",
    fault_model: Optional[FaultModel] = None,
    stride: int = 1,
    detect_symbol: Optional[str] = "gr_detected",
) -> DefenseScanResult:
    """Attack a (possibly defended) firmware image with one Table VI attack."""
    try:
        shape = ATTACK_SHAPES[attack]
    except KeyError:
        raise ValueError(f"unknown attack {attack!r}; expected one of {sorted(ATTACK_SHAPES)}")
    detect = detect_symbol if detect_symbol and detect_symbol in image.symbols else None
    glitcher = ClockGlitcher(image, fault_model=fault_model, detect_symbol=detect)
    result = DefenseScanResult(scenario=scenario, defense=defense, attack=attack)
    for ext_offset, repeat in shape:
        for width, offset in _grid(stride):
            outcome = glitcher.run_attempt(
                GlitchParams(ext_offset=ext_offset, width=width, offset=offset, repeat=repeat)
            )
            result.attempts += 1
            if outcome.category == "success":
                result.successes += 1
            elif outcome.category == "detected":
                result.detections += 1
            elif outcome.category == "reset":
                result.resets += 1
            else:
                result.no_effect += 1
    return result

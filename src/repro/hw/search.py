"""Section V-B: locating optimal glitch parameters automatically.

The paper's algorithm "starts by scanning our glitching parameters (i.e.,
target offset, width, and offset) with a 10 cycle clock glitch, which
encompasses every instruction in the while loop. Once successful parameters
are identified, the algorithm then tests each individual clock cycle within
the 10 clock-cycle range and recursively increases its precision until a
100% success rate (10 out of 10 attempts) is achieved."

Wall-clock conversion: the paper reports 36,869 attempts converging in 59
minutes for ``while(a)`` — about 10.4 attempts per second — so we model
minutes as ``attempts / (10.4 * 60)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exec import open_campaign_checkpoint
from repro.exec.checkpoint import MISSING
from repro.hw.clock import GlitchParams, OFFSET_RANGE, WIDTH_RANGE
from repro.hw.faults import FaultModel
from repro.hw.glitcher import ClockGlitcher
from repro.obs import Observer, coerce_observer

#: attempts per second observed on the paper's bench (36,869 in 59 minutes)
ATTEMPTS_PER_SECOND = 36_869 / (59 * 60)

CONFIRMATION_RUNS = 10


@dataclass
class SearchResult:
    """Outcome of one optimal-parameter search."""

    guard: str
    found: bool
    params: Optional[GlitchParams] = None
    attempts: int = 0
    successes: int = 0
    confirmed_rate: float = 0.0
    candidates_tested: int = 0
    history: list[str] = field(default_factory=list)

    @property
    def modeled_minutes(self) -> float:
        """Bench-equivalent wall-clock time for this many attempts."""
        return self.attempts / (ATTEMPTS_PER_SECOND * 60)


class ParameterSearch:
    """Coarse-to-fine search for 10-out-of-10 glitch parameters."""

    def __init__(
        self,
        guard: str,
        fault_model=None,
        coarse_stride: int = 4,
        scan_cycles: int = 10,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        obs: Optional[Observer] = None,
        profile=None,
    ):
        from repro.firmware.loops import build_guard_firmware
        from repro.hw.models import model_label, resolve_fault_model

        self.guard = guard
        fault_model = resolve_fault_model(fault_model, profile)
        firmware = build_guard_firmware(guard, "single")
        self.glitcher = ClockGlitcher(firmware, fault_model=fault_model)
        self.coarse_stride = coarse_stride
        self.scan_cycles = scan_cycles
        self.obs = coerce_observer(obs)
        self.attempts = 0
        self.successes = 0
        self._max_attempts: Optional[int] = None
        self._checkpoint = None
        if checkpoint_dir is not None or resume:
            # every attempt outcome is logged in sequence; the search is
            # deterministic given those outcomes, so a resumed search
            # replays the recorded prefix without touching the glitcher
            # and reaches the interrupted state bit-identically
            meta = {
                "campaign": "search",
                "guard": guard,
                "coarse_stride": coarse_stride,
                "scan_cycles": scan_cycles,
                "fault_seed": fault_model.seed if fault_model is not None else None,
                "fault_model": model_label(fault_model),
            }
            self._checkpoint = open_campaign_checkpoint(
                checkpoint_dir, f"search-{guard}", meta, resume=resume,
                flush_every=256,
            )

    def close(self) -> None:
        """Flush and close the attempt-log checkpoint (if any)."""
        if self._checkpoint is not None:
            self._checkpoint.close()

    # ------------------------------------------------------------------

    def _exhausted(self) -> bool:
        return self._max_attempts is not None and self.attempts >= self._max_attempts

    def run(self, max_attempts: int = 200_000) -> SearchResult:
        """Search within an attempt budget.

        ``max_attempts`` bounds the whole search: both the coarse scan and
        the refinement phase abort once the budget is spent (only an
        in-flight confirmation run, at most ``CONFIRMATION_RUNS`` attempts,
        may overshoot).
        """
        self._max_attempts = max_attempts
        obs = self.obs
        # the per-attempt loop is the hot path — count totals as one
        # end-of-run delta instead of touching the observer per attempt
        attempts0, successes0 = self.attempts, self.successes
        try:
            with obs.trace(f"search[{self.guard}]", guard=self.guard,
                           max_attempts=max_attempts):
                result = self._run()
        finally:
            # an interrupted search keeps its attempt log for --resume
            if self._checkpoint is not None:
                self._checkpoint.flush()
            obs.count("search.attempts", self.attempts - attempts0)
            obs.count("search.successes", self.successes - successes0)
        if obs.enabled:
            obs.event("search", guard=self.guard, found=result.found,
                      attempts=result.attempts, successes=result.successes,
                      params=str(result.params) if result.params else None)
        return result

    def _run(self) -> SearchResult:
        result = SearchResult(guard=self.guard, found=False)

        # Phase 1: coarse scan with a wide (10-cycle) glitch.
        candidates = []
        for width in WIDTH_RANGE[:: self.coarse_stride]:
            if self._exhausted():
                break
            for offset in OFFSET_RANGE[:: self.coarse_stride]:
                if self._exhausted():
                    break
                params = GlitchParams(0, width, offset, repeat=self.scan_cycles)
                if self._attempt(params):
                    candidates.append((width, offset))
        result.history.append(f"coarse scan: {len(candidates)} candidate points")
        result.candidates_tested = len(candidates)

        # Phase 2: per-cycle refinement around each candidate.
        for width, offset in candidates:
            if self._exhausted():
                break
            for cycle in range(self.scan_cycles):
                if self._exhausted():
                    break
                refined = self._refine(width, offset, cycle)
                if refined is not None and not self._exhausted():
                    rate = self._confirm(refined)
                    result.history.append(
                        f"confirmed {refined} at {rate * 100:.0f}% over "
                        f"{CONFIRMATION_RUNS} runs"
                    )
                    if rate == 1.0:
                        result.found = True
                        result.params = refined
                        result.confirmed_rate = rate
                        result.attempts = self.attempts
                        result.successes = self.successes
                        return result
        result.attempts = self.attempts
        result.successes = self.successes
        return result

    # ------------------------------------------------------------------

    def _attempt(self, params: GlitchParams) -> bool:
        self.attempts += 1
        success = None
        if self._checkpoint is not None:
            recorded = self._checkpoint.get(str(self.attempts))
            if recorded is not MISSING:
                success = bool(recorded)  # replayed from the interrupted run
        if success is None:
            success = self.glitcher.run_attempt(params).category == "success"
            if self._checkpoint is not None:
                self._checkpoint.record(str(self.attempts), success)
        if success:
            self.successes += 1
        return success

    def _refine(self, width: int, offset: int, cycle: int) -> Optional[GlitchParams]:
        """Search the local neighbourhood of (width, offset) at one cycle."""
        best: Optional[GlitchParams] = None
        span = max(1, self.coarse_stride // 2)
        for dw in range(-span, span + 1):
            for do in range(-span, span + 1):
                if self._exhausted():
                    return best
                w = width + dw
                o = offset + do
                if w not in WIDTH_RANGE or o not in OFFSET_RANGE:
                    continue
                params = GlitchParams(cycle, w, o)
                if self._attempt(params):
                    best = params
                    # a single success here is promising; confirm outside
                    return best
        return best

    def _confirm(self, params: GlitchParams) -> float:
        wins = 0
        for _ in range(CONFIRMATION_RUNS):
            if self._attempt(params):
                wins += 1
        return wins / CONFIRMATION_RUNS


__all__ = ["ParameterSearch", "SearchResult", "ATTEMPTS_PER_SECOND", "CONFIRMATION_RUNS"]

"""Per-cycle pipeline tracing and ASCII visualisation.

The paper's Table I hinges on attributing each post-trigger clock cycle to
the instruction in flight ("Since the processor being glitched has a
three-stage pipeline, it is difficult to determine which instruction, and
which portion of the pipeline was affected by the glitch, but the location
of the glitch at least bounds the glitch's effects"). This module records
exactly that attribution — which instruction occupied the execute stage at
every cycle, what sat in decode and fetch — and renders it as a pipeline
diagram, optionally annotated with the glitch window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.pipeline import PipelinedCPU
from repro.isa.disassembler import disassemble_one


@dataclass
class CycleRecord:
    """Pipeline occupancy at one clock cycle."""

    cycle: int
    execute: Optional[str] = None
    execute_address: Optional[int] = None
    decode: Optional[str] = None
    fetch: Optional[str] = None


@dataclass
class PipelineTrace:
    records: list[CycleRecord] = field(default_factory=list)
    trigger_cycle: Optional[int] = None

    def window(self, start: int, length: int) -> list[CycleRecord]:
        """Records for ``length`` cycles starting at relative cycle ``start``
        (relative to the trigger if one was seen, else absolute)."""
        base = (self.trigger_cycle + 1) if self.trigger_cycle is not None else 0
        lo = base + start
        return [r for r in self.records if lo <= r.cycle < lo + length]

    def render(
        self,
        start: int = 0,
        length: int = 16,
        glitch_cycles: tuple[int, ...] = (),
    ) -> str:
        """ASCII pipeline diagram; ``glitch_cycles`` (relative) get a ⚡ mark."""
        base = (self.trigger_cycle + 1) if self.trigger_cycle is not None else 0
        rows = ["cycle | X | execute              | decode               | fetch"]
        rows.append("-" * 78)
        for record in self.window(start, length):
            rel = record.cycle - base
            mark = "⚡" if rel in glitch_cycles else " "
            rows.append(
                f"{rel:>5} | {mark} | {(record.execute or '-'):<20} | "
                f"{(record.decode or '-'):<20} | {record.fetch or '-'}"
            )
        return "\n".join(rows)


def trace_pipeline(
    board,
    max_cycles: int = 2000,
    stop_after_trigger: Optional[int] = None,
) -> PipelineTrace:
    """Run ``board`` (freshly reset) while recording pipeline occupancy.

    ``stop_after_trigger`` stops that many cycles after the first trigger
    (handy for tracing exactly the paper's 8-cycle loop window).
    """
    board.reset()
    pipeline: PipelinedCPU = board.pipeline
    trace = PipelineTrace()
    trigger_seen: list[int] = []
    board.trigger_callback = lambda value: trigger_seen.append(pipeline.cycles)

    while pipeline.cycles < max_cycles:
        if trigger_seen and stop_after_trigger is not None:
            if pipeline.cycles - trigger_seen[0] > stop_after_trigger:
                break
        record = CycleRecord(cycle=pipeline.cycles)
        slot = pipeline.execute_slot
        if slot is None and pipeline.decode_latch is not None:
            # a 1-cycle instruction will issue+execute this very cycle
            address, raw = pipeline.decode_latch
            if not (len(raw) == 1 and (raw[0] >> 11) == 0b11110):
                record.execute = _safe_disasm(raw)
                record.execute_address = address
        elif slot is not None:
            record.execute = _safe_disasm(slot.raw)
            record.execute_address = slot.address
        if pipeline.decode_latch is not None:
            record.decode = _safe_disasm(pipeline.decode_latch[1])
        if pipeline.fetch_latch is not None:
            record.fetch = _safe_disasm((pipeline.fetch_latch[1],))
        trace.records.append(record)
        try:
            pipeline.step_cycle()
        except Exception:
            break
        if pipeline.stopped_at is not None or board.cpu.halted:
            break
    if trigger_seen:
        trace.trigger_cycle = trigger_seen[0]
    board.persist_nonvolatile()
    return trace


def _safe_disasm(raw: tuple[int, ...]) -> str:
    return disassemble_one(raw[0], raw[1] if len(raw) == 2 else None).split(";")[0].strip()


__all__ = ["CycleRecord", "PipelineTrace", "trace_pipeline"]

"""Voltage glitching — the other low-cost technique the paper covers.

§II: "In practice, voltage glitching, which is done by either increasing
or decreasing the voltage for a brief period of time, and clock glitching
... are the most common glitching techniques." The tuning parameters
differ (§II-B: "the duration and voltage of the attack"), and §V-C notes a
physical constraint clock glitching doesn't have: "the time required to
recharge a capacitor could be greater than the time needed for the two
glitches, which would prohibit EM or voltage glitching".

This module adapts the clock-glitch machinery to a voltage model:

- parameters are (``ext_offset``, ``dip`` %, ``duration`` %), mapped onto
  the shared susceptibility field;
- the crash halo is wider (brown-out is the dominant failure of supply
  dips);
- a recharge constraint enforces a dead time between glitches: a second
  glitch within ``recharge_cycles`` of the first never bites, which is
  exactly why redundant-check defenses are *stronger* against voltage
  attackers than against clock attackers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GlitchConfigError
from repro.hw.clock import GlitchParams
from repro.hw.faults import FaultEffect, FaultModel, PipelineView

#: capacitor recharge dead time (cycles) — at 48 MHz even a fast driver
#: needs several microseconds to restore the rail
DEFAULT_RECHARGE_CYCLES = 48


@dataclass(frozen=True)
class VoltageGlitchParams:
    """One voltage glitch: dip the rail by ``dip``% for ``duration``%-of-cycle."""

    ext_offset: int
    dip: int        # [-49, 49]: negative = undervolt, positive = overvolt
    duration: int   # [-49, 49]: ChipWhisperer-style normalized duration knob

    def __post_init__(self) -> None:
        if self.ext_offset < 0:
            raise GlitchConfigError(f"ext_offset must be non-negative, got {self.ext_offset}")
        if not -49 <= self.dip <= 49:
            raise GlitchConfigError(f"dip {self.dip} outside [-49, 49]")
        if not -49 <= self.duration <= 49:
            raise GlitchConfigError(f"duration {self.duration} outside [-49, 49]")

    def as_clock_params(self) -> GlitchParams:
        """Map onto the shared (width, offset) susceptibility field."""
        return GlitchParams(ext_offset=self.ext_offset, width=self.duration, offset=self.dip)


class VoltageFaultModel(FaultModel):
    """The clock fault model re-parameterised for supply glitching.

    Undervolting (negative dip) is where the action is, crashes dominate
    more of the parameter space, and the recharge constraint suppresses
    rapid-succession glitches entirely.
    """

    def __init__(
        self,
        seed: int = 0x0BAD_C0DE,
        recharge_cycles: int = DEFAULT_RECHARGE_CYCLES,
        **kwargs,
    ):
        defaults = dict(
            fault_amplitude=0.85,
            crash_amplitude=0.60,       # brown-out halo is fatter
            width_center=-24.0,         # deep-but-short undervolt sweet spot
            width_sigma=8.0,
            offset_center=-18.0,
            offset_sigma=10.0,
            follow_up_attenuation=0.0,  # superseded by the recharge dead time
        )
        defaults.update(kwargs)
        super().__init__(seed=seed, **defaults)
        self.recharge_cycles = recharge_cycles
        self._last_bite_cycle: Optional[int] = None

    def reset_recharge(self) -> None:
        self._last_bite_cycle = None

    def begin_run(self) -> None:
        """A fresh run starts with the injection capacitor fully charged."""
        self.reset_recharge()

    def effect_at(
        self,
        params: GlitchParams,
        rel_cycle: int,
        view: PipelineView,
        occurrence: int,
        window_index: int = 0,
        absolute_cycle: Optional[int] = None,
    ) -> Optional[FaultEffect]:
        """Like the base model, but a bite discharges the injection capacitor:
        nothing bites again for ``recharge_cycles``."""
        # The dead time is measured in *cycles*. Prefer the board clock;
        # without one, ``rel_cycle`` is still in cycle units (the glitcher
        # always passes ``absolute_cycle``; direct callers may not).
        # Comparing the *occurrence count* against the cycle budget — the
        # old fallback — wrongly capped every such caller at one bite per
        # ~48 realized effects regardless of elapsed time.
        marker = absolute_cycle if absolute_cycle is not None else rel_cycle
        if (
            self._last_bite_cycle is not None
            and marker - self._last_bite_cycle < self.recharge_cycles
        ):
            return None
        effect = super().effect_at(params, rel_cycle, view, occurrence, window_index=0)
        if effect is not None:
            self._last_bite_cycle = marker
        return effect


class VoltageGlitcher:
    """ChipWhisperer-crowbar-style controller over the shared board machinery.

    ``fault_model`` accepts a pre-built model or a registered model name,
    and ``profile`` a :data:`repro.hw.models.PROFILES` calibration name;
    by default a fresh :class:`VoltageFaultModel` is used.  (The old
    constructor hard-coded the default and raised ``TypeError`` when a
    caller passed ``fault_model`` through ``**glitcher_kwargs``.)
    """

    def __init__(self, firmware, fault_model=None, profile=None, **glitcher_kwargs):
        from repro.hw.glitcher import ClockGlitcher
        from repro.hw.models import resolve_fault_model

        self.fault_model = (
            resolve_fault_model(fault_model, profile) or VoltageFaultModel()
        )
        self._inner = ClockGlitcher(
            firmware, fault_model=self.fault_model, **glitcher_kwargs
        )

    @property
    def board(self):
        return self._inner.board

    def run_attempt(self, params: VoltageGlitchParams):
        """Fire one voltage glitch and classify the outcome."""
        self.fault_model.begin_run()
        return self._inner.run_attempt(params.as_clock_params())

    def run_unglitched(self, max_cycles: int = 10_000):
        return self._inner.run_unglitched(max_cycles=max_cycles)


__all__ = [
    "VoltageGlitchParams",
    "VoltageFaultModel",
    "VoltageGlitcher",
    "DEFAULT_RECHARGE_CYCLES",
]

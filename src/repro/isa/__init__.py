"""16-bit ARM Thumb (ARMv6-M-flavoured) instruction-set substrate.

This package replaces the Capstone/Keystone/Unicorn toolchain used by the
paper's emulation framework (Section IV) with a self-contained, table-driven
implementation:

- :mod:`repro.isa.registers` / :mod:`repro.isa.conditions` — architectural
  naming and condition-code semantics.
- :mod:`repro.isa.instruction` — the decoded-instruction data model.
- :mod:`repro.isa.decoder` — halfword(s) → :class:`Instruction`, raising
  :class:`repro.errors.InvalidInstruction` on undefined encodings, which is
  how glitch campaigns observe *Invalid Instruction* outcomes.
- :mod:`repro.isa.encoder` — :class:`Instruction` fields → halfword(s).
- :mod:`repro.isa.assembler` — two-pass text assembler with labels,
  directives, and ``ldr rX, =imm`` literal pools.
- :mod:`repro.isa.disassembler` — linear-sweep disassembly for post-mortem
  inspection of corrupted code.
"""

from repro.isa.registers import (
    LR,
    PC,
    SP,
    register_name,
    register_number,
)
from repro.isa.conditions import (
    CONDITION_NAMES,
    condition_holds,
    condition_name,
    condition_number,
)
from repro.isa.instruction import Instruction
from repro.isa.decoder import decode, decode_stream
from repro.isa.encoder import encode
from repro.isa.assembler import Assembler, AssembledProgram, assemble
from repro.isa.disassembler import disassemble, disassemble_one

__all__ = [
    "SP",
    "LR",
    "PC",
    "register_name",
    "register_number",
    "CONDITION_NAMES",
    "condition_holds",
    "condition_name",
    "condition_number",
    "Instruction",
    "decode",
    "decode_stream",
    "encode",
    "Assembler",
    "AssembledProgram",
    "assemble",
    "disassemble",
    "disassemble_one",
]

"""A two-pass Thumb-16 assembler.

Replaces Keystone in the paper's pipeline. Supports the syntax used
throughout the experiments and by the MiniC code generator:

- labels (``loop:``), comments (``;``, ``@``, ``//``), ``.equ`` constants;
- directives ``.org``, ``.word``, ``.hword``, ``.byte``, ``.space``,
  ``.align`` (to 4), ``.balign n``, ``.pool``/``.ltorg``, ``.global`` (noop);
- the ``ldr rX, =value`` literal-pool pseudo-instruction (used by the paper's
  ``while (a != 0xD3B9AEC6)`` firmware, which compiles to
  ``LDR R3, =0xD3B9AEC6``);
- ``movs rd, rs`` (encoded as ``lsls rd, rs, #0``), ``mov rd, #imm``
  (alias of ``movs``), ``neg`` alias, push/pop register ranges (``r4-r7``).

Branch targets and ``adr`` operands may be labels or ``label+offset``
expressions; numeric immediates accept decimal, hex, binary, and ``'c'``
character literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bits import halfwords_to_bytes
from repro.errors import AssemblerError, EncodingError
from repro.isa.conditions import CONDITION_NAMES
from repro.isa.encoder import encode
from repro.isa.instruction import Instruction
from repro.isa.registers import LR, PC, SP, register_number

_FMT4_MNEMONICS = {
    "ands", "eors", "adcs", "sbcs", "rors", "tst", "negs", "cmn",
    "orrs", "muls", "bics", "mvns",
}
_EXTEND_REV = {"sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh"}
_HINTS = {"nop", "yield", "wfe", "wfi", "sev", "cps"}
_MEM_MNEMONICS = {"ldr", "str", "ldrb", "strb", "ldrh", "strh", "ldrsb", "ldrsh"}
_BRANCH_CONDS = {f"b{name}": i for i, name in enumerate(CONDITION_NAMES)}
_BRANCH_CONDS["bhs"] = _BRANCH_CONDS["bcs"]
_BRANCH_CONDS["blo"] = _BRANCH_CONDS["bcc"]


@dataclass
class AssembledProgram:
    """The output of one assembly run."""

    base: int
    code: bytes
    symbols: dict[str, int]
    listing: list[tuple[int, int, str]] = field(default_factory=list)

    @property
    def halfwords(self) -> list[int]:
        from repro.bits import bytes_to_halfwords

        return bytes_to_halfwords(self.code)

    @property
    def end(self) -> int:
        return self.base + len(self.code)

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise AssemblerError(f"unknown symbol: {symbol!r}") from None


@dataclass
class _Statement:
    kind: str  # "instr" | "data" | "literal_load"
    line_no: int
    text: str
    address: int = 0
    size: int = 0
    # instr payload
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    # data payload
    data: bytes = b""
    # literal payload
    literal_expr: str = ""
    literal_rd: int = 0
    pool_address: Optional[int] = None


class Assembler:
    """Two-pass assembler; construct once per source, call :meth:`assemble`."""

    def __init__(self, source: str, base: int = 0):
        self.source = source
        self.base = base
        self.symbols: dict[str, int] = {}
        self.equates: dict[str, int] = {}
        self.statements: list[_Statement] = []

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def assemble(self) -> AssembledProgram:
        self._pass_one()
        code = self._pass_two()
        listing = [(s.address, s.size, s.text) for s in self.statements if s.size]
        return AssembledProgram(base=self.base, code=code, symbols=dict(self.symbols), listing=listing)

    # ------------------------------------------------------------------
    # pass 1: addresses, sizes, labels, literal pools
    # ------------------------------------------------------------------

    def _pass_one(self) -> None:
        location = self.base
        pending_literals: list[_Statement] = []

        def flush_pool() -> int:
            nonlocal location
            if not pending_literals:
                return location
            if location % 4:
                pad = _Statement(kind="data", line_no=0, text=".align (pool)", data=b"\x00\x00")
                pad.address, pad.size = location, 2
                self.statements.append(pad)
                location += 2
            assigned: dict[str, int] = {}
            for stmt in pending_literals:
                key = stmt.literal_expr
                if key not in assigned:
                    assigned[key] = location
                    entry = _Statement(
                        kind="data", line_no=stmt.line_no, text=f".word {key} (literal)",
                        literal_expr=key,
                    )
                    entry.address, entry.size = location, 4
                    self.statements.append(entry)
                    location += 4
                stmt.pool_address = assigned[key]
            pending_literals.clear()
            return location

        for line_no, raw_line in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            while line:
                label, line = _take_label(line)
                if label is None:
                    break
                if label in self.symbols or label in self.equates:
                    raise AssemblerError(f"duplicate label {label!r} (line {line_no})")
                self.symbols[label] = location
            if not line:
                continue

            if line.startswith("."):
                location = self._directive_pass_one(line, line_no, location, flush_pool)
                continue

            mnemonic, operands = _split_instruction(line)
            stmt = _Statement(kind="instr", line_no=line_no, text=line, mnemonic=mnemonic, operands=operands)
            if mnemonic == "ldr" and len(operands) == 2 and operands[1].startswith("="):
                stmt.kind = "literal_load"
                stmt.literal_rd = register_number(operands[0])
                stmt.literal_expr = operands[1][1:].strip()
                pending_literals.append(stmt)
                stmt.size = 2
            else:
                stmt.size = 4 if mnemonic == "bl" else 2
            stmt.address = location
            location += stmt.size
            self.statements.append(stmt)

        flush_pool()

    def _directive_pass_one(self, line: str, line_no: int, location: int, flush_pool) -> int:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""

        def add_data(data_len: int, text: str, exprs: list[str] | None = None, unit: int = 0) -> None:
            stmt = _Statement(kind="data", line_no=line_no, text=text)
            stmt.address, stmt.size = location, data_len
            if exprs is not None:
                stmt.operands = exprs
                stmt.data = b""
                stmt.mnemonic = name
            self.statements.append(stmt)

        if name in (".pool", ".ltorg"):
            return flush_pool()
        if name == ".org":
            target = self._evaluate(rest, line_no)
            if target < location:
                raise AssemblerError(f".org moves backwards ({target:#x} < {location:#x}) at line {line_no}")
            if target > location:
                add_data(target - location, line)
            return target
        if name == ".equ":
            label, _, expr = rest.partition(",")
            if not expr:
                raise AssemblerError(f".equ requires 'name, value' (line {line_no})")
            self.equates[label.strip()] = self._evaluate(expr, line_no)
            return location
        if name == ".global":
            return location
        if name == ".align":
            pad = (-location) % 4
            if pad:
                add_data(pad, line)
            return location + pad
        if name == ".balign":
            boundary = self._evaluate(rest, line_no)
            if boundary <= 0:
                raise AssemblerError(f".balign boundary must be positive (line {line_no})")
            pad = (-location) % boundary
            if pad:
                add_data(pad, line)
            return location + pad
        if name == ".space":
            count_expr, _, __ = rest.partition(",")
            count = self._evaluate(count_expr, line_no)
            add_data(count, line)
            return location + count
        if name in (".word", ".hword", ".byte"):
            unit = {".word": 4, ".hword": 2, ".byte": 1}[name]
            exprs = [part.strip() for part in rest.split(",") if part.strip()]
            if not exprs:
                raise AssemblerError(f"{name} requires at least one value (line {line_no})")
            add_data(unit * len(exprs), line, exprs=exprs, unit=unit)
            return location + unit * len(exprs)
        raise AssemblerError(f"unknown directive {name!r} (line {line_no})")

    # ------------------------------------------------------------------
    # pass 2: encoding
    # ------------------------------------------------------------------

    def _pass_two(self) -> bytes:
        out = bytearray()
        for stmt in self.statements:
            if stmt.address != self.base + len(out):
                raise AssemblerError(
                    f"internal layout mismatch at line {stmt.line_no}: "
                    f"{stmt.address:#x} != {self.base + len(out):#x}"
                )
            if stmt.kind == "data":
                out.extend(self._encode_data(stmt))
            elif stmt.kind == "literal_load":
                out.extend(self._encode_literal_load(stmt))
            else:
                out.extend(self._encode_instruction(stmt))
        return bytes(out)

    def _encode_data(self, stmt: _Statement) -> bytes:
        if stmt.literal_expr:
            value = self._evaluate(stmt.literal_expr, stmt.line_no) & 0xFFFFFFFF
            return value.to_bytes(4, "little")
        if stmt.mnemonic in (".word", ".hword", ".byte"):
            unit = {".word": 4, ".hword": 2, ".byte": 1}[stmt.mnemonic]
            data = bytearray()
            for expr in stmt.operands:
                value = self._evaluate(expr, stmt.line_no) & ((1 << (unit * 8)) - 1)
                data.extend(value.to_bytes(unit, "little"))
            return bytes(data)
        return b"\x00" * stmt.size

    def _encode_literal_load(self, stmt: _Statement) -> bytes:
        if stmt.pool_address is None:
            raise AssemblerError(f"literal for line {stmt.line_no} was never pooled")
        pc = (stmt.address + 4) & ~3
        offset = stmt.pool_address - pc
        if offset < 0 or offset > 1020 or offset % 4:
            raise AssemblerError(
                f"literal pool out of range for load at line {stmt.line_no} (offset {offset})"
            )
        instr = Instruction(mnemonic="ldr", fmt=6, rd=stmt.literal_rd, base=PC, imm=offset)
        return halfwords_to_bytes(encode(instr))

    def _encode_instruction(self, stmt: _Statement) -> bytes:
        try:
            instr = self._build_instruction(stmt)
            return halfwords_to_bytes(encode(instr))
        except (EncodingError, ValueError) as exc:
            raise AssemblerError(f"line {stmt.line_no}: {stmt.text!r}: {exc}") from exc

    # ------------------------------------------------------------------
    # instruction construction
    # ------------------------------------------------------------------

    def _build_instruction(self, stmt: _Statement) -> Instruction:
        m = stmt.mnemonic
        ops = stmt.operands
        line_no = stmt.line_no

        if m in _HINTS and not ops:
            return Instruction(mnemonic=m, fmt=20, imm=2 if m == "cps" else None)
        if m in _EXTEND_REV:
            return Instruction(mnemonic=m, fmt=20, rd=register_number(ops[0]), rs=register_number(ops[1]))
        if m in ("svc", "swi", "bkpt"):
            return Instruction(mnemonic="svc" if m == "swi" else m, fmt=17, imm=self._imm(ops[0], line_no))
        if m in ("bx", "blx"):
            return Instruction(mnemonic=m, fmt=5, rs=register_number(ops[0]))
        if m == "bl":
            return Instruction(mnemonic="bl", fmt=19, size=4, imm=self._branch_target(ops[0], stmt))
        if m == "b":
            return Instruction(mnemonic="b", fmt=18, imm=self._branch_target(ops[0], stmt))
        if m in _BRANCH_CONDS:
            cond = _BRANCH_CONDS[m]
            return Instruction(
                mnemonic=f"b{CONDITION_NAMES[cond]}", fmt=16, cond=cond,
                imm=self._branch_target(ops[0], stmt),
            )
        if m in ("push", "pop"):
            return Instruction(mnemonic=m, fmt=14, reg_list=self._reg_list(ops, line_no))
        if m in ("stmia", "ldmia", "stm", "ldm"):
            canonical = {"stm": "stmia", "ldm": "ldmia"}.get(m, m)
            base_text = ops[0]
            if not base_text.endswith("!"):
                raise AssemblerError(f"{m} requires writeback 'rb!' (line {line_no})")
            base = register_number(base_text[:-1])
            return Instruction(
                mnemonic=canonical, fmt=15, base=base,
                reg_list=self._reg_list(ops[1:], line_no),
            )
        if m == "adr":
            return self._build_adr(ops, stmt)
        if m in _MEM_MNEMONICS:
            return self._build_memory(m, ops, line_no)
        if m in ("lsl", "lsls", "lsr", "lsrs", "asr", "asrs") and len(ops) == 3:
            canonical = m if m.endswith("s") else m + "s"
            return Instruction(
                mnemonic=canonical, fmt=1,
                rd=register_number(ops[0]), rs=register_number(ops[1]),
                imm=self._imm(ops[2], line_no),
            )
        if m in ("lsl", "lsls", "lsr", "lsrs", "asr", "asrs", "ror", "rors") and len(ops) == 2:
            canonical = m if m.endswith("s") else m + "s"
            return Instruction(
                mnemonic=canonical, fmt=4,
                rd=register_number(ops[0]), rs=register_number(ops[1]),
            )
        if m in ("add", "adds", "sub", "subs"):
            return self._build_add_sub(m, ops, line_no)
        if m in ("mov", "movs"):
            return self._build_mov(m, ops, line_no)
        if m == "cmp":
            return self._build_cmp(ops, line_no)
        if m in ("neg", "negs"):
            return Instruction(mnemonic="negs", fmt=4, rd=register_number(ops[0]), rs=register_number(ops[1]))
        if m in _FMT4_MNEMONICS or (m + "s") in _FMT4_MNEMONICS:
            canonical = m if m in _FMT4_MNEMONICS else m + "s"
            return Instruction(
                mnemonic=canonical, fmt=4,
                rd=register_number(ops[0]), rs=register_number(ops[1]),
            )
        raise AssemblerError(f"unknown mnemonic {m!r} (line {line_no})")

    def _build_add_sub(self, m: str, ops: list[str], line_no: int) -> Instruction:
        is_sub = m.startswith("sub")
        if ops[0].lower() == "sp":
            # add/sub sp, #imm  (also accepts 'add sp, sp, #imm')
            imm_text = ops[-1]
            return Instruction(
                mnemonic="sub_sp" if is_sub else "add_sp", fmt=13,
                imm=self._imm(imm_text, line_no),
            )
        rd = register_number(ops[0])
        if len(ops) == 3:
            second = ops[1].lower()
            if second == "sp":
                if is_sub:
                    raise AssemblerError(f"'sub rd, sp, #imm' is not encodable in Thumb-16 (line {line_no})")
                return Instruction(mnemonic="add_sp_imm", fmt=12, rd=rd, base=SP, imm=self._imm(ops[2], line_no))
            if second == "pc":
                return Instruction(mnemonic="adr", fmt=12, rd=rd, base=PC, imm=self._imm(ops[2], line_no))
            rs = register_number(ops[1])
            if ops[2].startswith("#") or ops[2][0].isdigit() or ops[2][0] == "-":
                return Instruction(
                    mnemonic="subs" if is_sub else "adds", fmt=2,
                    rd=rd, rs=rs, imm=self._imm(ops[2], line_no),
                )
            return Instruction(
                mnemonic="subs" if is_sub else "adds", fmt=2,
                rd=rd, rs=rs, ro=register_number(ops[2]),
            )
        # two operands: add rd, #imm8 | add rd, rs (high registers → fmt 5)
        if ops[1].startswith("#") or ops[1][0].isdigit():
            return Instruction(mnemonic="subs" if is_sub else "adds", fmt=3, rd=rd, imm=self._imm(ops[1], line_no))
        rs = register_number(ops[1])
        if is_sub:
            return Instruction(mnemonic="subs", fmt=2, rd=rd, rs=rd, ro=rs)
        if m == "adds" and rd < 8 and rs < 8:
            return Instruction(mnemonic="adds", fmt=2, rd=rd, rs=rd, ro=rs)
        return Instruction(mnemonic="add", fmt=5, rd=rd, rs=rs)

    def _build_mov(self, m: str, ops: list[str], line_no: int) -> Instruction:
        rd = register_number(ops[0])
        if ops[1].startswith("#") or ops[1][0].isdigit():
            return Instruction(mnemonic="movs", fmt=3, rd=rd, imm=self._imm(ops[1], line_no))
        rs = register_number(ops[1])
        if m == "movs" and rd < 8 and rs < 8:
            # UAL 'movs rd, rs' is the flag-setting shift-by-zero encoding.
            return Instruction(mnemonic="lsls", fmt=1, rd=rd, rs=rs, imm=0)
        return Instruction(mnemonic="mov", fmt=5, rd=rd, rs=rs)

    def _build_cmp(self, ops: list[str], line_no: int) -> Instruction:
        rd = register_number(ops[0])
        if ops[1].startswith("#") or ops[1][0].isdigit():
            return Instruction(mnemonic="cmp", fmt=3, rd=rd, imm=self._imm(ops[1], line_no))
        rs = register_number(ops[1])
        if rd < 8 and rs < 8:
            return Instruction(mnemonic="cmp", fmt=4, rd=rd, rs=rs)
        return Instruction(mnemonic="cmp", fmt=5, rd=rd, rs=rs)

    def _build_adr(self, ops: list[str], stmt: _Statement) -> Instruction:
        rd = register_number(ops[0])
        expr = ops[1].lstrip("#").strip()
        value = self._evaluate(expr, stmt.line_no)
        if expr and (expr[0].isalpha() or expr[0] in "._"):
            # label form: encode the offset from the aligned PC
            pc = (stmt.address + 4) & ~3
            offset = value - pc
        else:
            # raw-immediate form: the offset is given directly
            offset = value
        return Instruction(mnemonic="adr", fmt=12, rd=rd, base=PC, imm=offset)

    def _build_memory(self, m: str, ops: list[str], line_no: int) -> Instruction:
        if len(ops) != 2 or not ops[1].startswith("["):
            raise AssemblerError(f"{m} expects 'rd, [base...]' (line {line_no})")
        rd = register_number(ops[0])
        inner = ops[1].strip()
        if not inner.endswith("]"):
            raise AssemblerError(f"unterminated address operand (line {line_no})")
        parts = [part.strip() for part in inner[1:-1].split(",")]
        base = register_number(parts[0])
        if len(parts) == 1:
            offset_imm: Optional[int] = 0
            offset_reg: Optional[int] = None
        elif parts[1].startswith("#") or parts[1][0].isdigit() or parts[1][0] == "-":
            offset_imm = self._imm(parts[1], line_no)
            offset_reg = None
        else:
            offset_imm = None
            offset_reg = register_number(parts[1])

        if offset_reg is not None:
            fmt = 8 if m in ("strh", "ldrh", "ldrsb", "ldrsh") else 7
            return Instruction(mnemonic=m, fmt=fmt, rd=rd, base=base, ro=offset_reg)
        if m in ("ldrsb", "ldrsh"):
            raise AssemblerError(f"{m} only supports register offsets (line {line_no})")
        if base == SP:
            if m not in ("ldr", "str"):
                raise AssemblerError(f"{m} has no SP-relative encoding (line {line_no})")
            return Instruction(mnemonic=m, fmt=11, rd=rd, base=SP, imm=offset_imm)
        if base == PC:
            if m != "ldr":
                raise AssemblerError(f"{m} has no PC-relative encoding (line {line_no})")
            return Instruction(mnemonic="ldr", fmt=6, rd=rd, base=PC, imm=offset_imm)
        if m in ("strh", "ldrh"):
            return Instruction(mnemonic=m, fmt=10, rd=rd, base=base, imm=offset_imm)
        return Instruction(mnemonic=m, fmt=9, rd=rd, base=base, imm=offset_imm)

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------

    def _reg_list(self, ops: list[str], line_no: int) -> tuple[int, ...]:
        text = ", ".join(ops).strip()
        if not text.startswith("{") or not text.endswith("}"):
            raise AssemblerError(f"expected {{reglist}} (line {line_no})")
        regs: list[int] = []
        for part in text[1:-1].split(","):
            part = part.strip()
            if not part:
                continue
            if "-" in part:
                lo_text, _, hi_text = part.partition("-")
                lo = register_number(lo_text)
                hi = register_number(hi_text)
                if hi < lo:
                    raise AssemblerError(f"descending register range {part!r} (line {line_no})")
                regs.extend(range(lo, hi + 1))
            else:
                regs.append(register_number(part))
        return tuple(sorted(set(regs)))

    def _imm(self, text: str, line_no: int) -> int:
        return self._evaluate(text.lstrip("#"), line_no)

    def _branch_target(self, text: str, stmt: _Statement) -> int:
        target = self._evaluate(text, stmt.line_no)
        return target - (stmt.address + 4)

    def _evaluate(self, expression: str, line_no: int) -> int:
        """Evaluate an integer / label / ``label±const`` expression."""
        expr = expression.strip()
        if not expr:
            raise AssemblerError(f"empty expression (line {line_no})")
        for operator in ("+", "-"):
            idx = _find_operator(expr, operator)
            if idx > 0:
                left = self._evaluate(expr[:idx], line_no)
                right = self._evaluate(expr[idx + 1:], line_no)
                return left + right if operator == "+" else left - right
        if expr[0] == "-":
            return -self._evaluate(expr[1:], line_no)
        if expr[0] == "'" and expr.endswith("'") and len(expr) >= 3:
            return ord(expr[1:-1])
        try:
            return int(expr, 0)
        except ValueError:
            pass
        if expr in self.equates:
            return self.equates[expr]
        if expr in self.symbols:
            return self.symbols[expr]
        raise AssemblerError(f"undefined symbol {expr!r} (line {line_no})")


def assemble(source: str, base: int = 0) -> AssembledProgram:
    """Assemble ``source`` at ``base`` and return the program image."""
    return Assembler(source, base=base).assemble()


# ----------------------------------------------------------------------
# lexical helpers
# ----------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    for marker in (";", "@", "//"):
        idx = _find_outside_quotes(line, marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _find_outside_quotes(line: str, marker: str) -> int:
    in_quote = False
    for i in range(len(line) - len(marker) + 1):
        ch = line[i]
        if ch == "'":
            in_quote = not in_quote
        if not in_quote and line.startswith(marker, i):
            return i
    return -1


def _take_label(line: str) -> tuple[Optional[str], str]:
    idx = line.find(":")
    if idx <= 0:
        return None, line
    candidate = line[:idx].strip()
    if candidate and all(c.isalnum() or c in "._$" for c in candidate) and not candidate[0].isdigit():
        return candidate, line[idx + 1:].strip()
    return None, line


def _split_instruction(line: str) -> tuple[str, list[str]]:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if len(parts) == 1:
        return mnemonic, []
    operand_text = parts[1]
    operands: list[str] = []
    depth = 0
    current = []
    for ch in operand_text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return mnemonic, operands


def _find_operator(expr: str, operator: str) -> int:
    """Index of a top-level binary operator (skipping a leading sign and 0x/0b prefixes)."""
    for i in range(len(expr) - 1, 0, -1):
        if expr[i] == operator and expr[i - 1] not in "+-xXbB(":
            return i
    return -1


__all__ = ["Assembler", "AssembledProgram", "assemble"]

"""ARM condition codes and their evaluation against the NZCV flags.

The paper's Figure 2 sweeps every conditional branch of Thumb: ``beq``,
``bne``, ``bcs``, ``bcc``, ``bmi``, ``bpl``, ``bvs``, ``bvc``, ``bhi``,
``bls``, ``bge``, ``blt``, ``bgt``, ``ble`` — condition numbers 0-13.
Number 14 (``AL``) is not encodable as a Thumb conditional branch (the
encoding is UDF on ARMv6-M) and 15 selects the SVC/SWI instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

CONDITION_NAMES = (
    "eq",  # 0  Z == 1
    "ne",  # 1  Z == 0
    "cs",  # 2  C == 1 (aka hs)
    "cc",  # 3  C == 0 (aka lo)
    "mi",  # 4  N == 1
    "pl",  # 5  N == 0
    "vs",  # 6  V == 1
    "vc",  # 7  V == 0
    "hi",  # 8  C == 1 and Z == 0
    "ls",  # 9  C == 0 or Z == 1
    "ge",  # 10 N == V
    "lt",  # 11 N != V
    "gt",  # 12 Z == 0 and N == V
    "le",  # 13 Z == 1 or N != V
)

_ALIASES = {"hs": "cs", "lo": "cc"}

#: All conditional-branch mnemonics evaluated in Figure 2, paper order aside.
BRANCH_MNEMONICS = tuple(f"b{name}" for name in CONDITION_NAMES)


@dataclass(frozen=True)
class Flags:
    """The NZCV application-status flags."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def replace(self, **kwargs: bool) -> "Flags":
        values = {"n": self.n, "z": self.z, "c": self.c, "v": self.v}
        values.update(kwargs)
        return Flags(**values)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "".join(
            letter.upper() if value else letter
            for letter, value in zip("nzcv", (self.n, self.z, self.c, self.v))
        )


def condition_name(number: int) -> str:
    """Name of condition ``number`` (0-13)."""
    if not 0 <= number < len(CONDITION_NAMES):
        raise ValueError(f"condition number out of range: {number}")
    return CONDITION_NAMES[number]


def condition_number(name: str) -> int:
    """Parse a condition name (accepts ``hs``/``lo`` aliases)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return CONDITION_NAMES.index(key)
    except ValueError:
        raise ValueError(f"unknown condition name: {name!r}") from None


def condition_holds(number: int, flags: Flags) -> bool:
    """Evaluate condition ``number`` against ``flags`` per the ARM ARM."""
    n, z, c, v = flags.n, flags.z, flags.c, flags.v
    if number == 0:
        return z
    if number == 1:
        return not z
    if number == 2:
        return c
    if number == 3:
        return not c
    if number == 4:
        return n
    if number == 5:
        return not n
    if number == 6:
        return v
    if number == 7:
        return not v
    if number == 8:
        return c and not z
    if number == 9:
        return (not c) or z
    if number == 10:
        return n == v
    if number == 11:
        return n != v
    if number == 12:
        return (not z) and n == v
    if number == 13:
        return z or n != v
    if number == 14:
        return True
    raise ValueError(f"condition number out of range: {number}")


def flags_where_taken(number: int) -> Flags:
    """Return one flag assignment under which condition ``number`` holds.

    Used by the glitch-emulation snippet generator to set up a branch that
    *would* be taken in the unglitched run.
    """
    for n in (False, True):
        for z in (False, True):
            for c in (False, True):
                for v in (False, True):
                    flags = Flags(n=n, z=z, c=c, v=v)
                    if condition_holds(number, flags):
                        return flags
    raise ValueError(f"no satisfying flags for condition {number}")  # pragma: no cover

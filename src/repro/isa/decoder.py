"""Thumb-16 decoder covering the 19 ARM7TDMI formats plus the ARMv6-M extras.

Undefined encodings raise :class:`repro.errors.InvalidInstruction` — the
glitch-emulation campaign (Section IV) relies on this to classify corrupted
instructions, mirroring how the paper's Unicorn-based framework surfaced
*Invalid Instruction* errors.

``zero_is_invalid`` implements the paper's hypothesised ISA hardening tweak
(Figure 2c): architecturally, ``0x0000`` decodes to ``lsls r0, r0, #0`` —
``mov r0, r0``, a perfect NOP — which is exactly what makes AND-model
(1→0) glitches so effective. Decoding it as invalid instead tests whether
that NOP-at-zero property is the root cause of the AND model's success.
"""

from __future__ import annotations

from typing import Iterator

from repro.bits import bits, sign_extend
from repro.errors import InvalidInstruction
from repro.isa.instruction import Instruction
from repro.isa.registers import PC, SP

_FMT4_OPS = (
    "ands", "eors", "lsls", "lsrs", "asrs", "adcs", "sbcs", "rors",
    "tst", "negs", "cmp", "cmn", "orrs", "muls", "bics", "mvns",
)

_FMT7_8_OPS = ("str", "strh", "strb", "ldrsb", "ldr", "ldrh", "ldrb", "ldrsh")

_HINTS = {0x0: "nop", 0x1: "yield", 0x2: "wfe", 0x3: "wfi", 0x4: "sev"}


def decode(
    halfword: int,
    next_halfword: int | None = None,
    zero_is_invalid: bool = False,
) -> Instruction:
    """Decode one Thumb instruction starting at ``halfword``.

    ``next_halfword`` must be supplied when the instruction might be the
    32-bit ``bl`` pair; if the first halfword is a BL prefix and
    ``next_halfword`` is missing or not a BL suffix, the encoding is invalid.
    """
    hw = halfword & 0xFFFF
    if zero_is_invalid and hw == 0:
        raise InvalidInstruction("0x0000 configured as invalid (hardened ISA)")

    top3 = bits(hw, 15, 13)

    if top3 == 0b000:
        return _decode_shift_add_sub(hw)
    if top3 == 0b001:
        return _decode_imm8(hw)
    if top3 == 0b010:
        return _decode_group_010(hw)
    if top3 == 0b011:
        return _decode_ldst_imm5(hw)
    if top3 == 0b100:
        return _decode_ldst_half_sp(hw)
    if top3 == 0b101:
        return _decode_adr_misc(hw)
    if top3 == 0b110:
        return _decode_multiple_condbranch(hw)
    return _decode_branches(hw, next_halfword)


def decode_stream(
    halfwords: list[int],
    zero_is_invalid: bool = False,
) -> Iterator[tuple[int, Instruction]]:
    """Linear-sweep decode of a halfword list, yielding ``(index, instruction)``.

    BL pairs consume two halfwords. Invalid encodings propagate as
    :class:`InvalidInstruction`.
    """
    index = 0
    while index < len(halfwords):
        nxt = halfwords[index + 1] if index + 1 < len(halfwords) else None
        instr = decode(halfwords[index], nxt, zero_is_invalid=zero_is_invalid)
        yield index, instr
        index += instr.size // 2


# ----------------------------------------------------------------------
# format groups
# ----------------------------------------------------------------------

def _decode_shift_add_sub(hw: int) -> Instruction:
    op = bits(hw, 12, 11)
    if op != 0b11:
        # Format 1: LSL/LSR/ASR Rd, Rs, #imm5
        mnemonic = ("lsls", "lsrs", "asrs")[op]
        return Instruction(
            mnemonic=mnemonic, fmt=1,
            rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), imm=bits(hw, 10, 6),
            raw=hw,
        )
    # Format 2: ADDS/SUBS Rd, Rs, Rn|#imm3
    immediate = bool(bits(hw, 10, 10))
    mnemonic = "subs" if bits(hw, 9, 9) else "adds"
    rn_or_imm = bits(hw, 8, 6)
    if immediate:
        return Instruction(
            mnemonic=mnemonic, fmt=2,
            rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), imm=rn_or_imm, raw=hw,
        )
    return Instruction(
        mnemonic=mnemonic, fmt=2,
        rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), ro=rn_or_imm, raw=hw,
    )


def _decode_imm8(hw: int) -> Instruction:
    # Format 3: MOVS/CMP/ADDS/SUBS Rd, #imm8
    mnemonic = ("movs", "cmp", "adds", "subs")[bits(hw, 12, 11)]
    return Instruction(
        mnemonic=mnemonic, fmt=3, rd=bits(hw, 10, 8), imm=bits(hw, 7, 0), raw=hw,
    )


def _decode_group_010(hw: int) -> Instruction:
    if bits(hw, 12, 10) == 0b000:
        # Format 4: register ALU operations
        mnemonic = _FMT4_OPS[bits(hw, 9, 6)]
        return Instruction(
            mnemonic=mnemonic, fmt=4, rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), raw=hw,
        )
    if bits(hw, 12, 10) == 0b001:
        return _decode_hi_reg_bx(hw)
    if bits(hw, 12, 11) == 0b01:
        # Format 6: LDR Rd, [PC, #imm8*4]
        return Instruction(
            mnemonic="ldr", fmt=6, rd=bits(hw, 10, 8), base=PC,
            imm=bits(hw, 7, 0) * 4, raw=hw,
        )
    # Formats 7/8: load/store with register offset
    mnemonic = _FMT7_8_OPS[bits(hw, 11, 9)]
    return Instruction(
        mnemonic=mnemonic, fmt=7 if bits(hw, 9, 9) == 0 else 8,
        rd=bits(hw, 2, 0), base=bits(hw, 5, 3), ro=bits(hw, 8, 6), raw=hw,
    )


def _decode_hi_reg_bx(hw: int) -> Instruction:
    # Format 5: ADD/CMP/MOV with high registers, BX/BLX
    op = bits(hw, 9, 8)
    h1 = bits(hw, 7, 7)
    h2 = bits(hw, 6, 6)
    rd = bits(hw, 2, 0) | (h1 << 3)
    rs = bits(hw, 5, 3) | (h2 << 3)
    if op == 0b11:
        if bits(hw, 2, 0) != 0:
            raise InvalidInstruction(f"BX/BLX with non-zero Rd field: {hw:#06x}")
        mnemonic = "blx" if h1 else "bx"
        if mnemonic == "blx" and rs == PC:
            raise InvalidInstruction("BLX pc is unpredictable")
        return Instruction(mnemonic=mnemonic, fmt=5, rs=rs, raw=hw)
    if op == 0b01 and not h1 and not h2:
        # CMP with two low registers has a format-4 encoding; this one is
        # unpredictable per the ARM ARM, so we reject it.
        raise InvalidInstruction(f"format-5 CMP with two low registers: {hw:#06x}")
    mnemonic = ("add", "cmp", "mov")[op]
    return Instruction(mnemonic=mnemonic, fmt=5, rd=rd, rs=rs, raw=hw)


def _decode_ldst_imm5(hw: int) -> Instruction:
    # Format 9: STR/LDR (imm5*4), STRB/LDRB (imm5)
    byte = bits(hw, 12, 12)
    load = bits(hw, 11, 11)
    imm5 = bits(hw, 10, 6)
    mnemonic = ("str", "ldr", "strb", "ldrb")[(byte << 1) | load]
    scale = 1 if byte else 4
    return Instruction(
        mnemonic=mnemonic, fmt=9,
        rd=bits(hw, 2, 0), base=bits(hw, 5, 3), imm=imm5 * scale, raw=hw,
    )


def _decode_ldst_half_sp(hw: int) -> Instruction:
    if bits(hw, 12, 12) == 0:
        # Format 10: STRH/LDRH Rd, [Rb, #imm5*2]
        mnemonic = "ldrh" if bits(hw, 11, 11) else "strh"
        return Instruction(
            mnemonic=mnemonic, fmt=10,
            rd=bits(hw, 2, 0), base=bits(hw, 5, 3), imm=bits(hw, 10, 6) * 2, raw=hw,
        )
    # Format 11: STR/LDR Rd, [SP, #imm8*4]
    mnemonic = "ldr" if bits(hw, 11, 11) else "str"
    return Instruction(
        mnemonic=mnemonic, fmt=11,
        rd=bits(hw, 10, 8), base=SP, imm=bits(hw, 7, 0) * 4, raw=hw,
    )


def _decode_adr_misc(hw: int) -> Instruction:
    if bits(hw, 12, 12) == 0:
        # Format 12: ADR / ADD Rd, SP, #imm8*4
        rd = bits(hw, 10, 8)
        imm = bits(hw, 7, 0) * 4
        if bits(hw, 11, 11):
            return Instruction(mnemonic="add_sp_imm", fmt=12, rd=rd, base=SP, imm=imm, raw=hw)
        return Instruction(mnemonic="adr", fmt=12, rd=rd, base=PC, imm=imm, raw=hw)
    return _decode_misc_1011(hw)


def _decode_misc_1011(hw: int) -> Instruction:
    sub = bits(hw, 11, 8)
    if sub == 0b0000:
        # Format 13: ADD/SUB SP, #imm7*4
        imm = bits(hw, 6, 0) * 4
        mnemonic = "sub_sp" if bits(hw, 7, 7) else "add_sp"
        return Instruction(mnemonic=mnemonic, fmt=13, imm=imm, raw=hw)
    if sub == 0b0010:
        # v6-M sign/zero extend
        mnemonic = ("sxth", "sxtb", "uxth", "uxtb")[bits(hw, 7, 6)]
        return Instruction(mnemonic=mnemonic, fmt=20, rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), raw=hw)
    if sub in (0b0100, 0b0101, 0b1100, 0b1101):
        # Format 14: PUSH/POP
        load = bits(hw, 11, 11)
        extra = bits(hw, 8, 8)
        regs = _reg_list(bits(hw, 7, 0))
        if extra:
            regs = regs + ((PC,) if load else (LR_REG,))
        if not regs:
            raise InvalidInstruction(f"push/pop with empty register list: {hw:#06x}")
        return Instruction(mnemonic="pop" if load else "push", fmt=14, reg_list=regs, raw=hw)
    if sub == 0b0110:
        # CPS (interrupt enable/disable) — modelled as a hint.
        if bits(hw, 7, 5) == 0b011:
            return Instruction(mnemonic="cps", fmt=20, imm=bits(hw, 4, 0), raw=hw)
        raise InvalidInstruction(f"undefined misc encoding: {hw:#06x}")
    if sub == 0b1010:
        op = bits(hw, 7, 6)
        if op == 0b10:
            raise InvalidInstruction(f"undefined REV-group encoding: {hw:#06x}")
        mnemonic = {0b00: "rev", 0b01: "rev16", 0b11: "revsh"}[op]
        return Instruction(mnemonic=mnemonic, fmt=20, rd=bits(hw, 2, 0), rs=bits(hw, 5, 3), raw=hw)
    if sub == 0b1110:
        return Instruction(mnemonic="bkpt", fmt=17, imm=bits(hw, 7, 0), raw=hw)
    if sub == 0b1111:
        if bits(hw, 3, 0) == 0 and bits(hw, 7, 4) in _HINTS:
            return Instruction(mnemonic=_HINTS[bits(hw, 7, 4)], fmt=20, raw=hw)
        raise InvalidInstruction(f"undefined hint encoding: {hw:#06x}")
    raise InvalidInstruction(f"undefined 1011 miscellaneous encoding: {hw:#06x}")


def _decode_multiple_condbranch(hw: int) -> Instruction:
    if bits(hw, 12, 12) == 0:
        # Format 15: STMIA/LDMIA Rb!, {reglist}
        regs = _reg_list(bits(hw, 7, 0))
        if not regs:
            raise InvalidInstruction(f"ldmia/stmia with empty register list: {hw:#06x}")
        mnemonic = "ldmia" if bits(hw, 11, 11) else "stmia"
        return Instruction(mnemonic=mnemonic, fmt=15, base=bits(hw, 10, 8), reg_list=regs, raw=hw)
    cond = bits(hw, 11, 8)
    if cond == 0b1110:
        raise InvalidInstruction(f"permanently undefined (UDF) encoding: {hw:#06x}")
    if cond == 0b1111:
        # Format 17: SVC (SWI)
        return Instruction(mnemonic="svc", fmt=17, imm=bits(hw, 7, 0), raw=hw)
    # Format 16: conditional branch, signed offset8 * 2 from PC (addr + 4)
    offset = sign_extend(bits(hw, 7, 0), 8) * 2
    from repro.isa.conditions import condition_name

    return Instruction(
        mnemonic=f"b{condition_name(cond)}", fmt=16, cond=cond, imm=offset, raw=hw,
    )


def _decode_branches(hw: int, next_halfword: int | None) -> Instruction:
    group = bits(hw, 12, 11)
    if group == 0b00:
        # Format 18: unconditional branch, signed offset11 * 2
        return Instruction(mnemonic="b", fmt=18, imm=sign_extend(bits(hw, 10, 0), 11) * 2, raw=hw)
    if group == 0b01:
        # 11101xxxxxxxxxxx: 32-bit encodings we do not implement → undefined.
        raise InvalidInstruction(f"undefined 11101 encoding: {hw:#06x}")
    if group == 0b10:
        # Format 19 first half (BL prefix). Requires a matching suffix.
        if next_halfword is None or bits(next_halfword, 15, 11) != 0b11111:
            raise InvalidInstruction(f"BL prefix {hw:#06x} without a BL suffix")
        offset_high = sign_extend(bits(hw, 10, 0), 11) << 12
        offset_low = bits(next_halfword, 10, 0) << 1
        return Instruction(
            mnemonic="bl", fmt=19, size=4, imm=offset_high + offset_low,
            raw=(hw << 16) | (next_halfword & 0xFFFF),
        )
    # Format 19 second half executed on its own: unpredictable.
    raise InvalidInstruction(f"stray BL suffix halfword: {hw:#06x}")


LR_REG = 14


def _reg_list(mask8: int) -> tuple[int, ...]:
    return tuple(i for i in range(8) if (mask8 >> i) & 1)


__all__ = ["decode", "decode_stream"]

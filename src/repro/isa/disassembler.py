"""Linear-sweep disassembler used for post-mortem inspection of glitched code.

Unlike the decoder, the disassembler never raises on undefined encodings:
corrupted programs are full of them, and the experiments want a printable
listing regardless. Undefined halfwords render as ``.hword 0x....  ; <why>``.
"""

from __future__ import annotations

from repro.bits import bytes_to_halfwords
from repro.errors import InvalidInstruction
from repro.isa.decoder import decode


def disassemble_one(
    halfword: int,
    next_halfword: int | None = None,
    zero_is_invalid: bool = False,
) -> str:
    """Disassemble a single instruction, falling back to a data directive."""
    try:
        return decode(halfword, next_halfword, zero_is_invalid=zero_is_invalid).render()
    except InvalidInstruction as exc:
        return f".hword {halfword & 0xFFFF:#06x}  ; invalid: {exc}"


def disassemble(
    code: bytes | list[int],
    base: int = 0,
    zero_is_invalid: bool = False,
) -> list[tuple[int, str]]:
    """Disassemble ``code`` (bytes or halfword list) into ``(address, text)`` rows.

    BL pairs consume two halfwords; invalid halfwords consume one and render
    as data, so the sweep always terminates.
    """
    halfwords = bytes_to_halfwords(code) if isinstance(code, (bytes, bytearray)) else list(code)
    rows: list[tuple[int, str]] = []
    index = 0
    while index < len(halfwords):
        address = base + index * 2
        nxt = halfwords[index + 1] if index + 1 < len(halfwords) else None
        try:
            instr = decode(halfwords[index], nxt, zero_is_invalid=zero_is_invalid)
        except InvalidInstruction as exc:
            rows.append((address, f".hword {halfwords[index]:#06x}  ; invalid: {exc}"))
            index += 1
            continue
        rows.append((address, instr.render()))
        index += instr.size // 2
    return rows


def format_listing(rows: list[tuple[int, str]]) -> str:
    """Render disassembly rows as an address-annotated listing."""
    return "\n".join(f"{address:#010x}:  {text}" for address, text in rows)


__all__ = ["disassemble", "disassemble_one", "format_listing"]

"""Thumb-16 encoder: :class:`Instruction` fields → machine halfwords.

The encoder is the exact inverse of :mod:`repro.isa.decoder` for every
representable instruction; the round-trip property is enforced by the test
suite (including a hypothesis sweep over the full 16-bit space).
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.conditions import condition_number
from repro.isa.instruction import Instruction
from repro.isa.registers import LR, PC, SP

_FMT4_OPS = {
    "ands": 0, "eors": 1, "lsls": 2, "lsrs": 3, "asrs": 4, "adcs": 5,
    "sbcs": 6, "rors": 7, "tst": 8, "negs": 9, "cmp": 10, "cmn": 11,
    "orrs": 12, "muls": 13, "bics": 14, "mvns": 15,
}

_FMT7_8_OPS = {
    "str": 0, "strh": 1, "strb": 2, "ldrsb": 3,
    "ldr": 4, "ldrh": 5, "ldrb": 6, "ldrsh": 7,
}

_EXTEND_OPS = {"sxth": 0, "sxtb": 1, "uxth": 2, "uxtb": 3}
_REV_OPS = {"rev": 0, "rev16": 1, "revsh": 3}
_HINT_OPS = {"nop": 0, "yield": 1, "wfe": 2, "wfi": 3, "sev": 4}


def encode(instr: Instruction) -> list[int]:
    """Encode ``instr`` into one halfword (or two for ``bl``)."""
    m = instr.mnemonic
    fmt = instr.fmt
    if fmt == 1:
        return [_fmt1(instr)]
    if fmt == 2:
        return [_fmt2(instr)]
    if fmt == 3:
        return [_fmt3(instr)]
    if fmt == 4:
        return [_fmt4(instr)]
    if fmt == 5:
        return [_fmt5(instr)]
    if fmt == 6:
        return [_check_imm(0x4800 | (_low(instr.rd) << 8) | _scaled(instr.imm, 4, 8), instr)]
    if fmt in (7, 8):
        op = _FMT7_8_OPS[m]
        return [0x5000 | (op << 9) | (_low(instr.ro) << 6) | (_low(instr.base) << 3) | _low(instr.rd)]
    if fmt == 9:
        return [_fmt9(instr)]
    if fmt == 10:
        load = 1 if m == "ldrh" else 0
        return [0x8000 | (load << 11) | (_scaled(instr.imm, 2, 5) << 6) | (_low(instr.base) << 3) | _low(instr.rd)]
    if fmt == 11:
        load = 1 if m == "ldr" else 0
        return [0x9000 | (load << 11) | (_low(instr.rd) << 8) | _scaled(instr.imm, 4, 8)]
    if fmt == 12:
        sp = 1 if m == "add_sp_imm" else 0
        return [0xA000 | (sp << 11) | (_low(instr.rd) << 8) | _scaled(instr.imm, 4, 8)]
    if fmt == 13:
        sign = 1 if m == "sub_sp" else 0
        return [0xB000 | (sign << 7) | _scaled(instr.imm, 4, 7)]
    if fmt == 14:
        return [_fmt14(instr)]
    if fmt == 15:
        load = 1 if m == "ldmia" else 0
        return [0xC000 | (load << 11) | (_low(instr.base) << 8) | _reg_mask(instr.reg_list, m)]
    if fmt == 16:
        return [_fmt16(instr)]
    if fmt == 17:
        prefix = 0xDF00 if m == "svc" else 0xBE00
        return [prefix | _unsigned(instr.imm, 8)]
    if fmt == 18:
        return [0xE000 | _branch_offset(instr.imm, 11)]
    if fmt == 19:
        return _fmt19(instr)
    if fmt == 20:
        return [_fmt20(instr)]
    raise EncodingError(f"cannot encode instruction: {instr!r}")


# ----------------------------------------------------------------------

def _fmt1(instr: Instruction) -> int:
    op = {"lsls": 0, "lsrs": 1, "asrs": 2}[instr.mnemonic]
    return (op << 11) | (_unsigned(instr.imm, 5) << 6) | (_low(instr.rs) << 3) | _low(instr.rd)


def _fmt2(instr: Instruction) -> int:
    op = 1 if instr.mnemonic == "subs" else 0
    if instr.ro is not None:
        field = _low(instr.ro)
        immediate = 0
    else:
        field = _unsigned(instr.imm, 3)
        immediate = 1
    return 0x1800 | (immediate << 10) | (op << 9) | (field << 6) | (_low(instr.rs) << 3) | _low(instr.rd)


def _fmt3(instr: Instruction) -> int:
    op = {"movs": 0, "cmp": 1, "adds": 2, "subs": 3}[instr.mnemonic]
    return 0x2000 | (op << 11) | (_low(instr.rd) << 8) | _unsigned(instr.imm, 8)


def _fmt4(instr: Instruction) -> int:
    op = _FMT4_OPS[instr.mnemonic]
    return 0x4000 | (op << 6) | (_low(instr.rs) << 3) | _low(instr.rd)


def _fmt5(instr: Instruction) -> int:
    m = instr.mnemonic
    if m in ("bx", "blx"):
        rs = _any(instr.rs)
        h1 = 1 if m == "blx" else 0
        return 0x4700 | (h1 << 7) | (rs << 3)
    op = {"add": 0, "cmp": 1, "mov": 2}[m]
    rd = _any(instr.rd)
    rs = _any(instr.rs)
    if m == "cmp" and rd < 8 and rs < 8:
        raise EncodingError("format-5 cmp requires a high register; use the format-4 encoding")
    h1 = (rd >> 3) & 1
    h2 = (rs >> 3) & 1
    return 0x4400 | (op << 8) | (h1 << 7) | (h2 << 6) | ((rs & 7) << 3) | (rd & 7)


def _fmt9(instr: Instruction) -> int:
    m = instr.mnemonic
    byte = 1 if m in ("strb", "ldrb") else 0
    load = 1 if m in ("ldr", "ldrb") else 0
    scale = 1 if byte else 4
    imm5 = _scaled(instr.imm, scale, 5)
    return 0x6000 | (byte << 12) | (load << 11) | (imm5 << 6) | (_low(instr.base) << 3) | _low(instr.rd)


def _fmt14(instr: Instruction) -> int:
    load = 1 if instr.mnemonic == "pop" else 0
    special = PC if load else LR
    low_regs = tuple(r for r in instr.reg_list if r < 8)
    extra = special in instr.reg_list
    if len(low_regs) + (1 if extra else 0) != len(instr.reg_list):
        raise EncodingError(
            f"{instr.mnemonic} register list may contain r0-r7 and "
            f"{'pc' if load else 'lr'} only: {instr.reg_list}"
        )
    if not instr.reg_list:
        raise EncodingError(f"{instr.mnemonic} requires a non-empty register list")
    low_mask = 0
    for reg in low_regs:
        low_mask |= 1 << reg
    return 0xB400 | (load << 11) | ((1 if extra else 0) << 8) | low_mask


def _fmt16(instr: Instruction) -> int:
    cond = instr.cond if instr.cond is not None else condition_number(instr.mnemonic[1:])
    if not 0 <= cond <= 13:
        raise EncodingError(f"condition {cond} is not encodable as a branch")
    return 0xD000 | (cond << 8) | _branch_offset(instr.imm, 8)


def _fmt19(instr: Instruction) -> list[int]:
    offset = _imm(instr.imm)
    if offset % 2:
        raise EncodingError(f"bl offset must be even: {offset}")
    if not -(1 << 22) <= offset < (1 << 22):
        raise EncodingError(f"bl offset out of range: {offset}")
    value = (offset >> 1) & 0x3FFFFF
    high = (value >> 11) & 0x7FF
    low = value & 0x7FF
    return [0xF000 | high, 0xF800 | low]


def _fmt20(instr: Instruction) -> int:
    m = instr.mnemonic
    if m in _EXTEND_OPS:
        return 0xB200 | (_EXTEND_OPS[m] << 6) | (_low(instr.rs) << 3) | _low(instr.rd)
    if m in _REV_OPS:
        return 0xBA00 | (_REV_OPS[m] << 6) | (_low(instr.rs) << 3) | _low(instr.rd)
    if m in _HINT_OPS:
        return 0xBF00 | (_HINT_OPS[m] << 4)
    if m == "cps":
        return 0xB660 | ((instr.imm or 0) & 0x1F)
    raise EncodingError(f"cannot encode misc instruction {m!r}")


# ----------------------------------------------------------------------
# field helpers
# ----------------------------------------------------------------------

def _low(reg: int | None) -> int:
    if reg is None or not 0 <= reg <= 7:
        raise EncodingError(f"expected a low register r0-r7, got {reg}")
    return reg


def _any(reg: int | None) -> int:
    if reg is None or not 0 <= reg <= 15:
        raise EncodingError(f"expected a register r0-r15, got {reg}")
    return reg


def _imm(imm: int | None) -> int:
    if imm is None:
        raise EncodingError("missing immediate operand")
    return imm


def _unsigned(imm: int | None, width: int) -> int:
    value = _imm(imm)
    if not 0 <= value < (1 << width):
        raise EncodingError(f"immediate {value} does not fit in {width} unsigned bits")
    return value


def _scaled(imm: int | None, scale: int, width: int) -> int:
    value = _imm(imm)
    if value % scale:
        raise EncodingError(f"immediate {value} must be a multiple of {scale}")
    return _unsigned(value // scale, width)


def _branch_offset(imm: int | None, width: int) -> int:
    value = _imm(imm)
    if value % 2:
        raise EncodingError(f"branch offset must be even: {value}")
    half = value >> 1
    if not -(1 << (width - 1)) <= half < (1 << (width - 1)):
        raise EncodingError(f"branch offset {value} does not fit in {width} signed halfword bits")
    return half & ((1 << width) - 1)


def _check_imm(encoded: int, instr: Instruction) -> int:
    return encoded


def _reg_mask(regs: tuple[int, ...], mnemonic: str) -> int:
    if not regs:
        raise EncodingError(f"{mnemonic} requires a non-empty register list")
    mask = 0
    for reg in regs:
        if not 0 <= reg <= 7:
            raise EncodingError(f"{mnemonic} register list is limited to r0-r7, got r{reg}")
        mask |= 1 << reg
    return mask


__all__ = ["encode"]

"""The decoded-instruction data model.

A :class:`Instruction` is a flat record: one canonical mnemonic plus the
operand slots that mnemonic uses. The executor in :mod:`repro.emu.cpu`
dispatches on ``mnemonic``; the encoder regenerates machine code from the
same fields, giving us a round-trippable representation that is easy to
property-test.

Canonical mnemonics (lowercase):

- shifts/arith/logic: ``lsls lsrs asrs adds subs movs cmp ands eors adcs
  sbcs rors tst negs cmn orrs muls bics mvns``
- high-register / interworking (format 5): ``add cmp mov bx blx``
- memory: ``ldr str ldrb strb ldrh strh ldrsb ldrsh``
- address generation: ``adr add_sp_imm`` (``add rd, sp, #imm``), ``add_sp``
  / ``sub_sp`` (adjust SP)
- multiple: ``push pop stmia ldmia``
- flow: ``b<cond>`` (e.g. ``beq``), ``b``, ``bl``, ``svc``, ``bkpt``
- v6-M extras: ``sxth sxtb uxth uxtb rev rev16 revsh nop wfi wfe sev yield cps``

Addressing-mode disambiguation for ``ldr``/``str`` family uses the operand
slots: ``ro`` set → register offset; ``base == PC`` → literal; ``base == SP``
→ SP-relative; otherwise immediate offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.conditions import condition_name
from repro.isa.registers import PC, SP, register_name


@dataclass(frozen=True)
class Instruction:
    """One decoded Thumb instruction.

    Only the slots relevant to ``mnemonic`` are populated; the rest stay
    ``None``. ``raw`` preserves the encoding the instruction was decoded
    from (16-bit value, or 32-bit ``(hi << 16) | lo`` for ``bl``).
    """

    mnemonic: str
    fmt: int
    size: int = 2
    rd: Optional[int] = None
    rs: Optional[int] = None
    base: Optional[int] = None
    ro: Optional[int] = None
    imm: Optional[int] = None
    cond: Optional[int] = None
    reg_list: tuple[int, ...] = field(default=())
    raw: Optional[int] = None

    def with_raw(self, raw: int) -> "Instruction":
        return replace(self, raw=raw)

    # ------------------------------------------------------------------
    # classification helpers used by the fault model and experiments
    # ------------------------------------------------------------------

    @property
    def is_conditional_branch(self) -> bool:
        return self.mnemonic.startswith("b") and self.cond is not None

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in ("b", "bl", "bx", "blx") or self.is_conditional_branch

    @property
    def is_load(self) -> bool:
        return self.mnemonic in ("ldr", "ldrb", "ldrh", "ldrsb", "ldrsh", "ldmia", "pop")

    @property
    def is_store(self) -> bool:
        return self.mnemonic in ("str", "strb", "strh", "stmia", "push")

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_compare(self) -> bool:
        return self.mnemonic in ("cmp", "cmn", "tst")

    @property
    def writes_flags(self) -> bool:
        return self.mnemonic.endswith("s") and self.mnemonic not in ("bls", "bvs", "bcs") or self.is_compare

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Render assembler text (canonical, lowercase, byte-exact re-assemblable)."""
        m = self.mnemonic
        if m in ("lsls", "lsrs", "asrs") and self.fmt == 1:
            return f"{m} {_r(self.rd)}, {_r(self.rs)}, #{self.imm}"
        if m in ("adds", "subs") and self.fmt == 2:
            if self.ro is not None:
                return f"{m} {_r(self.rd)}, {_r(self.rs)}, {_r(self.ro)}"
            return f"{m} {_r(self.rd)}, {_r(self.rs)}, #{self.imm}"
        if self.fmt == 3:
            return f"{m} {_r(self.rd)}, #{self.imm}"
        if self.fmt == 4:
            return f"{m} {_r(self.rd)}, {_r(self.rs)}"
        if self.fmt == 5:
            if m in ("bx", "blx"):
                return f"{m} {_r(self.rs)}"
            return f"{m} {_r(self.rd)}, {_r(self.rs)}"
        if m in ("ldr", "str", "ldrb", "strb", "ldrh", "strh", "ldrsb", "ldrsh"):
            if self.ro is not None:
                return f"{m} {_r(self.rd)}, [{_r(self.base)}, {_r(self.ro)}]"
            if self.imm:
                return f"{m} {_r(self.rd)}, [{_r(self.base)}, #{self.imm}]"
            return f"{m} {_r(self.rd)}, [{_r(self.base)}]"
        if m == "adr":
            return f"adr {_r(self.rd)}, #{self.imm}"
        if m == "add_sp_imm":
            return f"add {_r(self.rd)}, sp, #{self.imm}"
        if m == "add_sp":
            return f"add sp, #{self.imm}"
        if m == "sub_sp":
            return f"sub sp, #{self.imm}"
        if m in ("push", "pop"):
            return f"{m} {{{_reg_list(self.reg_list)}}}"
        if m in ("stmia", "ldmia"):
            return f"{m} {_r(self.base)}!, {{{_reg_list(self.reg_list)}}}"
        if self.is_conditional_branch:
            return f"b{condition_name(self.cond)} {_signed(self.imm)}"
        if m == "b":
            return f"b {_signed(self.imm)}"
        if m == "bl":
            return f"bl {_signed(self.imm)}"
        if m in ("svc", "bkpt"):
            return f"{m} #{self.imm}"
        if m in ("sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh"):
            return f"{m} {_r(self.rd)}, {_r(self.rs)}"
        if m in ("nop", "wfi", "wfe", "sev", "yield", "cps"):
            return m
        raise ValueError(f"cannot render instruction: {self!r}")  # pragma: no cover

    def __str__(self) -> str:
        return self.render()


def _r(number: Optional[int]) -> str:
    if number is None:  # pragma: no cover - defensive
        raise ValueError("missing register operand")
    return register_name(number)


def _reg_list(regs: tuple[int, ...]) -> str:
    return ", ".join(register_name(r) for r in regs)


def _signed(imm: Optional[int]) -> str:
    if imm is None:  # pragma: no cover - defensive
        raise ValueError("missing immediate operand")
    return f"{imm:+d}" if imm < 0 else f"+{imm}"


__all__ = ["Instruction"]

"""Register naming for the Thumb core.

Thumb-16 instructions mostly address the *low* registers r0-r7; a handful of
format-5 instructions (ADD/CMP/MOV/BX with the H bits) reach the high
registers r8-r12 and the special registers SP (r13), LR (r14), and PC (r15).
"""

from __future__ import annotations

NUM_REGISTERS = 16

SP = 13
LR = 14
PC = 15

_SPECIAL_NAMES = {13: "sp", 14: "lr", 15: "pc"}
_NAME_TO_NUMBER = {f"r{i}": i for i in range(NUM_REGISTERS)}
_NAME_TO_NUMBER.update({"sp": SP, "lr": LR, "pc": PC, "ip": 12, "fp": 11, "sl": 10, "sb": 9})


def register_name(number: int) -> str:
    """Canonical lowercase name for register ``number`` (``r0``..``r12``, ``sp``, ``lr``, ``pc``)."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {number}")
    return _SPECIAL_NAMES.get(number, f"r{number}")


def register_number(name: str) -> int:
    """Parse a register name (case-insensitive, accepts aliases like ``ip``)."""
    try:
        return _NAME_TO_NUMBER[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


def is_low_register(number: int) -> bool:
    """True for r0-r7, the registers reachable by most Thumb-16 encodings."""
    return 0 <= number <= 7

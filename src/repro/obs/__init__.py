"""Campaign observability: tracing, metrics, and JSONL event logs."""

from repro.obs.core import (
    NULL_OBSERVER,
    JsonlSink,
    NullObserver,
    Observer,
    Span,
    WorkerTelemetry,
    activate,
    coerce_observer,
    current,
    default_events_path,
    observed_call,
)
from repro.obs.report import load_events, render_report

__all__ = [
    "NULL_OBSERVER",
    "JsonlSink",
    "NullObserver",
    "Observer",
    "Span",
    "WorkerTelemetry",
    "activate",
    "coerce_observer",
    "current",
    "default_events_path",
    "load_events",
    "observed_call",
    "render_report",
]

"""Campaign observability: span tracing, named counters, JSONL events.

An :class:`Observer` bundles the three signals a long campaign needs:

- **spans** — ``with obs.trace("fig2.campaign"): ...`` context managers
  that nest, and record wall-clock and CPU time per region;
- **counters/gauges** — monotonically-increasing named tallies
  (``attempts``, ``cache.hits``, ``exec.retries``, ``exec.quarantined``,
  per-outcome-category counts) and last-value gauges;
- **events** — one structured dict per span/unit/scan, appended to an
  in-memory list and (optionally) streamed to a :class:`JsonlSink`.

Everything is explicitly threaded (``obs=`` parameters); the only ambient
state is :func:`current`, which worker processes use because picklable
work specs cannot carry an observer. Disabled instrumentation costs one
no-op method call per *work unit* (never per attempt): every entry point
coerces ``obs=None`` to the shared :data:`NULL_OBSERVER`, whose methods
do nothing and whose ``trace`` hands back a reusable null context
manager.

Multiprocessing: the executor wraps worker functions so each unit runs
under a fresh worker-local observer; the worker's counters and events
ride back to the parent inside the unit's result (the existing result
channel) as a :class:`WorkerTelemetry` envelope and are merged in record
order, which the executor already keeps deterministic.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union


@dataclass
class Span:
    """One completed traced region."""

    name: str
    depth: int
    seq: int  # start order (parents have lower seq than their children)
    start: float  # seconds since the observer was created
    wall: float = 0.0
    cpu: float = 0.0
    attrs: dict = field(default_factory=dict)


class JsonlSink:
    """Append-one-JSON-line-per-record event sink."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")

    def emit(self, record: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(record, default=str) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class _SpanHandle:
    """Context manager produced by :meth:`Observer.trace`."""

    __slots__ = ("_obs", "_span", "_wall0", "_cpu0")

    def __init__(self, obs: "Observer", span: Span):
        self._obs = obs
        self._span = span

    def __enter__(self) -> Span:
        self._wall0 = self._obs._clock()
        self._cpu0 = self._obs._cpu_clock()
        return self._span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        span.wall = self._obs._clock() - self._wall0
        span.cpu = self._obs._cpu_clock() - self._cpu0
        self._obs._close_span(span)


class _NullSpanHandle:
    """Shared no-op context manager (the disabled-tracing fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()


class Observer:
    """Collects spans, counters, gauges, and events for one run."""

    enabled = True

    def __init__(
        self,
        sink: Optional[JsonlSink] = None,
        clock=time.perf_counter,
        cpu_clock=time.process_time,
    ):
        self.sink = sink
        self.counters: Counter = Counter()
        self.gauges: dict[str, float] = {}
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._t0 = clock()
        self._depth = 0
        self._seq = 0

    # -- spans ----------------------------------------------------------

    def trace(self, name: str, **attrs) -> _SpanHandle:
        """Open a nested span; wall/CPU timings are taken on exit."""
        span = Span(
            name=name, depth=self._depth, seq=self._seq,
            start=self._clock() - self._t0, attrs=attrs,
        )
        self._seq += 1
        self._depth += 1
        return _SpanHandle(self, span)

    def _close_span(self, span: Span) -> None:
        self._depth = span.depth
        self.spans.append(span)
        record = {
            "type": "span",
            "name": span.name,
            "depth": span.depth,
            "seq": span.seq,
            "start": round(span.start, 6),
            "wall": round(span.wall, 6),
            "cpu": round(span.cpu, 6),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._emit(record)

    # -- counters / gauges ---------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if n:
            self.counters[name] += n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge(self, counters: Mapping[str, int], events: tuple = ()) -> None:
        """Fold a worker's telemetry (counters + events) into this observer."""
        self.counters.update(counters)
        for record in events:
            self._emit(dict(record))

    # -- events ---------------------------------------------------------

    def event(self, type: str, **fields) -> None:
        self._emit({"type": type, **fields})

    def _emit(self, record: dict) -> None:
        self.events.append(record)
        if self.sink is not None:
            self.sink.emit(record)

    # -- lifecycle ------------------------------------------------------

    def metrics(self) -> dict:
        """Counter/gauge totals as a plain JSON-able dict."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
        }

    def close(self) -> None:
        """Emit the final metrics record and close the sink (if any)."""
        self._emit({"type": "metrics", **self.metrics()})
        if self.sink is not None:
            self.sink.close()


class NullObserver(Observer):
    """Does nothing, as fast as possible; the ``obs=None`` default."""

    enabled = False

    def __init__(self):  # no clocks, no storage
        pass

    def trace(self, name: str, **attrs) -> _NullSpanHandle:  # type: ignore[override]
        return _NULL_SPAN_HANDLE

    def count(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def merge(self, counters, events=()) -> None:
        return None

    def event(self, type: str, **fields) -> None:
        return None

    def metrics(self) -> dict:
        return {"counters": {}, "gauges": {}}

    def close(self) -> None:
        return None


NULL_OBSERVER = NullObserver()


def coerce_observer(obs: Optional[Observer]) -> Observer:
    """``None`` → the shared no-op observer."""
    return obs if obs is not None else NULL_OBSERVER


# ----------------------------------------------------------------------
# ambient observer — worker processes only
# ----------------------------------------------------------------------
#
# Campaign code threads ``obs=`` explicitly. The one place that cannot is
# a multiprocessing worker: its work spec must stay picklable, so the
# executor's telemetry wrapper installs a worker-local observer here and
# unit functions look it up to attribute e.g. cache hits.

_current: Observer = NULL_OBSERVER


def current() -> Observer:
    """The ambient observer (NULL unless a telemetry wrapper is active)."""
    return _current


class _Activation:
    __slots__ = ("_obs", "_previous")

    def __init__(self, obs: Observer):
        self._obs = obs

    def __enter__(self) -> Observer:
        global _current
        self._previous = _current
        _current = self._obs
        return self._obs

    def __exit__(self, *exc_info) -> None:
        global _current
        _current = self._previous


def activate(obs: Observer) -> _Activation:
    """Temporarily install ``obs`` as the ambient :func:`current` observer."""
    return _Activation(obs)


# ----------------------------------------------------------------------
# worker telemetry envelope
# ----------------------------------------------------------------------

@dataclass
class WorkerTelemetry:
    """A unit result plus the worker-side observability it produced."""

    result: Any
    counters: dict
    events: list
    wall: float


def observed_call(fn, spec):
    """Run one work unit under a fresh worker-local observer.

    Module-level so ``functools.partial(observed_call, fn)`` pickles for
    the multiprocessing path. The returned envelope travels back over the
    existing result channel; the executor unwraps and merges it.
    """
    obs = Observer()
    wall0 = time.perf_counter()
    with activate(obs):
        result = fn(spec)
    return WorkerTelemetry(
        result=result,
        counters=dict(obs.counters),
        events=list(obs.events),
        wall=time.perf_counter() - wall0,
    )


def default_events_path(label: str) -> Path:
    """``<cache root>/runs/<label>-<timestamp>-<pid>.jsonl`` — the default
    event-log location, a sibling of the checkpoint directory."""
    from repro.exec.cache import default_cache_root

    stamp = time.strftime("%Y%m%d-%H%M%S")
    return default_cache_root() / "runs" / f"{label}-{stamp}-{os.getpid()}.jsonl"


__all__ = [
    "Span",
    "JsonlSink",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "WorkerTelemetry",
    "activate",
    "coerce_observer",
    "current",
    "default_events_path",
    "observed_call",
]

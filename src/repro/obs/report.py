"""Render a timing/metrics summary from a JSONL event log.

The `repro report` CLI subcommand and the post-run ``--trace`` summary
both go through :func:`render_report`, so an archived run renders exactly
like a live one.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Union


def load_events(path: Union[str, os.PathLike]) -> List[dict]:
    """Parse a JSONL event log; torn trailing lines are skipped."""
    events: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line from a crash mid-write
            if isinstance(record, dict):
                events.append(record)
    return events


def _span_lines(events: Iterable[dict]) -> List[str]:
    spans = sorted(
        (e for e in events if e.get("type") == "span"),
        key=lambda e: e.get("seq", 0),
    )
    if not spans:
        return []
    lines = ["spans:", f"  {'wall':>10}  {'cpu':>10}  name"]
    for span in spans:
        indent = "  " * int(span.get("depth", 0))
        attrs = span.get("attrs") or {}
        suffix = ""
        if attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            suffix = f"  [{inner}]"
        lines.append(
            f"  {span.get('wall', 0.0):>9.3f}s  {span.get('cpu', 0.0):>9.3f}s  "
            f"{indent}{span.get('name', '?')}{suffix}"
        )
    return lines


def _counter_lines(events: Iterable[dict]) -> List[str]:
    # The final "metrics" record carries the authoritative totals; if the
    # run crashed before close(), fall back to summing unit records.
    metrics = None
    for record in events:
        if record.get("type") == "metrics":
            metrics = record
    counters = dict(metrics.get("counters", {})) if metrics else {}
    if not counters:
        for record in events:
            if record.get("type") == "unit":
                counters["attempts"] = counters.get("attempts", 0) + int(
                    record.get("attempts", 0)
                )
    if not counters:
        return []
    width = max(len(name) for name in counters)
    lines = ["counters:"]
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {counters[name]}")
    gauges = dict(metrics.get("gauges", {})) if metrics else {}
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]}")
    return lines


def _summary_lines(events: Iterable[dict]) -> List[str]:
    units = [e for e in events if e.get("type") == "unit"]
    scans = [e for e in events if e.get("type") == "scan"]
    lines: List[str] = []
    if units:
        replayed = sum(1 for u in units if u.get("replayed"))
        attempts = sum(int(u.get("attempts", 0)) for u in units)
        line = f"units: {len(units)} ({attempts} attempts"
        if replayed:
            line += f", {replayed} replayed from checkpoint"
        lines.append(line + ")")
        slowest = sorted(
            (u for u in units if u.get("wall") is not None),
            key=lambda u: u.get("wall", 0.0),
            reverse=True,
        )[:5]
        if slowest:
            lines.append("slowest units:")
            for unit in slowest:
                lines.append(f"  {unit.get('wall', 0.0):>9.3f}s  {unit.get('key', '?')}")
    if scans:
        lines.append(f"scans: {len(scans)}")
    return lines


def render_report(events: Iterable[dict]) -> str:
    """A human-readable summary of one run's event log."""
    events = list(events)
    sections = [
        _span_lines(events),
        _counter_lines(events),
        _summary_lines(events),
    ]
    blocks = ["\n".join(lines) for lines in sections if lines]
    if not blocks:
        return "(no events)"
    return "\n\n".join(blocks)


__all__ = ["load_events", "render_report"]

"""GlitchResistor — the paper's automated software-only glitching defense tool.

Defenses (Section VI), each implemented as a pass over the MiniC pipeline:

=====================  ======================  ==============================
paper defense          implemented as          module
=====================  ======================  ==============================
ENUM Rewriter          AST/program transform   :mod:`repro.resistor.enum_rewriter`
Non-trivial returns    IR module pass          :mod:`repro.resistor.return_codes`
Branch redundancy      IR function pass        :mod:`repro.resistor.branch_redundancy`
Loop redundancy        IR function pass        :mod:`repro.resistor.loop_redundancy`
Data integrity         IR module pass          :mod:`repro.resistor.data_integrity`
Random delay           IR function pass +      :mod:`repro.resistor.random_delay`
                       runtime (LCG, seed in
                       flash)
=====================  ======================  ==============================

``harden()`` (in :mod:`repro.resistor.driver`) composes them à la carte and
produces a bootable, defended firmware image.
"""

from repro.resistor.config import ResistorConfig
from repro.resistor.driver import HardenedProgram, harden
from repro.resistor.report import InstrumentationReport

__all__ = ["ResistorConfig", "harden", "HardenedProgram", "InstrumentationReport"]

"""Shared machinery for the IR defense passes."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.compiler import ir

#: complemented comparison: cmp(op, a, b) == cmp(COMPLEMENT[op], ~a, ~b)
COMPLEMENT_OP = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
}

_DETECT_HINT = "gr.detect"


def detect_block(function: ir.IRFunction, detect_function: str) -> ir.Block:
    """The function's (shared) glitch-detected block: call the reaction and,
    should it ever return, spin — detection is terminal."""
    for block in function.blocks.values():
        if block.label.startswith(_DETECT_HINT):
            return block
    block = function.new_block(_DETECT_HINT)
    block.instrs.append(ir.Call(func=detect_function, args=()))
    block.terminator = ir.Jump(target=block.label)
    return block


def defining_index(block: ir.Block, temp: int) -> Optional[int]:
    for index, instr in enumerate(block.instrs):
        if instr.result == temp:
            return index
    return None


def replicate_value(
    function: ir.IRFunction,
    source_block: ir.Block,
    temp: int,
    out: list[ir.Instr],
    memo: dict[int, int],
) -> int:
    """Replicate the computation of ``temp`` into ``out``; returns the new temp.

    Mirrors §VI-B.b: "GlitchResistor also replicates any instructions that
    are needed to calculate the comparison (e.g., loading a value from
    memory, mutating it, and comparing it to an immediate). However, not
    every instruction can be replicated ... volatile variables, function
    calls ..." — non-replicable values are *reused* rather than recomputed.
    Replicated loads are marked volatile so the optimizer cannot fold the
    redundant work away.
    """
    if temp in memo:
        return memo[temp]
    index = defining_index(source_block, temp)
    if index is None:
        memo[temp] = temp  # defined in another block: reuse
        return temp
    instr = source_block.instrs[index]
    clone: Optional[ir.Instr] = None
    if isinstance(instr, ir.Const):
        clone = replace(instr)
    elif isinstance(instr, ir.BinOp):
        lhs = replicate_value(function, source_block, instr.lhs, out, memo)
        rhs = replicate_value(function, source_block, instr.rhs, out, memo)
        clone = replace(instr, lhs=lhs, rhs=rhs)
    elif isinstance(instr, ir.Cmp):
        lhs = replicate_value(function, source_block, instr.lhs, out, memo)
        rhs = replicate_value(function, source_block, instr.rhs, out, memo)
        clone = replace(instr, lhs=lhs, rhs=rhs)
    elif isinstance(instr, ir.LoadLocal):
        clone = replace(instr)
    elif isinstance(instr, ir.LoadGlobal) and not instr.volatile:
        # replicate, but volatile so later passes cannot merge the two loads
        clone = replace(instr, volatile=True)
    if clone is None:
        # volatile load, MMIO, call, ...: reuse the already-computed value
        memo[temp] = temp
        return temp
    new_temp = function.new_temp()
    clone.result = new_temp
    out.append(clone)
    memo[temp] = new_temp
    return new_temp


def complemented_check(
    function: ir.IRFunction,
    source_block: ir.Block,
    cmp: ir.Cmp,
    out: list[ir.Instr],
) -> int:
    """Emit the complemented redundant comparison for ``cmp`` into ``out``.

    ``if (a == 5)`` becomes ``if (~a == ~5)`` — "which ensures that the same
    bit flips repeated twice would not be able to bypass both checks"
    (§VI-B.b). Returns the new boolean temp.
    """
    memo: dict[int, int] = {}
    lhs = replicate_value(function, source_block, cmp.lhs, out, memo)
    rhs = replicate_value(function, source_block, cmp.rhs, out, memo)

    ones_a = function.new_temp()
    out.append(ir.Const(result=ones_a, value=0xFFFFFFFF))
    not_lhs = function.new_temp()
    out.append(ir.BinOp(result=not_lhs, op="xor", lhs=lhs, rhs=ones_a))
    ones_b = function.new_temp()
    out.append(ir.Const(result=ones_b, value=0xFFFFFFFF))
    not_rhs = function.new_temp()
    out.append(ir.BinOp(result=not_rhs, op="xor", lhs=rhs, rhs=ones_b))
    check = function.new_temp()
    out.append(ir.Cmp(result=check, op=COMPLEMENT_OP[cmp.op], lhs=not_lhs, rhs=not_rhs))
    return check


def find_condition_cmp(block: ir.Block, cond_temp: int) -> Optional[ir.Cmp]:
    index = defining_index(block, cond_temp)
    if index is None:
        return None
    instr = block.instrs[index]
    return instr if isinstance(instr, ir.Cmp) else None


__all__ = [
    "COMPLEMENT_OP",
    "detect_block",
    "defining_index",
    "replicate_value",
    "complemented_check",
    "find_condition_cmp",
]

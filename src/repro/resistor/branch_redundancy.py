"""Branch redundancy (§VI-B.b, first FunctionPass).

"The first [pass] replicates the true condition for every conditional
branch in the control-flow graph." For a branch ``condbr (a == b), T, F``
a check block is spliced onto the true edge:

.. code-block:: none

       condbr (a == b) ? check : F
   check:
       a' = replicate(a)           ; volatile reloads where possible
       b' = replicate(b)
       condbr (~a' == ~b') ? T : gr.detect

Under normal operation the redundant check "will never be false", so
reaching ``gr.detect`` means a glitch flipped the first branch — this is
the detection mechanism behind Table VI's detection rates.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass
from repro.resistor._util import complemented_check, detect_block, find_condition_cmp


class BranchRedundancyPass(IRPass):
    name = "gr-branches"

    def __init__(
        self,
        detect_function: str = "gr_detected",
        skip_functions: tuple[str, ...] = (),
        only_branches: "set[tuple[str, str]] | None" = None,
    ):
        self.detect_function = detect_function
        self.skip_functions = set(skip_functions)
        #: optional (function, block-label) restriction from the selective
        #: static analysis (§VII-A future work); None = instrument everything
        self.only_branches = only_branches
        self.instrumented = 0
        self.skipped = 0

    def run(self, module: ir.IRModule) -> str:
        for name, function in module.functions.items():
            if name in self.skip_functions or name == self.detect_function:
                continue
            self._instrument_function(function)
        return f"instrumented {self.instrumented} branches, skipped {self.skipped}"

    def _instrument_function(self, function: ir.IRFunction) -> None:
        # snapshot: the pass adds blocks while iterating
        for label in list(function.blocks):
            block = function.blocks[label]
            terminator = block.terminator
            if not isinstance(terminator, ir.CondBr) or terminator.redundant_clone:
                continue
            if (
                self.only_branches is not None
                and (function.name, label) not in self.only_branches
            ):
                self.skipped += 1
                continue
            cmp = find_condition_cmp(block, terminator.cond)
            if cmp is None:
                self.skipped += 1  # boolean-valued temp from another block
                continue
            self._protect_true_edge(function, block, terminator, cmp)
            self.instrumented += 1

    def _protect_true_edge(
        self,
        function: ir.IRFunction,
        block: ir.Block,
        terminator: ir.CondBr,
        cmp: ir.Cmp,
    ) -> None:
        check = function.new_block("gr.check")
        instrs: list[ir.Instr] = []
        check_cond = complemented_check(function, block, cmp, instrs)
        check.instrs = instrs
        detect = detect_block(function, self.detect_function)
        check.terminator = ir.CondBr(
            cond=check_cond,
            if_true=terminator.if_true,
            if_false=detect.label,
            redundant_clone=True,
        )
        terminator.if_true = check.label


__all__ = ["BranchRedundancyPass"]

"""GlitchResistor configuration.

Defenses are à la carte (the paper evaluates each independently in
Table IV/V and stacked in Table VI). ``sensitive_variables`` plays the role
of the paper's developer-provided configuration file listing globals to
protect with data integrity. ``delay_opt_out`` lists functions the random
delay must not instrument (the paper supports opt-in/opt-out modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ResistorConfig:
    enums: bool = False
    returns: bool = False
    branches: bool = False
    loops: bool = False
    integrity: bool = False
    delay: bool = False
    sensitive_variables: tuple[str, ...] = ()
    delay_opt_out: tuple[str, ...] = ()
    #: when non-empty, the redundancy passes only instrument branches that
    #: can reach one of these functions (the §VII-A static-analysis
    #: reduction; see repro.resistor.selective)
    critical_functions: tuple[str, ...] = ()
    #: name of the developer's detection-reaction function; GlitchResistor
    #: provides a default (spin forever) when the program does not define it
    detect_function: str = "gr_detected"

    @property
    def any_enabled(self) -> bool:
        return any(
            (self.enums, self.returns, self.branches, self.loops, self.integrity, self.delay)
        )

    def describe(self) -> str:
        enabled = [
            name
            for name, on in (
                ("enums", self.enums), ("returns", self.returns),
                ("branches", self.branches), ("loops", self.loops),
                ("integrity", self.integrity), ("delay", self.delay),
            )
            if on
        ]
        return "+".join(enabled) if enabled else "none"

    def without(self, **kwargs: bool) -> "ResistorConfig":
        return replace(self, **{key: False for key in kwargs if kwargs[key]})

    # ------------------------------------------------------------------
    # presets matching the paper's evaluation rows
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "ResistorConfig":
        return cls()

    @classmethod
    def all(cls, sensitive: tuple[str, ...] = ()) -> "ResistorConfig":
        return cls(
            enums=True, returns=True, branches=True, loops=True,
            integrity=True, delay=True, sensitive_variables=sensitive,
        )

    @classmethod
    def all_but_delay(cls, sensitive: tuple[str, ...] = ()) -> "ResistorConfig":
        return cls(
            enums=True, returns=True, branches=True, loops=True,
            integrity=True, delay=False, sensitive_variables=sensitive,
        )

    @classmethod
    def only(cls, defense: str, sensitive: tuple[str, ...] = ()) -> "ResistorConfig":
        """One defense alone — the Table IV/V per-defense rows."""
        if defense not in ("enums", "returns", "branches", "loops", "integrity", "delay"):
            raise ValueError(f"unknown defense {defense!r}")
        return cls(**{defense: True}, sensitive_variables=sensitive)


    @classmethod
    def from_file(cls, path: str) -> "ResistorConfig":
        """Load a configuration from a JSON file.

        This plays the role of the paper's developer-provided configuration
        file ("listing them in a configuration file", §VI-B.a). Recognised
        keys: the six defense booleans, ``sensitive_variables``,
        ``delay_opt_out``, ``critical_functions``, ``detect_function``.
        """
        import json

        with open(path) as handle:
            raw = json.load(handle)
        known = {
            "enums", "returns", "branches", "loops", "integrity", "delay",
            "sensitive_variables", "delay_opt_out", "critical_functions",
            "detect_function",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        for key in ("sensitive_variables", "delay_opt_out", "critical_functions"):
            if key in raw:
                raw[key] = tuple(raw[key])
        return cls(**raw)


__all__ = ["ResistorConfig"]

"""Data integrity for sensitive variables (§VI-B.a).

Each developer-listed sensitive global gets a complementary *integrity*
variable "allocated in a separate region of memory to ensure that it is not
physically co-located with the initial variable". Writes store the value
and its complement; reads verify ``var ^ varIntegrity == ~0`` and divert to
the detection reaction on mismatch.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass
from repro.compiler.sema import GlobalInfo
from repro.errors import PassError
from repro.resistor._util import detect_block

WORD_MASK = 0xFFFFFFFF


def shadow_name(name: str) -> str:
    return f"{name}__gr_integrity"


class DataIntegrityPass(IRPass):
    name = "gr-integrity"

    def __init__(
        self,
        sensitive: tuple[str, ...],
        detect_function: str = "gr_detected",
        init_in: str = "main",
    ):
        self.sensitive = tuple(sensitive)
        self.detect_function = detect_function
        self.init_in = init_in
        self.protected_loads = 0
        self.protected_stores = 0

    def run(self, module: ir.IRModule) -> str:
        if not self.sensitive:
            return "no sensitive variables configured"
        for name in self.sensitive:
            info = module.globals.get(name)
            if info is None:
                raise PassError(f"sensitive variable {name!r} is not a global")
            if info.ctype.size != 4:
                raise PassError(
                    f"sensitive variable {name!r} must be a 4-byte integer "
                    f"(got {info.ctype.size}-byte {info.ctype.name})"
                )
            self._add_shadow(module, info)
        for function in module.functions.values():
            if function.name == self.detect_function:
                continue
            self._instrument_function(module, function)
        self._initialize_shadows(module)
        return (
            f"shadowed {len(self.sensitive)} variables; "
            f"{self.protected_loads} loads verified, "
            f"{self.protected_stores} stores mirrored"
        )

    # ------------------------------------------------------------------

    def _add_shadow(self, module: ir.IRModule, info: GlobalInfo) -> None:
        shadow = GlobalInfo(
            name=shadow_name(info.name),
            ctype=dc_replace(info.ctype, volatile=True),
            initial=(~info.initial) & WORD_MASK,
            has_initializer=False,  # written at boot by the injected init code
        )
        shadow.region = "far"  # type: ignore[attr-defined]
        module.globals[shadow.name] = shadow

    def _initialize_shadows(self, module: ir.IRModule) -> None:
        """Prepend ``shadow = ~initial`` stores to the entry function so the
        invariant holds before the first protected load."""
        entry = module.functions.get(self.init_in)
        if entry is None:
            raise PassError(f"integrity init target {self.init_in!r} is not defined")
        entry_block = entry.blocks[entry.entry]
        prologue: list[ir.Instr] = []
        for name in self.sensitive:
            info = module.globals[name]
            temp = entry.new_temp()
            prologue.append(ir.Const(result=temp, value=(~info.initial) & WORD_MASK))
            prologue.append(
                ir.StoreGlobal(name=shadow_name(name), operand=temp, width=4, volatile=True)
            )
        entry_block.instrs = prologue + entry_block.instrs

    # ------------------------------------------------------------------

    def _instrument_function(self, module: ir.IRModule, function: ir.IRFunction) -> None:
        changed = True
        while changed:
            changed = False
            for label in list(function.blocks):
                block = function.blocks[label]
                for index, instr in enumerate(block.instrs):
                    if isinstance(instr, ir.StoreGlobal) and instr.name in self.sensitive:
                        if not getattr(instr, "_gr_done", False):
                            self._mirror_store(function, block, index, instr)
                            changed = True
                            break
                    if isinstance(instr, ir.LoadGlobal) and instr.name in self.sensitive:
                        if not getattr(instr, "_gr_done", False):
                            self._verify_load(function, block, index, instr)
                            changed = True
                            break
                if changed:
                    break

    def _mirror_store(
        self, function: ir.IRFunction, block: ir.Block, index: int, store: ir.StoreGlobal
    ) -> None:
        store._gr_done = True  # type: ignore[attr-defined]
        ones = function.new_temp()
        inverted = function.new_temp()
        mirror = [
            ir.Const(result=ones, value=WORD_MASK),
            ir.BinOp(result=inverted, op="xor", lhs=store.operand, rhs=ones),
            ir.StoreGlobal(name=shadow_name(store.name), operand=inverted, width=4, volatile=True),
        ]
        block.instrs[index + 1:index + 1] = mirror
        self.protected_stores += 1

    def _verify_load(
        self, function: ir.IRFunction, block: ir.Block, index: int, load: ir.LoadGlobal
    ) -> None:
        load._gr_done = True  # type: ignore[attr-defined]
        shadow = function.new_temp()
        mixed = function.new_temp()
        ones = function.new_temp()
        check = function.new_temp()
        verification: list[ir.Instr] = [
            ir.LoadGlobal(result=shadow, name=shadow_name(load.name), width=4,
                          signed=False, volatile=True),
            ir.BinOp(result=mixed, op="xor", lhs=load.result, rhs=shadow),
            ir.Const(result=ones, value=WORD_MASK),
            ir.Cmp(result=check, op="eq", lhs=mixed, rhs=ones),
        ]
        tail = function.split_block(block.label, index + 1, hint="gr.intok")
        block.instrs.extend(verification)
        detect = detect_block(function, self.detect_function)
        block.terminator = ir.CondBr(
            cond=check, if_true=tail.label, if_false=detect.label, redundant_clone=True
        )
        self.protected_loads += 1


__all__ = ["DataIntegrityPass", "shadow_name"]

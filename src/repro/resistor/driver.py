"""``harden()``: compile MiniC with GlitchResistor defenses applied.

Pass order mirrors the paper's architecture: the ENUM rewriter runs at the
source/AST level (a Clang rewriter there, a program transform here); then
the IR passes — return-code diversification first (it rewrites constants),
data integrity, branch redundancy, loop redundancy — and random delay last
so the injected checks are themselves covered by timing randomisation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.compiler.driver import CompiledProgram, compile_source
from repro.resistor.branch_redundancy import BranchRedundancyPass
from repro.resistor.config import ResistorConfig
from repro.resistor.data_integrity import DataIntegrityPass
from repro.resistor.enum_rewriter import rewrite_enums
from repro.resistor.loop_redundancy import LoopRedundancyPass
from repro.resistor.random_delay import RandomDelayPass, RUNTIME_FUNCTIONS
from repro.resistor.report import InstrumentationReport
from repro.resistor.return_codes import ReturnCodeDiversificationPass
from repro.resistor.runtime import runtime_source


@dataclass
class HardenedProgram:
    """A compiled program plus the defense report."""

    compiled: CompiledProgram
    config: ResistorConfig
    report: InstrumentationReport

    @property
    def image(self):
        return self.compiled.image

    @property
    def sizes(self):
        return self.compiled.sizes


def harden(
    source: str,
    config: ResistorConfig,
    entry_function: str = "main",
    optimize: bool = True,
) -> HardenedProgram:
    """Compile ``source`` with the defenses selected by ``config``."""
    report = InstrumentationReport(config_description=config.describe())

    full_source = source
    if config.any_enabled:
        need_detect = not _defines_function(source, config.detect_function)
        full_source = source + "\n" + runtime_source(
            delay=config.delay, need_detect=need_detect
        )

    def program_transform(program):
        if config.enums:
            result = rewrite_enums(program)
            report.enums_rewritten = result.rewritten
            report.enums_skipped = result.skipped
        return program

    runtime_skip = tuple(RUNTIME_FUNCTIONS)

    class _SelectivePass:
        """Runs first: computes the critical-reachability restriction."""

        name = "gr-selective"

        def run(self, module):
            from repro.resistor.selective import analyze_critical_reachability

            analysis = analyze_critical_reachability(module, config.critical_functions)
            restriction = set(analysis.guarding_branches)
            branch_pass.only_branches = restriction
            loop_pass.only_branches = restriction
            return (
                f"{len(analysis.relevant_functions)} relevant functions, "
                f"{len(restriction)} guarding branches"
            )

    passes = []
    returns_pass = ReturnCodeDiversificationPass(skip_functions=runtime_skip)
    integrity_pass = DataIntegrityPass(
        sensitive=config.sensitive_variables,
        detect_function=config.detect_function,
        init_in=entry_function,
    )
    branch_pass = BranchRedundancyPass(
        detect_function=config.detect_function, skip_functions=runtime_skip
    )
    loop_pass = LoopRedundancyPass(
        detect_function=config.detect_function, skip_functions=runtime_skip
    )
    delay_pass = RandomDelayPass(opt_out=config.delay_opt_out)
    if config.critical_functions and (config.branches or config.loops):
        passes.append(_SelectivePass())
    if config.returns:
        passes.append(returns_pass)
    if config.integrity and config.sensitive_variables:
        passes.append(integrity_pass)
    if config.branches:
        passes.append(branch_pass)
    if config.loops:
        passes.append(loop_pass)
    if config.delay:
        passes.append(delay_pass)

    compiled = compile_source(
        full_source,
        extra_passes=passes,
        optimize=optimize,
        entry_function=entry_function,
        init_function="__gr_init" if config.delay else None,
        program_transform=program_transform,
    )

    report.return_codes = returns_pass.rewrites
    report.branches_instrumented = branch_pass.instrumented
    report.loops_instrumented = loop_pass.instrumented
    report.integrity_loads = integrity_pass.protected_loads
    report.integrity_stores = integrity_pass.protected_stores
    report.delays_injected = delay_pass.injected
    report.pass_log = list(compiled.pass_log)
    return HardenedProgram(compiled=compiled, config=config, report=report)


def _defines_function(source: str, name: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\s*\(", source) is not None and (
        re.search(rf"\bvoid\s+{re.escape(name)}\s*\(", source) is not None
        or re.search(rf"\bint\s+{re.escape(name)}\s*\(", source) is not None
    )


__all__ = ["harden", "HardenedProgram"]

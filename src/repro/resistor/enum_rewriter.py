"""ENUM Rewriter (§VI-A.a) — the AST-level constant-diversification defense.

The paper implements this as a Clang source rewriter because "in the LLVM
IR ... ENUMs will be replaced by corresponding constant values, and it is
hard to detect which constant is the result of an ENUM expansion". Our
equivalent operates on the analyzed program before lowering, for the same
reason: after lowering, enum identity is gone.

Only *fully uninitialized* enum declarations are rewritten — partially or
fully initialized declarations "could represent certain expected values"
and are left alone, exactly as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes import generate_diversified_constants, min_pairwise_distance
from repro.compiler.sema import Program


@dataclass
class EnumRewriteResult:
    program: Program
    #: enum-set name → {enumerator: new value}
    rewritten: dict[str, dict[str, int]] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)

    @property
    def total_rewritten(self) -> int:
        return sum(len(mapping) for mapping in self.rewritten.values())


def rewrite_enums(program: Program, min_distance: int = 8) -> EnumRewriteResult:
    """Replace uninitialized enum values with Reed-Solomon-derived constants.

    The returned program's ``enum_values`` map carries the diversified
    values; every later use (lowering folds enumerators to constants)
    inherits them automatically.
    """
    result = EnumRewriteResult(program=program)
    for index, enum in enumerate(program.unit.enums()):
        label = enum.name or f"<anonymous #{index}>"
        if not enum.fully_uninitialized:
            result.skipped.append(label)
            continue
        count = len(enum.enumerators)
        values = generate_diversified_constants(count, min_distance=min_distance)
        assert min_pairwise_distance(values) >= min_distance or count < 2
        mapping: dict[str, int] = {}
        for enumerator, value in zip(enum.enumerators, values):
            program.enum_values[enumerator.name] = value
            mapping[enumerator.name] = value
        result.rewritten[label] = mapping
    return result


__all__ = ["rewrite_enums", "EnumRewriteResult"]

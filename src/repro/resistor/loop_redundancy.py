"""Loop-guard redundancy (§VI-B.b, second FunctionPass).

The branch pass assumes "security-critical operations are typically guarded
by a conditional branch and that the default, false, branch is not as
important to protect ... However, this assumption does not hold with loops.
Thus, GlitchResistor performs a second pass to add the same redundant
instrumentation to the false branch of loop guards" — the *exit* edge of a
``while``/``for`` guard, which is exactly the edge a loop-escape glitch
takes (the attack of Tables I-III).
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass
from repro.resistor._util import complemented_check, detect_block, find_condition_cmp


class LoopRedundancyPass(IRPass):
    name = "gr-loops"

    def __init__(
        self,
        detect_function: str = "gr_detected",
        skip_functions: tuple[str, ...] = (),
        only_branches: "set[tuple[str, str]] | None" = None,
    ):
        self.detect_function = detect_function
        self.skip_functions = set(skip_functions)
        self.only_branches = only_branches
        self.instrumented = 0
        self.skipped = 0

    def run(self, module: ir.IRModule) -> str:
        for name, function in module.functions.items():
            if name in self.skip_functions or name == self.detect_function:
                continue
            self._instrument_function(function)
        return f"instrumented {self.instrumented} loop exits, skipped {self.skipped}"

    def _instrument_function(self, function: ir.IRFunction) -> None:
        for label in list(function.blocks):
            block = function.blocks[label]
            terminator = block.terminator
            if (
                not isinstance(terminator, ir.CondBr)
                or not terminator.is_loop_guard
                or terminator.redundant_clone
            ):
                continue
            if (
                self.only_branches is not None
                and (function.name, label) not in self.only_branches
            ):
                self.skipped += 1
                continue
            cmp = find_condition_cmp(block, terminator.cond)
            if cmp is None:
                self.skipped += 1
                continue
            self._protect_false_edge(function, block, terminator, cmp)
            self.instrumented += 1

    def _protect_false_edge(
        self,
        function: ir.IRFunction,
        block: ir.Block,
        terminator: ir.CondBr,
        cmp: ir.Cmp,
    ) -> None:
        check = function.new_block("gr.loopcheck")
        instrs: list[ir.Instr] = []
        check_cond = complemented_check(function, block, cmp, instrs)
        check.instrs = instrs
        detect = detect_block(function, self.detect_function)
        # the original guard said "false" — the complemented recheck must
        # also say false; if it says true, a glitch broke us out of the loop
        check.terminator = ir.CondBr(
            cond=check_cond,
            if_true=detect.label,
            if_false=terminator.if_false,
            redundant_clone=True,
        )
        terminator.if_false = check.label


__all__ = ["LoopRedundancyPass"]

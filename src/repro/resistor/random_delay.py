"""Random-timing injection (§VI-B.1).

"GlitchResistor currently injects randomness in the execution by injecting
a random busy loop at the end of each basic block ... the delay function is
injected at the end of every basic block that ends in a SwitchInst or
BranchInst (i.e., right before a branch)."

The injected call runs the glibc-parameter LCG and executes 0-10 NOPs,
which de-synchronises the attacker's trigger-to-target offset on every
boot (the seed is advanced in non-volatile memory by ``__gr_init``).
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass

#: runtime functions that must never be instrumented (recursion!)
RUNTIME_FUNCTIONS = ("gr_delay", "__gr_init", "gr_detected",
                     "__gr_udiv", "__gr_urem", "__gr_sdiv", "__gr_srem")


class RandomDelayPass(IRPass):
    name = "gr-delay"

    def __init__(self, opt_out: tuple[str, ...] = (), delay_function: str = "gr_delay"):
        self.opt_out = set(opt_out) | set(RUNTIME_FUNCTIONS)
        self.delay_function = delay_function
        self.injected = 0

    def run(self, module: ir.IRModule) -> str:
        for name, function in module.functions.items():
            if name in self.opt_out:
                continue
            for block in function.blocks.values():
                if isinstance(block.terminator, ir.CondBr):
                    call = ir.Call(func=self.delay_function, args=())
                    position = len(block.instrs)
                    # keep the compare adjacent to its branch (the hardware
                    # fuses them into cmp/b<cc>): the delay lands just before
                    # the comparison instead of between compare and branch
                    if (
                        block.instrs
                        and isinstance(block.instrs[-1], ir.Cmp)
                        and block.instrs[-1].result == block.terminator.cond
                    ):
                        position -= 1
                    block.instrs.insert(position, call)
                    self.injected += 1
        return f"injected {self.injected} delay calls"


__all__ = ["RandomDelayPass", "RUNTIME_FUNCTIONS"]

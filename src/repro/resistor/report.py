"""Instrumentation reporting: what GlitchResistor actually protected."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InstrumentationReport:
    """Summary of one hardened build."""

    config_description: str
    enums_rewritten: dict[str, dict[str, int]] = field(default_factory=dict)
    enums_skipped: list[str] = field(default_factory=list)
    return_codes: dict[str, dict[int, int]] = field(default_factory=dict)
    branches_instrumented: int = 0
    loops_instrumented: int = 0
    integrity_loads: int = 0
    integrity_stores: int = 0
    delays_injected: int = 0
    pass_log: list[tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"GlitchResistor instrumentation report ({self.config_description})"]
        if self.enums_rewritten:
            total = sum(len(m) for m in self.enums_rewritten.values())
            lines.append(f"  ENUM rewriter: {total} enumerators across {len(self.enums_rewritten)} sets")
            for set_name, mapping in self.enums_rewritten.items():
                for enumerator, value in mapping.items():
                    lines.append(f"    {set_name}.{enumerator} -> {value:#010x}")
        if self.enums_skipped:
            lines.append(f"  ENUM rewriter skipped (initialized): {', '.join(self.enums_skipped)}")
        if self.return_codes:
            lines.append(f"  return codes: {len(self.return_codes)} functions diversified")
            for function, mapping in self.return_codes.items():
                for original, value in mapping.items():
                    lines.append(f"    {function}: {original} -> {value:#010x}")
        lines.append(f"  branches instrumented: {self.branches_instrumented}")
        lines.append(f"  loop exits instrumented: {self.loops_instrumented}")
        lines.append(
            f"  integrity: {self.integrity_loads} loads verified, "
            f"{self.integrity_stores} stores mirrored"
        )
        lines.append(f"  random delays injected: {self.delays_injected}")
        return "\n".join(lines)


__all__ = ["InstrumentationReport"]

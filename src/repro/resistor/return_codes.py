"""Non-trivial return codes (§VI-A.b).

"GlitchResistor finds all of the functions that only return constant values
... When [the return values] are exclusively used directly in branches
(i.e., compared to a constant) GlitchResistor replaces the return value and
the constant that it is compared to with the hard-to-glitch values from our
Reed-Solomon implementation."

The point: ``return 0;`` / ``if (f() == 0)`` is one bit flip away from
``return 1``; RS-coded values are ≥8 bit flips apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes import generate_diversified_constants
from repro.compiler import ir
from repro.compiler.passes.pass_manager import IRPass


@dataclass
class _Candidate:
    function: str
    returned_values: set[int] = field(default_factory=set)
    #: (caller, Cmp instr, const instr) triples to rewrite
    comparisons: list = field(default_factory=list)


class ReturnCodeDiversificationPass(IRPass):
    name = "gr-returns"

    def __init__(self, skip_functions: tuple[str, ...] = ()):
        self.skip_functions = set(skip_functions)
        #: function → {original constant: diversified constant}
        self.rewrites: dict[str, dict[int, int]] = {}

    def run(self, module: ir.IRModule) -> str:
        candidates = self._find_candidates(module)
        eligible = {
            name: candidate
            for name, candidate in candidates.items()
            if candidate is not None
            and candidate.returned_values
            # "exclusively used directly in branches" implies the return
            # value is actually consumed by comparisons somewhere; functions
            # with no comparing callers (e.g. the program entry, whose value
            # is observed externally) are left alone
            and candidate.comparisons
        }
        total_values = sum(len(c.returned_values) for c in eligible.values())
        codes = generate_diversified_constants(total_values)
        cursor = 0
        for name, candidate in eligible.items():
            mapping: dict[int, int] = {}
            for original in sorted(candidate.returned_values):
                mapping[original] = codes[cursor]
                cursor += 1
            self.rewrites[name] = mapping
            self._rewrite(module, candidate, mapping)
        return (
            f"diversified {len(self.rewrites)} of {len(module.functions)} functions "
            f"({total_values} return codes)"
        )

    # ------------------------------------------------------------------

    def _find_candidates(self, module: ir.IRModule) -> dict[str, "_Candidate | None"]:
        candidates: dict[str, _Candidate | None] = {}
        for name, function in module.functions.items():
            if name in self.skip_functions or not function.returns_value:
                candidates[name] = None
                continue
            candidates[name] = self._constant_returns(function, name)
        # validate call-site usage (function-wide, so cross-block uses of a
        # call result are seen and disqualify the callee)
        for caller in module.functions.values():
            const_defs = {
                instr.result: instr
                for _, instr in caller.instructions()
                if isinstance(instr, ir.Const)
            }
            call_results = {
                instr.result: instr.func
                for _, instr in caller.instructions()
                if isinstance(instr, ir.Call) and instr.result is not None
            }
            for block in caller.blocks.values():
                for instr in block.instrs:
                    for used in instr.operands():
                        if used not in call_results:
                            continue
                        callee = call_results[used]
                        candidate = candidates.get(callee)
                        if candidate is None:
                            continue
                        if isinstance(instr, ir.Cmp):
                            other = instr.rhs if instr.lhs == used else instr.lhs
                            const = const_defs.get(other)
                            if (
                                const is not None
                                and instr.op in ("eq", "ne")
                                and const.value in candidate.returned_values
                            ):
                                candidate.comparisons.append((caller, instr, const))
                                continue
                        # any other use disqualifies the callee
                        candidates[callee] = None
                # uses via terminators (ret of a call result, condbr) disqualify
                terminator = block.terminator
                used_by_terminator = []
                if isinstance(terminator, ir.CondBr):
                    used_by_terminator.append(terminator.cond)
                elif isinstance(terminator, ir.Ret) and terminator.operand is not None:
                    used_by_terminator.append(terminator.operand)
                for used in used_by_terminator:
                    if used in call_results:
                        candidates[call_results[used]] = None
        return candidates

    def _constant_returns(self, function: ir.IRFunction, name: str) -> "_Candidate | None":
        candidate = _Candidate(function=name)
        for block in function.blocks.values():
            terminator = block.terminator
            if not isinstance(terminator, ir.Ret):
                continue
            if terminator.operand is None:
                return None
            definition = function.defining_instr(terminator.operand)
            if not isinstance(definition, ir.Const):
                return None
            candidate.returned_values.add(definition.value)
        return candidate

    def _rewrite(self, module: ir.IRModule, candidate: _Candidate, mapping: dict[int, int]) -> None:
        function = module.functions[candidate.function]
        for block in function.blocks.values():
            terminator = block.terminator
            if isinstance(terminator, ir.Ret) and terminator.operand is not None:
                definition = function.defining_instr(terminator.operand)
                if isinstance(definition, ir.Const):
                    definition.value = mapping[definition.value]
        for _, cmp_instr, const_instr in candidate.comparisons:
            const_instr.value = mapping[const_instr.value]


__all__ = ["ReturnCodeDiversificationPass"]

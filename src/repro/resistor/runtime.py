"""GlitchResistor's runtime support, written in MiniC.

- ``gr_detected`` — the detection reaction. The paper leaves the reaction
  to the developer; the default spins forever (a safe fail-stop). If the
  program defines its own ``gr_detected``, the default is not injected.
- ``gr_delay`` — the random busy loop: a linear congruential generator
  "with the input parameters used by glibc", executing between 0 and 10
  NOP instructions per invocation (§VI-B.1).
- ``__gr_init`` — runs from crt0 before ``main``: increments the seed in
  non-volatile memory "to thwart repeated attempts against the same seed"
  and whitens it into the working PRNG state. On our board the seed page
  sits at 0x0801F800 and survives resets.
"""

from __future__ import annotations

#: glibc's LCG multiplier/increment, as the paper specifies
LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
MAX_DELAY_NOPS = 10

SEED_ADDRESS = 0x0801_F800

DETECT_RUNTIME = """
void gr_detected(void) {
    for (;;) { }
}
"""

DELAY_RUNTIME = f"""
unsigned int __gr_seed;

void gr_delay(void) {{
    __gr_seed = __gr_seed * {LCG_MULTIPLIER} + {LCG_INCREMENT};
    // 0..{MAX_DELAY_NOPS} via multiply-shift (avoids pulling in the
    // division runtime for a modulo)
    unsigned int __gr_n = ((__gr_seed >> 16) * {MAX_DELAY_NOPS + 1}) >> 16;
    while (__gr_n != 0) {{
        __nop();
        __gr_n = __gr_n - 1;
    }}
}}

void __gr_init(void) {{
    unsigned int __gr_s = *(volatile unsigned int *)0x{SEED_ADDRESS:08X};
    __gr_s = __gr_s + 1;
    *(volatile unsigned int *)0x{SEED_ADDRESS:08X} = __gr_s;
    __gr_seed = __gr_s * 2654435761;
}}
"""


def runtime_source(delay: bool, need_detect: bool) -> str:
    """The MiniC runtime to append to a program being hardened."""
    parts = []
    if need_detect:
        parts.append(DETECT_RUNTIME)
    if delay:
        parts.append(DELAY_RUNTIME)
    return "\n".join(parts)


def lcg_reference(seed: int, steps: int) -> list[int]:
    """Host-side model of the delay LCG, for tests: the NOP counts the
    firmware will draw from ``seed`` over ``steps`` invocations."""
    counts = []
    state = seed & 0xFFFFFFFF
    for _ in range(steps):
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & 0xFFFFFFFF
        counts.append((((state >> 16) & 0xFFFF) * (MAX_DELAY_NOPS + 1)) >> 16)
    return counts


__all__ = [
    "DETECT_RUNTIME",
    "DELAY_RUNTIME",
    "runtime_source",
    "lcg_reference",
    "LCG_MULTIPLIER",
    "LCG_INCREMENT",
    "MAX_DELAY_NOPS",
    "SEED_ADDRESS",
]

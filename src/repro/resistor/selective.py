"""Selective instrumentation via static reachability analysis.

The paper closes §VII-A with: "Eventually, we want to use existing static
analysis techniques to further reduce the regions of code that need to be
instrumented." This module implements that future-work item: given a set
of *critical* functions (e.g. ``win``, ``unlock``, ``erase_flash``), a
reachability analysis over the IR marks:

- the functions from which a critical call is reachable in the call graph;
- within those functions, the conditional branches whose **true successor**
  can reach a critical call without re-crossing the branch.

The redundancy passes can then restrict themselves to the guarding
branches that actually protect something, cutting the instrumentation (and
its overhead) on code that never leads anywhere security-relevant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir


@dataclass
class SelectiveAnalysis:
    """Result of the reachability analysis."""

    critical_functions: tuple[str, ...]
    #: functions from which a critical call is reachable (incl. critical ones)
    relevant_functions: set[str] = field(default_factory=set)
    #: (function, block label) pairs whose CondBr guards a critical region
    guarding_branches: set[tuple[str, str]] = field(default_factory=set)

    def guards(self, function: str) -> set[str]:
        return {label for fn, label in self.guarding_branches if fn == function}


def analyze_critical_reachability(
    module: ir.IRModule, critical: tuple[str, ...]
) -> SelectiveAnalysis:
    """Compute which functions and branches can reach a critical call."""
    analysis = SelectiveAnalysis(critical_functions=tuple(critical))

    # ------------------------------------------------------------------
    # call graph: which functions (transitively) call a critical function?
    # ------------------------------------------------------------------
    callers: dict[str, set[str]] = {name: set() for name in module.functions}
    calls: dict[str, set[str]] = {name: set() for name in module.functions}
    for name, function in module.functions.items():
        for _, instr in function.instructions():
            if isinstance(instr, ir.Call):
                calls[name].add(instr.func)
                if instr.func in callers:
                    callers[instr.func].add(name)

    relevant = set(c for c in critical if c in module.functions)
    worklist = list(relevant)
    while worklist:
        current = worklist.pop()
        for caller in callers.get(current, ()):
            if caller not in relevant:
                relevant.add(caller)
                worklist.append(caller)
    analysis.relevant_functions = relevant

    # ------------------------------------------------------------------
    # intra-procedural: blocks that reach a critical-call block
    # ------------------------------------------------------------------
    critical_callees = set(critical) | {
        f for f in relevant if f not in critical
    }
    for name, function in module.functions.items():
        if name not in relevant and not _calls_any(function, critical_callees):
            continue
        for label, block in function.blocks.items():
            terminator = block.terminator
            if not isinstance(terminator, ir.CondBr):
                continue
            # "can reach a critical call without re-crossing the branch":
            # forward reachability from the true successor with the branch
            # block removed — a loop guard whose body only loops back is
            # therefore NOT a guard, even if code after the loop is critical
            if _reaches_critical(function, terminator.if_true, label, critical_callees):
                analysis.guarding_branches.add((name, label))
    return analysis


def _reaches_critical(
    function: ir.IRFunction, start: str, excluded: str, names: set[str]
) -> bool:
    """Forward BFS from ``start``, never expanding ``excluded``."""
    seen = {excluded}
    worklist = [start]
    while worklist:
        label = worklist.pop()
        if label in seen:
            continue
        seen.add(label)
        block = function.blocks.get(label)
        if block is None:
            continue
        if any(isinstance(i, ir.Call) and i.func in names for i in block.instrs):
            return True
        if block.terminator is not None:
            worklist.extend(block.terminator.successors())
    return False


def _calls_any(function: ir.IRFunction, names: set[str]) -> bool:
    return any(
        isinstance(instr, ir.Call) and instr.func in names
        for _, instr in function.instructions()
    )


def _blocks_reaching_critical(function: ir.IRFunction, names: set[str]) -> set[str]:
    """Labels of blocks from which a call to ``names`` is reachable."""
    # seed: blocks containing a critical call
    seeds = {
        block.label
        for block in function.blocks.values()
        if any(isinstance(i, ir.Call) and i.func in names for i in block.instrs)
    }
    # reverse edges
    predecessors: dict[str, set[str]] = {label: set() for label in function.blocks}
    for label, block in function.blocks.items():
        if block.terminator is None:
            continue
        for successor in block.terminator.successors():
            if successor in predecessors:
                predecessors[successor].add(label)
    reaching = set(seeds)
    worklist = list(seeds)
    while worklist:
        current = worklist.pop()
        for predecessor in predecessors.get(current, ()):
            if predecessor not in reaching:
                reaching.add(predecessor)
                worklist.append(predecessor)
    return reaching


__all__ = ["SelectiveAnalysis", "analyze_critical_reachability"]

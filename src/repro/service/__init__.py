"""Campaign-as-a-service: async scheduler, dedup, streaming results.

The service layer (ROADMAP item 2) turns the CLI-per-run model into a
long-lived multiplexer: ``repro serve`` runs an asyncio
:class:`CampaignScheduler` behind a local socket, many clients submit
campaigns concurrently (``repro submit`` / :class:`ServiceClient`), and
the scheduler

- **dedupes** identical submissions — the parameter fingerprint
  (:func:`spec_fingerprint`, built on the checkpoint layer's
  :func:`~repro.exec.checkpoint.campaign_id`) maps every in-flight
  campaign to one unit whose tallies fan out to all subscribers;
- **backpressures** per client — :class:`repro.exec.SlotPool` slots cap
  each client's concurrent jobs without letting one tenant starve
  another, Scrapy downloader-slot style;
- **streams** — each campaign appends partial tallies to a torn-line-
  tolerant JSONL feed (:mod:`repro.service.feed`) clients can tail
  before the sweep completes;
- **survives** — every unit checkpoints with ``resume=True`` under a
  fingerprint-keyed directory, so a killed server resumes on resubmit
  and merges to tallies bit-identical to an uninterrupted run;
- **observes** — ``service.*`` counters and queue-depth gauges land in
  the same :mod:`repro.obs` event log every campaign already uses.

See docs/SERVICE.md for the operations guide.
"""

from repro.service.feed import CampaignFeed, feed_path, read_feed, tail_feed
from repro.service.scheduler import (
    CampaignScheduler,
    ServiceJob,
    default_service_root,
)
from repro.service.server import CampaignServer, DEFAULT_HOST, DEFAULT_PORT, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.units import (
    EXPERIMENT_NAMES,
    KINDS,
    SpecError,
    describe_spec,
    execute_unit,
    normalize_spec,
    spec_fingerprint,
)

__all__ = [
    "CampaignFeed",
    "CampaignScheduler",
    "CampaignServer",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EXPERIMENT_NAMES",
    "KINDS",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "SpecError",
    "default_service_root",
    "describe_spec",
    "execute_unit",
    "feed_path",
    "normalize_spec",
    "read_feed",
    "serve",
    "spec_fingerprint",
    "tail_feed",
]

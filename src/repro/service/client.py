"""Blocking client for the campaign service (used by the CLI and tests).

One :class:`ServiceClient` wraps one TCP connection speaking the line
protocol of :mod:`repro.service.server`. Connection setup retries until
``connect_timeout`` elapses, so a client started in the same breath as
the server (``repro serve ... &`` then ``repro submit ...``) simply
waits for the socket to appear instead of racing it.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator, Optional

from repro.service.server import DEFAULT_HOST, DEFAULT_PORT


class ServiceError(RuntimeError):
    """The server answered with an error record."""


class ServiceClient:
    """One connection to a running ``repro serve`` instance."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        connect_timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=5.0)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        # campaigns can run for minutes: reads block without a deadline
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    # ------------------------------------------------------------------

    def _send(self, payload: dict) -> None:
        self._sock.sendall(json.dumps(payload).encode() + b"\n")

    def _recv(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        record = json.loads(line)
        if record.get("type") == "error":
            raise ServiceError(record.get("error", "unknown server error"))
        return record

    # ------------------------------------------------------------------

    def submit(
        self,
        spec: dict,
        client: str = "cli",
        priority: int = 0,
        wait: bool = True,
    ) -> dict:
        """Submit one campaign spec.

        With ``wait=True`` (default) blocks until completion and returns
        the ``result`` record (``tallies`` inside); with ``wait=False``
        returns the ``accepted`` record immediately — tail the ``feed``
        path it names for streaming results.
        """
        self._send({"op": "submit", "spec": spec, "client": client,
                    "priority": priority, "wait": wait})
        accepted = self._recv()
        if not wait:
            return accepted
        result = self._recv()
        result["accepted"] = accepted
        return result

    def submit_accepted(self, spec: dict, client: str = "cli",
                        priority: int = 0) -> dict:
        """Submit with ``wait=True`` but return after the ``accepted`` line.

        The caller later calls :meth:`wait_result` on this connection —
        used when the dedup flag is needed before the campaign finishes.
        """
        self._send({"op": "submit", "spec": spec, "client": client,
                    "priority": priority, "wait": True})
        return self._recv()

    def wait_result(self) -> dict:
        """The ``result`` record matching an earlier :meth:`submit_accepted`."""
        return self._recv()

    def status(self) -> dict:
        self._send({"op": "status"})
        return self._recv()

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to drain (or drop the queue) and exit."""
        self._send({"op": "shutdown", "drain": drain})
        return self._recv()

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def tail(path, poll: float = 0.2, timeout: Optional[float] = None) -> Iterator[dict]:
    """Re-export of :func:`repro.service.feed.tail_feed` for CLI symmetry."""
    from repro.service.feed import tail_feed

    return tail_feed(path, poll=poll, timeout=timeout)


__all__ = ["ServiceClient", "ServiceError", "tail"]

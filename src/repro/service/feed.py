"""Incremental streaming result feeds: one JSONL file per campaign.

Modeled on Scrapy's feed exports: instead of buffering a campaign's
result until it completes, the service appends one JSON line per
completed work unit to ``<root>/feeds/<fingerprint>.jsonl``, so any
number of clients can *tail* the partial tallies of an in-flight sweep.

Record types, in file order:

- ``campaign`` — header: fingerprint, the normalized spec, a human label;
- ``progress`` — cumulative snapshot after each completed work unit
  (units done/total, attempts so far, per-category tallies);
- ``result`` — the final JSON tallies (exactly what subscribers receive);
- ``error`` — instead of ``result`` when the campaign failed.

The format shares the event log's torn-line discipline: records are
appended and flushed one line at a time, and :func:`read_feed` (a thin
wrapper over :func:`repro.obs.load_events`) skips a torn trailing line
from a crash mid-write instead of failing, so a feed is always readable
— even while the server is writing it, even after the server died.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.exec import ProgressReporter
from repro.obs import load_events


def feed_path(root: Union[str, os.PathLike], fingerprint: str) -> Path:
    """Where one campaign's feed lives under the service root."""
    return Path(root) / "feeds" / f"{fingerprint}.jsonl"


class CampaignFeed:
    """Append-only JSONL writer for one campaign's streaming results."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")

    def emit(self, record: dict) -> None:
        """Append one record and flush — tails see it immediately."""
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def header(self, fingerprint: str, spec: dict, label: str) -> None:
        self.emit({"type": "campaign", "fingerprint": fingerprint,
                   "label": label, "spec": spec})

    def result(self, tallies: dict) -> None:
        self.emit({"type": "result", "tallies": tallies})

    def error(self, message: str) -> None:
        self.emit({"type": "error", "error": message})

    def reporter(self) -> ProgressReporter:
        """A :class:`ProgressReporter` that streams snapshots into the feed.

        Handed to the campaign driver as its ``progress=``; every
        completed work unit appends one cumulative ``progress`` record
        (the partial tallies a tailing client renders).
        """

        def emit(snapshot) -> None:
            self.emit({
                "type": "progress",
                "units_done": snapshot.units_done,
                "units_total": snapshot.units_total,
                "attempts": snapshot.attempts,
                "categories": dict(snapshot.categories),
                "finished": snapshot.finished,
            })

        return ProgressReporter(callback=emit)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CampaignFeed":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_feed(path: Union[str, os.PathLike]) -> List[dict]:
    """Every complete record of a feed; torn trailing lines are skipped."""
    return load_events(path)


def tail_feed(
    path: Union[str, os.PathLike],
    poll: float = 0.2,
    timeout: Optional[float] = None,
) -> Iterator[dict]:
    """Yield feed records as they appear, until a terminal record.

    Follows the file like ``tail -f``: only complete (newline-terminated)
    lines are parsed, so a record the server is mid-writing is simply not
    yielded yet. Unparsable complete lines are skipped with the same
    tolerance as :func:`read_feed`. The generator ends after yielding a
    ``result`` or ``error`` record; ``timeout`` (seconds, ``None`` =
    forever) bounds the total wait and raises :class:`TimeoutError`.
    """
    deadline = time.monotonic() + timeout if timeout is not None else None
    buffer = ""
    position = 0
    while True:
        try:
            # binary so seek offsets stay byte-exact regardless of content
            with open(path, "rb") as handle:
                handle.seek(position)
                raw = handle.read()
        except FileNotFoundError:
            raw = b""
        if raw:
            position += len(raw)
            buffer += raw.decode("utf-8", errors="replace")
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
                    if record.get("type") in ("result", "error"):
                        return
            continue  # drained a chunk — poll again immediately
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(f"no terminal record in {path} after {timeout}s")
        time.sleep(poll)


__all__ = ["CampaignFeed", "feed_path", "read_feed", "tail_feed"]

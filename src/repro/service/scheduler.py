"""Asyncio campaign scheduler: priority queues, per-client slots, dedup.

The :class:`CampaignScheduler` is the service's engine, shaped like
Scrapy's event-driven core: submissions enter a priority queue, a
dispatch loop moves them into execution as *global job slots* free up,
and per-client :class:`~repro.exec.SlotPool` slots provide backpressure
— one client flooding the queue cannot starve another, because dispatch
skips any queued job whose client is already at its concurrency budget.

**Dedup.** Every submission is normalized and fingerprinted
(:func:`repro.service.units.spec_fingerprint`). A submission whose
fingerprint matches an in-flight (queued or running) job does not create
a second unit: it *subscribes* to the existing one, and the single
execution's tallies fan out to every subscriber on completion. Because
campaigns are deterministic, subscribers are guaranteed bit-identical
results to running the campaign themselves — dedup only removes
duplicate work, never changes answers.

**Execution.** Jobs run in worker threads (``asyncio.to_thread``) so the
event loop stays responsive; the campaign itself may additionally fan
out over processes (``unit_workers``). Each job checkpoints under
``<root>/checkpoints/<fingerprint>`` with ``resume=True`` and streams
partial tallies to ``<root>/feeds/<fingerprint>.jsonl``
(:mod:`repro.service.feed`), so a killed server resumes and clients can
tail.

**Metrics.** The scheduler counts ``service.submissions`` (every submit),
``service.deduped`` (submissions attached to an in-flight unit),
``service.completed``/``service.failed``, and keeps the
``service.queue_depth`` / ``service.active_clients`` gauges current; a
job's campaign-level telemetry (attempts, cache hits, checkpoint
replays) runs under a per-job observer merged into the service observer
on completion, exactly like worker-process envelopes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.exec import SlotPool
from repro.exec.cache import default_cache_root
from repro.obs import Observer
from repro.service.feed import CampaignFeed, feed_path
from repro.service.units import (
    describe_spec,
    execute_unit,
    normalize_spec,
    spec_fingerprint,
)


def default_service_root() -> Path:
    """``<cache root>/service`` — feeds, checkpoints, and cache shards."""
    return default_cache_root() / "service"


@dataclass
class ServiceJob:
    """One in-flight campaign unit and everyone waiting on it."""

    fingerprint: str
    spec: dict  # normalized
    client: str  # the first submitter (owns the concurrency slot)
    priority: int
    seq: int
    feed: Path
    state: str = "queued"  # queued | running | done | failed
    clients: list = field(default_factory=list)  # every subscriber's client
    subscribers: list = field(default_factory=list)  # asyncio futures
    result: Optional[dict] = None
    error: Optional[str] = None

    @property
    def label(self) -> str:
        return describe_spec(self.spec)

    def describe(self) -> dict:
        """JSON-able row for ``status`` listings."""
        return {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "state": self.state,
            "priority": self.priority,
            "clients": list(self.clients),
            "feed": str(self.feed),
        }


class CampaignScheduler:
    """Priority-queue scheduler with fingerprint dedup and client slots.

    - ``job_slots`` — campaigns running concurrently (each in a worker
      thread; the bound on threads, not processes).
    - ``client_slots`` — queued-or-running jobs one client may own at a
      time; further submissions queue behind the client's own jobs
      (dedup subscriptions never consume a slot).
    - ``unit_workers`` — worker processes *inside* each campaign (the
      usual ``workers=`` fan-out).
    - ``priority`` — smaller runs earlier (0 is the default); ties break
      by submission order.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        job_slots: int = 2,
        client_slots: int = 2,
        unit_workers: int = 1,
        cache_max_shards: Optional[int] = 64,
        obs: Optional[Observer] = None,
    ):
        if job_slots < 1:
            raise ValueError(f"job_slots must be >= 1, got {job_slots}")
        self.root = Path(root) if root is not None else default_service_root()
        self.root.mkdir(parents=True, exist_ok=True)
        self.job_slots = job_slots
        self.unit_workers = unit_workers
        self.cache_max_shards = cache_max_shards
        # the service always observes itself: the event log is its
        # metrics plane, and `status` reads these counters
        self.obs = obs if obs is not None else Observer()
        self.slots = SlotPool(client_slots)
        self._queue: list[ServiceJob] = []
        self._inflight: dict[str, ServiceJob] = {}  # queued or running
        self._jobs: dict[str, ServiceJob] = {}  # full history this lifetime
        self._running = 0
        self._seq = 0
        self._closed = False
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._tasks: set = set()
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatch loop (call from inside the event loop)."""
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def aclose(self, drain: bool = True) -> None:
        """Graceful shutdown.

        ``drain=True`` (the default) lets every queued and running job
        finish before returning — nothing is lost, every feed ends with a
        terminal record. ``drain=False`` fails queued jobs immediately
        (subscribers get an error; their checkpoints survive for a
        resubmit) and waits only for the running ones. Either way the
        final metrics land in the observer and all feeds are closed.
        """
        if drain:
            await self.join()
        self._closed = True
        if not drain:
            for job in list(self._queue):
                self._finish(job, error="server shut down before the job ran")
            self._queue.clear()
        if self._wake is not None:
            self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def join(self) -> None:
        """Wait until the queue is empty and no job is running."""
        while self._queue or self._running:
            self._idle.clear()
            await self._idle.wait()

    # -- submission -----------------------------------------------------

    def submit(
        self, spec: dict, client: str = "anon", priority: int = 0
    ) -> tuple[ServiceJob, asyncio.Future, bool]:
        """Normalize, fingerprint, and enqueue (or attach to) a campaign.

        Returns ``(job, future, deduped)``: the future resolves with the
        job's JSON tallies (or raises on failure); ``deduped`` is True
        when the submission attached to an already in-flight unit instead
        of creating one. Raises :class:`repro.service.units.SpecError` on
        a malformed spec.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        norm = normalize_spec(spec)
        fingerprint = spec_fingerprint(norm)
        self.obs.count("service.submissions")
        future = asyncio.get_running_loop().create_future()
        job = self._inflight.get(fingerprint)
        if job is not None:
            job.subscribers.append(future)
            job.clients.append(client)
            self.obs.count("service.deduped")
            self.obs.event("service.submit", fingerprint=fingerprint,
                           client=client, deduped=True)
            return job, future, True
        job = ServiceJob(
            fingerprint=fingerprint,
            spec=norm,
            client=client,
            priority=priority,
            seq=self._seq,
            feed=feed_path(self.root, fingerprint),
            clients=[client],
            subscribers=[future],
        )
        self._seq += 1
        self._inflight[fingerprint] = job
        self._jobs[fingerprint] = job
        self._queue.append(job)
        self.obs.event("service.submit", fingerprint=fingerprint,
                       client=client, deduped=False)
        self._update_gauges()
        if self._wake is not None:
            self._wake.set()
        return job, future, False

    # -- dispatch -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while not self._closed:
            if not self._try_dispatch():
                self._wake.clear()
                if self._closed:
                    break
                await self._wake.wait()

    def _try_dispatch(self) -> bool:
        """Start the best eligible queued job; False when none can run."""
        if self._running >= self.job_slots or not self._queue:
            return False
        self._queue.sort(key=lambda job: (job.priority, job.seq))
        for job in self._queue:
            # per-client backpressure: skip (don't block on) a saturated
            # client so other clients' jobs flow past it
            if self.slots.try_acquire(job.client):
                self._queue.remove(job)
                # claim the job slot here, not inside the task: the task
                # body runs a loop-turn later, and dispatching again in
                # that window would overshoot job_slots
                self._running += 1
                job.state = "running"
                task = asyncio.create_task(self._run_job(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                return True
        return False

    async def _run_job(self, job: ServiceJob) -> None:
        self._update_gauges()
        feed = CampaignFeed(job.feed)
        feed.header(job.fingerprint, job.spec, job.label)
        # per-job observer: campaign counters merge into the service
        # observer atomically on completion, mirroring worker envelopes
        job_obs = Observer()
        try:
            tallies = await asyncio.to_thread(
                execute_unit,
                job.spec,
                root=self.root,
                cache_max_shards=self.cache_max_shards,
                workers=self.unit_workers,
                progress=feed.reporter(),
                obs=job_obs,
            )
        except Exception as exc:
            self.obs.merge(dict(job_obs.counters), tuple(job_obs.events))
            feed.error(repr(exc))
            self._finish(job, error=repr(exc))
        else:
            self.obs.merge(dict(job_obs.counters), tuple(job_obs.events))
            feed.result(tallies)
            self._finish(job, tallies=tallies)
        finally:
            feed.close()
            self.slots.release(job.client)
            self._running -= 1
            self._update_gauges()
            if self._wake is not None:
                self._wake.set()
            if not self._queue and not self._running and self._idle is not None:
                self._idle.set()

    def _finish(
        self, job: ServiceJob, tallies: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> None:
        """Resolve every subscriber and retire the fingerprint."""
        self._inflight.pop(job.fingerprint, None)
        if error is None:
            job.state = "done"
            job.result = tallies
            self.obs.count("service.completed")
            for future in job.subscribers:
                if not future.done():
                    future.set_result(tallies)
        else:
            job.state = "failed"
            job.error = error
            self.obs.count("service.failed")
            for future in job.subscribers:
                if not future.done():
                    future.set_exception(RuntimeError(error))
        self.obs.event("service.finish", fingerprint=job.fingerprint,
                       state=job.state, subscribers=len(job.subscribers))
        self._update_gauges()

    # -- reporting ------------------------------------------------------

    def _update_gauges(self) -> None:
        self.obs.gauge("service.queue_depth", len(self._queue))
        self.obs.gauge("service.active_clients", len(self.slots.active_keys()))

    def status(self) -> dict:
        """JSON-able service status: queue, jobs, counters, gauges."""
        return {
            "queued": len(self._queue),
            "running": self._running,
            "job_slots": self.job_slots,
            "client_slots": self.slots.per_key,
            "active_clients": self.slots.active_keys(),
            "jobs": [job.describe() for job in self._jobs.values()],
            "metrics": self.obs.metrics(),
            "root": str(self.root),
        }


__all__ = ["CampaignScheduler", "ServiceJob", "default_service_root"]

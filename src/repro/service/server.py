"""The campaign server: newline-delimited JSON over a local TCP socket.

``repro serve`` binds ``127.0.0.1`` (by default) and speaks a tiny
line protocol — one JSON object per line in each direction — so any
language with sockets and JSON can submit campaigns; no HTTP stack is
required or used.

Requests (one per line)::

    {"op": "submit", "spec": {...}, "client": "alice",
     "priority": 0, "wait": true}
    {"op": "status"}
    {"op": "shutdown", "drain": true}

Responses:

- ``submit`` → ``{"type": "accepted", "job": <fingerprint>,
  "deduped": bool, "state": ..., "feed": <path>}``, then (when ``wait``
  is true, the default) a second line ``{"type": "result", "job": ...,
  "tallies": {...}}`` — or ``{"type": "error", ...}`` — once the
  campaign completes. With ``wait: false`` the client disconnects after
  ``accepted`` and tails the feed file instead.
- ``status`` → ``{"type": "status", ...}`` (queue depth, running jobs,
  per-job states, the service counters/gauges).
- ``shutdown`` → ``{"type": "bye"}``; the server then drains (finishes
  queued + running jobs, so every feed ends with a terminal record),
  flushes caches and feeds, emits the final metrics record, and exits.

A malformed line gets ``{"type": "error", "error": ...}`` and the
connection stays usable — one bad client request never takes the server
down.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.scheduler import CampaignScheduler
from repro.service.units import SpecError

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8377


class CampaignServer:
    """Accepts submissions over TCP and forwards them to the scheduler."""

    def __init__(
        self,
        scheduler: CampaignScheduler,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._drain = True
        self._handlers: set = set()
        self._writers: set = set()

    async def start(self) -> None:
        """Bind the socket and start the scheduler's dispatch loop."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # port 0 asks the OS for an ephemeral port; report what we got
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request, then drain and close.

        Shutdown order matters: stop accepting, close the scheduler
        (which resolves every submit future the handlers are awaiting),
        give handlers a grace period to flush their final responses and
        exit (the shutdown flag breaks their read loops), then wake any
        connection still parked on ``readline`` by closing its
        transport. Handler tasks are awaited explicitly rather than via
        ``Server.wait_closed`` because its semantics changed across
        3.10/3.12 — this way no handler is ever cancelled mid-write and
        nothing leaks into the event loop's teardown.
        """
        await self._shutdown.wait()
        self._server.close()
        await self.scheduler.aclose(drain=self._drain)
        if self._handlers:
            await asyncio.wait(set(self._handlers), timeout=2.0)
        for writer in list(self._writers):
            if not writer.is_closing():
                writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        await self._server.wait_closed()
        self.scheduler.obs.close()

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    await self._dispatch(line, writer)
                except ConnectionError:
                    break
                if self._shutdown.is_set():
                    break
        finally:
            self._handlers.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, line: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            await self._send(writer, {"type": "error", "error": f"bad request: {exc}"})
            return
        op = request.get("op")
        if op == "submit":
            await self._handle_submit(request, writer)
        elif op == "status":
            await self._send(writer, {"type": "status", **self.scheduler.status()})
        elif op == "shutdown":
            self._drain = bool(request.get("drain", True))
            await self._send(writer, {"type": "bye", "drain": self._drain})
            self._shutdown.set()
        else:
            await self._send(writer, {"type": "error",
                                      "error": f"unknown op {op!r}"})

    async def _handle_submit(self, request: dict,
                             writer: asyncio.StreamWriter) -> None:
        try:
            job, future, deduped = self.scheduler.submit(
                request.get("spec") or {},
                client=str(request.get("client", "anon")),
                priority=int(request.get("priority", 0)),
            )
        except (SpecError, RuntimeError, ValueError, OSError) as exc:
            await self._send(writer, {"type": "error", "error": str(exc)})
            return
        await self._send(writer, {
            "type": "accepted",
            "job": job.fingerprint,
            "label": job.label,
            "deduped": deduped,
            "state": job.state,
            "feed": str(job.feed),
        })
        if not request.get("wait", True):
            # nobody will await this subscription — detach it so the
            # job's completion doesn't log an un-retrieved exception
            future.cancel()
            return
        try:
            tallies = await future
        except Exception as exc:
            await self._send(writer, {"type": "error", "job": job.fingerprint,
                                      "error": str(exc)})
        else:
            await self._send(writer, {"type": "result", "job": job.fingerprint,
                                      "tallies": tallies})

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, record: dict) -> None:
        writer.write(json.dumps(record, default=str).encode() + b"\n")
        await writer.drain()


async def serve(
    root=None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    job_slots: int = 2,
    client_slots: int = 2,
    unit_workers: int = 1,
    cache_max_shards: Optional[int] = 64,
    obs=None,
    ready=None,
) -> None:
    """Build a scheduler + server and run until a shutdown request.

    ``ready(host, port)`` (if given) is called once the socket is bound —
    with ``port=0`` this is how callers learn the ephemeral port.
    """
    scheduler = CampaignScheduler(
        root=root, job_slots=job_slots, client_slots=client_slots,
        unit_workers=unit_workers, cache_max_shards=cache_max_shards, obs=obs,
    )
    server = CampaignServer(scheduler, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server.host, server.port)
    await server.serve_until_shutdown()


__all__ = ["CampaignServer", "DEFAULT_HOST", "DEFAULT_PORT", "serve"]

"""Service work units: submission specs, fingerprints, and execution.

A *submission* is a JSON-able dict describing one campaign. Three kinds
are accepted:

- ``{"kind": "branch", "model": "and", ...}`` — a Figure 2 style
  per-branch campaign (:func:`repro.glitchsim.campaign.run_branch_campaign`);
- ``{"kind": "image", "path": "fw.hex", "models": [...], ...}`` — a
  whole-image site campaign (:func:`repro.campaign.run_image_campaign`);
- ``{"kind": "experiment", "name": "table1", ...}`` — one of the paper's
  table/figure drivers (:mod:`repro.experiments`).

:func:`normalize_spec` validates a raw submission and canonicalizes it
(defaults filled, lists sorted where order is irrelevant, the firmware
*digest* substituted for its path); :func:`spec_fingerprint` derives the
dedup identity from the canonical spec via the same digest machinery the
checkpoint layer uses (:func:`repro.exec.checkpoint.campaign_id`).
Execution-only keys — ``path``, ``engine``, ``tally``, ``workers`` — are
excluded from the fingerprint, exactly as engine/tally are excluded from
checkpoint fingerprints: they cannot change tallies, so two submissions
differing only there are the *same* campaign and dedupe onto one unit.

:func:`execute_unit` runs one normalized spec to completion and returns
its JSON-able tallies. Every execution checkpoints under
``<root>/checkpoints/<fingerprint>/`` with ``resume=True``, so a killed
server that receives the same submission again resumes from the last
completed work unit and merges to tallies bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.exec import OutcomeCache, ProgressReporter
from repro.exec.checkpoint import campaign_id
from repro.obs import Observer

#: accepted submission kinds
KINDS = ("branch", "image", "experiment")

#: experiment names the service will run (the serial-only renderers —
#: table4/5/7 and search — stay CLI-only: they finish in milliseconds
#: and have nothing to checkpoint or stream)
EXPERIMENT_NAMES = ("fig2", "table1", "table2", "table3", "table6")

#: flip models accepted for branch/image campaigns
FLIP_MODELS = ("and", "or", "xor")

#: keys that cannot change tallies and are excluded from the fingerprint
#: (the image digest already covers base + content, so path/base/format
#: are pure load instructions)
EXECUTION_KEYS = ("path", "base", "format", "engine", "tally", "workers")


class SpecError(ValueError):
    """A submission spec is malformed (unknown kind, bad field, ...)."""


def _coerce_int_tuple(value: Any, field: str) -> Optional[tuple]:
    if value is None:
        return None
    try:
        return tuple(int(v) for v in value)
    except (TypeError, ValueError):
        raise SpecError(f"{field} must be a list of integers, got {value!r}")


def normalize_spec(spec: Mapping[str, Any]) -> dict:
    """Validate and canonicalize one raw submission dict.

    Returns a new dict with defaults filled and fields canonically
    ordered/typed, so that two submissions meaning the same campaign
    normalize to the same dict (and therefore the same fingerprint).
    Raises :class:`SpecError` on anything malformed.
    """
    if not isinstance(spec, Mapping):
        raise SpecError(f"submission must be a JSON object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in KINDS:
        raise SpecError(f"unknown kind {kind!r}; expected one of {KINDS}")
    engine = spec.get("engine", "snapshot")
    if engine not in ("snapshot", "rebuild", "vector"):
        raise SpecError(f"unknown engine {engine!r}")
    tally = spec.get("tally", "algebra")
    if tally not in ("algebra", "enumerate"):
        raise SpecError(f"unknown tally {tally!r}")

    if kind == "branch":
        model = spec.get("model")
        if model not in FLIP_MODELS:
            raise SpecError(f"branch model must be one of {FLIP_MODELS}, got {model!r}")
        conditions = spec.get("conditions")
        if conditions is not None:
            conditions = sorted(str(c) for c in conditions)
        return {
            "kind": "branch",
            "model": model,
            "zero_is_invalid": bool(spec.get("zero_is_invalid", False)),
            "k_values": _coerce_int_tuple(spec.get("k_values"), "k_values"),
            "conditions": conditions,
            "engine": engine,
            "tally": tally,
        }

    if kind == "image":
        path = spec.get("path")
        if not path:
            raise SpecError("image submissions require a 'path'")
        image = _load_spec_image(spec)
        models = tuple(spec.get("models") or FLIP_MODELS)
        unknown = [m for m in models if m not in FLIP_MODELS]
        if unknown:
            raise SpecError(f"unknown flip model(s) {unknown}")
        strategy = spec.get("strategy", "linear")
        if strategy not in ("linear", "entry"):
            raise SpecError(f"unknown strategy {strategy!r}")
        return {
            "kind": "image",
            # the digest, not the path, is the campaign identity: the same
            # image submitted from two paths is one in-flight unit
            "digest": image.digest,
            "path": str(path),
            "base": spec.get("base"),
            "format": spec.get("format", "auto"),
            "models": list(models),
            "strategy": strategy,
            "zero_is_invalid": bool(spec.get("zero_is_invalid", False)),
            "k_values": _coerce_int_tuple(spec.get("k_values"), "k_values"),
            "engine": engine,
            "tally": tally,
        }

    name = spec.get("name")
    if name not in EXPERIMENT_NAMES:
        raise SpecError(
            f"unknown experiment {name!r}; expected one of {EXPERIMENT_NAMES}"
        )
    stride = int(spec.get("stride", 4))
    if stride < 1:
        raise SpecError(f"stride must be >= 1, got {stride}")
    return {
        "kind": "experiment",
        "name": name,
        "stride": stride,
        "fault_model": spec.get("fault_model"),
        "profile": spec.get("profile"),
        "engine": engine,
        "tally": tally,
    }


def _load_spec_image(spec: Mapping[str, Any]):
    from repro.firmware.image import ImageError, load_image

    base = spec.get("base")
    try:
        return load_image(
            spec["path"],
            base=int(base, 0) if isinstance(base, str) else base,
            fmt=spec.get("format", "auto"),
        )
    except (ImageError, OSError, ValueError) as exc:
        raise SpecError(f"cannot load image {spec['path']!r}: {exc}")


def spec_fingerprint(norm: Mapping[str, Any]) -> str:
    """The dedup identity of a normalized spec.

    ``svc-<kind>-<sha1 digest>`` over every tally-determining field;
    execution-only keys (:data:`EXECUTION_KEYS`) are excluded, so two
    submissions that differ only in engine, tally mode, worker count, or
    the filesystem path of the same image dedupe onto one unit.
    """
    meta = {k: v for k, v in norm.items() if k not in EXECUTION_KEYS}
    return campaign_id(f"svc-{norm['kind']}", meta)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


def checkpoint_dir_for(root: Path, fingerprint: str) -> Path:
    """Where one fingerprint's campaign checkpoints live under the service root."""
    return Path(root) / "checkpoints" / fingerprint


def execute_unit(
    norm: Mapping[str, Any],
    root: Path,
    cache_max_shards: Optional[int] = None,
    workers: int = 1,
    progress: Optional[ProgressReporter] = None,
    obs: Optional[Observer] = None,
) -> dict:
    """Run one normalized submission to completion; return JSON tallies.

    Checkpoints live under ``checkpoints/<fingerprint>`` inside ``root``
    and are always opened with ``resume=True``, so re-submitting after a
    crash (or a killed server) replays completed work units. The outcome
    cache is the shared multi-tenant store at ``<root>/cache`` — every
    unit opens its own handle on the same shard files (exactly as worker
    processes do), bounded in memory by ``cache_max_shards``.
    """
    fingerprint = spec_fingerprint(norm)
    checkpoints = checkpoint_dir_for(root, fingerprint)
    cache = OutcomeCache(Path(root) / "cache", max_shards=cache_max_shards)
    kind = norm["kind"]
    try:
        if kind == "branch":
            return _execute_branch(norm, checkpoints, cache, workers, progress, obs)
        if kind == "image":
            return _execute_image(norm, checkpoints, cache, workers, progress, obs)
        return _execute_experiment(norm, checkpoints, workers, progress, obs)
    finally:
        cache.flush()


def _execute_branch(norm, checkpoints, cache, workers, progress, obs) -> dict:
    from repro.glitchsim.campaign import run_branch_campaign

    result = run_branch_campaign(
        norm["model"],
        zero_is_invalid=norm["zero_is_invalid"],
        k_values=tuple(norm["k_values"]) if norm["k_values"] else None,
        conditions=list(norm["conditions"]) if norm["conditions"] else None,
        workers=workers,
        cache=cache,
        progress=progress,
        checkpoint_dir=str(checkpoints),
        resume=True,
        obs=obs,
        engine=norm["engine"],
        tally=norm["tally"],
    )
    return {
        "kind": "branch",
        "model": result.model,
        "zero_is_invalid": result.zero_is_invalid,
        "sweeps": {
            sweep.mnemonic: {
                str(k): dict(counter) for k, counter in sorted(sweep.by_k.items())
            }
            for sweep in result.sweeps
        },
    }


def _execute_image(norm, checkpoints, cache, workers, progress, obs) -> dict:
    from repro.campaign import run_image_campaign
    from repro.firmware.image import load_image

    base = norm.get("base")
    image = load_image(
        norm["path"],
        base=int(base, 0) if isinstance(base, str) else base,
        fmt=norm.get("format", "auto"),
    )
    if image.digest != norm["digest"]:
        raise SpecError(
            f"image at {norm['path']} changed since submission: digest "
            f"{image.digest} != {norm['digest']}"
        )
    result = run_image_campaign(
        image,
        models=tuple(norm["models"]),
        strategy=norm["strategy"],
        zero_is_invalid=norm["zero_is_invalid"],
        k_values=tuple(norm["k_values"]) if norm["k_values"] else None,
        workers=workers,
        cache=cache,
        progress=progress,
        checkpoint_dir=str(checkpoints),
        resume=True,
        obs=obs,
        engine=norm["engine"],
        tally=norm["tally"],
    )
    return {
        "kind": "image",
        "digest": result.digest,
        "models": list(result.models),
        "sweeps": {
            model: {
                sweep.site.site_id: {
                    str(k): dict(counter) for k, counter in sorted(sweep.by_k.items())
                }
                for sweep in result.sweeps[model]
            }
            for model in result.models
        },
        "ranking": [
            {
                "site": entry.site.site_id,
                "rates": {m: entry.rates.get(m, 0.0) for m in result.models},
                "overall": entry.overall,
            }
            for entry in result.ranking()
        ],
    }


def _execute_experiment(norm, checkpoints, workers, progress, obs) -> dict:
    import repro.experiments as experiments

    name = norm["name"]
    common = dict(
        workers=workers, progress=progress, obs=obs,
        checkpoint_dir=str(checkpoints), resume=True,
    )
    if name == "fig2":
        result = experiments.run_figure2(
            engine=norm["engine"], tally=norm["tally"], **common
        )
    else:
        driver = getattr(experiments, f"run_{name}")
        result = driver(
            stride=norm["stride"], fault_model=norm["fault_model"],
            profile=norm["profile"], **common,
        )
    return {"kind": "experiment", "name": name, "render": result.render()}


def describe_spec(norm: Mapping[str, Any]) -> str:
    """One-line human label for status listings and feed headers."""
    kind = norm["kind"]
    if kind == "branch":
        return f"branch {norm['model']}"
    if kind == "image":
        return f"image {norm['digest'][:10]} [{','.join(norm['models'])}]"
    return f"experiment {norm['name']}"


__all__ = [
    "EXECUTION_KEYS",
    "EXPERIMENT_NAMES",
    "FLIP_MODELS",
    "KINDS",
    "SpecError",
    "checkpoint_dir_for",
    "describe_spec",
    "execute_unit",
    "normalize_spec",
    "spec_fingerprint",
]

"""Extract and smoke-run ``runnable``-marked code blocks from the docs.

Documentation rots when its examples stop working, so any fenced block
whose info string contains the word ``runnable`` (for example
```` ```bash runnable ```` or ```` ```python runnable ````) is part of
the test surface: the CI docs job executes every one of them with

    python tests/extract_doc_blocks.py --run docs/EXPERIMENTS.md

Supported languages: ``bash`` (each non-comment line is run as a shell
command) and ``python`` (the block is executed as a script). Commands
run from the repository root with ``src`` prepended to ``PYTHONPATH``,
matching the setup the docs tell readers to use.

`tests/test_docs_consistency.py` imports :func:`extract_runnable_blocks`
to assert the docs keep at least one runnable block per language.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```(\S*)[ \t]*(.*)$")


@dataclass(frozen=True)
class DocBlock:
    """One fenced code block lifted out of a markdown file."""

    path: Path  # the markdown file it came from
    line: int  # 1-based line number of the opening fence
    language: str  # the first word of the info string ("bash", "python")
    code: str  # block body, fences stripped


def extract_runnable_blocks(markdown_path: Path) -> list[DocBlock]:
    """Return every fenced block marked ``runnable`` in *markdown_path*.

    A block is runnable when the info string after the language word
    contains the token ``runnable``: ```` ```bash runnable ````.
    Unmarked blocks (golden-number listings, slow commands) are skipped.
    """
    blocks: list[DocBlock] = []
    language = None
    body: list[str] = []
    start = 0
    for number, raw in enumerate(markdown_path.read_text().splitlines(), start=1):
        match = _FENCE.match(raw.strip())
        if match is None:
            if language is not None:
                body.append(raw)
            continue
        if language is None:
            info = match.group(2).split()
            if "runnable" in info:
                language = match.group(1)
                body = []
                start = number
        else:
            blocks.append(
                DocBlock(path=markdown_path, line=start, language=language,
                         code="\n".join(body))
            )
            language = None
    return blocks


def run_block(block: DocBlock) -> None:
    """Execute one block, raising ``CalledProcessError`` on failure."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if block.language == "bash":
        for line in block.code.splitlines():
            command = line.strip()
            if not command or command.startswith("#"):
                continue
            subprocess.run(
                command, shell=True, check=True, cwd=ROOT, env=env,
                stdout=subprocess.DEVNULL,
            )
    elif block.language == "python":
        subprocess.run(
            [sys.executable, "-c", block.code], check=True, cwd=ROOT, env=env,
            stdout=subprocess.DEVNULL,
        )
    else:
        raise ValueError(
            f"{block.path.name}:{block.line}: no runner for language "
            f"{block.language!r} (mark only bash/python blocks runnable)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="markdown files")
    parser.add_argument(
        "--run", action="store_true",
        help="execute the blocks instead of just listing them",
    )
    args = parser.parse_args(argv)
    failures = 0
    for path in args.files:
        for block in extract_runnable_blocks(path):
            label = f"{path}:{block.line} [{block.language}]"
            if not args.run:
                print(label)
                continue
            try:
                run_block(block)
            except (subprocess.CalledProcessError, ValueError) as exc:
                failures += 1
                print(f"FAIL {label}: {exc}", file=sys.stderr)
            else:
                print(f"ok   {label}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Unit and property tests for repro.bits."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import bits


class TestMasks:
    def test_mask_widths(self):
        assert bits.mask(0) == 0
        assert bits.mask(1) == 1
        assert bits.mask(16) == 0xFFFF
        assert bits.mask(32) == 0xFFFFFFFF

    def test_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_truncate(self):
        assert bits.truncate(0x12345, 16) == 0x2345
        assert bits.truncate(-1, 8) == 0xFF


class TestFields:
    def test_bit(self):
        assert bits.bit(0b1010, 1) == 1
        assert bits.bit(0b1010, 0) == 0

    def test_bits_field(self):
        assert bits.bits(0b110100, 5, 3) == 0b110
        assert bits.bits(0xD0FE, 15, 12) == 0xD

    def test_bits_bad_range(self):
        with pytest.raises(ValueError):
            bits.bits(0, 2, 5)

    def test_set_bits(self):
        assert bits.set_bits(0x0000, 15, 12, 0xD) == 0xD000
        assert bits.set_bits(0xFFFF, 7, 0, 0x12) == 0xFF12

    def test_set_bits_overflow(self):
        with pytest.raises(ValueError):
            bits.set_bits(0, 3, 0, 0x1F)

    @given(st.integers(0, 0xFFFF), st.integers(0, 15), st.integers(0, 15))
    def test_bits_set_bits_roundtrip(self, value, a, b):
        high, low = max(a, b), min(a, b)
        field = bits.bits(value, high, low)
        assert bits.set_bits(value, high, low, field) == value


class TestSignConversion:
    def test_sign_extend_negative(self):
        assert bits.sign_extend(0xFF, 8) == -1
        assert bits.sign_extend(0b100, 3) == -4

    def test_sign_extend_positive(self):
        assert bits.sign_extend(0x7F, 8) == 127

    @given(st.integers(-(1 << 10), (1 << 10) - 1))
    def test_sign_roundtrip(self, value):
        assert bits.sign_extend(bits.to_unsigned(value, 11), 11) == value


class TestHamming:
    def test_weight(self):
        assert bits.hamming_weight(0) == 0
        assert bits.hamming_weight(0xD000) == 3  # beq #0 has low Hamming weight

    def test_distance(self):
        assert bits.hamming_distance(0b1010, 0b0101) == 4
        assert bits.hamming_distance(7, 7) == 0

    @given(st.integers(0, 2**64 - 1))
    def test_popcount_matches_reference(self, value):
        # pins the int.bit_count() fast path against an independent count
        assert bits.popcount(value) == bin(value).count("1")
        assert bits.hamming_weight(value) == bits.popcount(value)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_distance_symmetry(self, a, b):
        assert bits.hamming_distance(a, b) == bits.hamming_distance(b, a)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_triangle_inequality(self, a, b, c):
        assert bits.hamming_distance(a, c) <= (
            bits.hamming_distance(a, b) + bits.hamming_distance(b, c)
        )


class TestRotate:
    def test_rotate_right(self):
        assert bits.rotate_right(0x1, 1, 32) == 0x80000000
        assert bits.rotate_right(0x80000001, 1, 32) == 0xC0000000

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 64))
    def test_rotate_full_cycle(self, value, amount):
        rotated = bits.rotate_right(value, amount, 32)
        back = bits.rotate_right(rotated, (32 - amount) % 32, 32)
        assert back == value & 0xFFFFFFFF


class TestBitPositions:
    @given(st.integers(0, 2**24 - 1))
    def test_positions_roundtrip(self, value):
        assert bits.from_bit_positions(bits.bit_positions(value)) == value

    def test_positions_order(self):
        assert bits.bit_positions(0b1011) == [0, 1, 3]


class TestMaskEnumeration:
    @pytest.mark.parametrize("width,k", [(16, 0), (16, 1), (16, 2), (16, 15), (16, 16), (8, 3)])
    def test_count_is_n_choose_k(self, width, k):
        masks = list(bits.iter_masks(width, k))
        assert len(masks) == math.comb(width, k)
        assert len(set(masks)) == len(masks)
        assert all(m.bit_count() == k for m in masks)

    def test_out_of_range_k_empty(self):
        assert list(bits.iter_masks(4, 5)) == []
        assert list(bits.iter_masks(4, -1)) == []

    @pytest.mark.parametrize("width,k", [(16, 3), (8, 5), (6, 0), (5, 5), (16, 1)])
    def test_gosper_order_matches_combinations_reference(self, width, k):
        # the documented contract: ascending numeric order, identical to
        # the sorted bit-position-combination enumeration it replaced
        from itertools import combinations

        reference = sorted(
            sum(1 << position for position in combo)
            for combo in combinations(range(width), k)
        )
        assert list(bits.iter_masks(width, k)) == reference

    def test_yield_order_is_ascending(self):
        masks = list(bits.iter_masks(16, 4))
        assert masks == sorted(masks)
        assert masks[0] == 0b1111  # k bits at the bottom first
        assert masks[-1] == 0b1111 << 12  # k bits at the top last

    def test_iter_all_masks_total(self):
        all_masks = list(bits.iter_all_masks(8))
        assert len(all_masks) == 2**8
        assert len({m for _, m in all_masks}) == 2**8


class TestFlipModels:
    def test_and_clears(self):
        assert bits.apply_and_flip(0b1111, 0b0101, 4) == 0b1010

    def test_or_sets(self):
        assert bits.apply_or_flip(0b0000, 0b0101, 4) == 0b0101

    def test_xor_toggles(self):
        assert bits.apply_xor_flip(0b1100, 0b0101, 4) == 0b1001

    def test_apply_flip_by_name(self):
        assert bits.apply_flip(0xD0FE, 0xFFFF, 16, "and") == 0
        assert bits.apply_flip(0x0000, 0xFFFF, 16, "or") == 0xFFFF

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            bits.apply_flip(0, 0, 16, "nand")

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_and_only_clears_bits(self, word, mask):
        result = bits.apply_and_flip(word, mask, 16)
        assert result & word == result  # never sets a bit
        assert result & mask == 0

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_or_only_sets_bits(self, word, mask):
        result = bits.apply_or_flip(word, mask, 16)
        assert result | word == result
        assert result & mask == mask

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_xor_is_involution(self, word, mask):
        once = bits.apply_xor_flip(word, mask, 16)
        assert bits.apply_xor_flip(once, mask, 16) == word


class TestHalfwordPacking:
    def test_roundtrip(self):
        words = [0xD0FE, 0x0001, 0xFFFF]
        assert bits.bytes_to_halfwords(bits.halfwords_to_bytes(words)) == words

    def test_little_endian(self):
        assert bits.halfwords_to_bytes([0xD0FE]) == b"\xfe\xd0"

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            bits.bytes_to_halfwords(b"\x01")

    def test_out_of_range_halfword_rejected(self):
        with pytest.raises(ValueError):
            bits.halfwords_to_bytes([0x10000])

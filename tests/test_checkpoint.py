"""Checkpoint/resume fault-tolerance tests (``repro.exec.checkpoint``).

The acceptance contract: a campaign interrupted at an arbitrary work unit
and resumed produces tallies byte-identical to an uninterrupted run, and a
spec whose worker keeps raising lands in ``failed_units`` without aborting
the remaining units.
"""

import json

import pytest

from repro.exec import (
    CampaignCheckpoint,
    CheckpointMismatch,
    ProgressReporter,
    campaign_id,
    open_campaign_checkpoint,
)
from repro.glitchsim import run_branch_campaign
from repro.hw.scan import run_defense_scan, run_single_glitch_scan
from repro.hw.search import ParameterSearch


def _interrupt_after(units):
    """A reporter whose callback raises KeyboardInterrupt mid-campaign."""

    def callback(snapshot):
        if snapshot.units_done == units and not snapshot.finished:
            raise KeyboardInterrupt

    return ProgressReporter(callback=callback)


class TestCampaignCheckpointStore:
    def test_record_and_resume_roundtrip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignCheckpoint(path, meta={"model": "and"}) as checkpoint:
            checkpoint.record("beq", {"k": 1})
            checkpoint.record("bne", {"k": 2})
        resumed = CampaignCheckpoint(path, meta={"model": "and"}, resume=True)
        assert len(resumed) == 2
        assert "beq" in resumed
        assert resumed.get("bne") == {"k": 2}
        resumed.close()

    def test_meta_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignCheckpoint(path, meta={"model": "and"}).close()
        with pytest.raises(CheckpointMismatch, match="different campaign"):
            CampaignCheckpoint(path, meta={"model": "or"}, resume=True)

    def test_fresh_open_truncates_stale_file(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignCheckpoint(path, meta={}) as checkpoint:
            checkpoint.record("old", 1)
        fresh = CampaignCheckpoint(path, meta={})  # resume=False → start over
        fresh.close()
        resumed = CampaignCheckpoint(path, meta={}, resume=True)
        assert len(resumed) == 0
        resumed.close()

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignCheckpoint(path, meta={}) as checkpoint:
            checkpoint.record("done", 1)
        with path.open("a") as handle:
            handle.write('{"key": "torn", "resu')  # crash mid-write
        resumed = CampaignCheckpoint(path, meta={}, resume=True)
        assert resumed.results == {"done": 1}
        resumed.close()

    def test_resume_without_file_starts_fresh(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "new.jsonl", meta={}, resume=True)
        assert len(checkpoint) == 0
        checkpoint.close()

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "c.jsonl"
        checkpoint = CampaignCheckpoint(path, meta={}, flush_every=100)
        checkpoint.record("a", 1)
        checkpoint.flush()
        assert '"a"' in path.read_text()
        checkpoint.close()

    def test_campaign_id_is_parameter_sensitive(self):
        base = campaign_id("branch-and", {"k": [1, 2]})
        assert base.startswith("branch-and-")
        assert base == campaign_id("branch-and", {"k": [1, 2]})
        assert base != campaign_id("branch-and", {"k": [1, 3]})

    def test_open_campaign_checkpoint_places_file(self, tmp_path):
        checkpoint = open_campaign_checkpoint(tmp_path, "scan-single-a", {"s": 1})
        assert checkpoint.path.parent == tmp_path
        assert checkpoint.path.name.startswith("scan-single-a-")
        checkpoint.close()


CONDITIONS = ["eq", "ne", "lt", "ge"]
KS = (1, 2)


class TestCampaignResume:
    def test_interrupted_campaign_resumes_to_identical_tallies(self, tmp_path):
        baseline = run_branch_campaign("and", k_values=KS, conditions=CONDITIONS)
        with pytest.raises(KeyboardInterrupt):
            run_branch_campaign(
                "and", k_values=KS, conditions=CONDITIONS,
                checkpoint_dir=tmp_path, progress=_interrupt_after(2),
            )
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        # meta header + the two completed sweeps survived the interrupt
        assert sum(1 for _ in files[0].open()) == 3
        resumed = run_branch_campaign(
            "and", k_values=KS, conditions=CONDITIONS,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert resumed == baseline
        assert repr(resumed) == repr(baseline)

    def test_resumed_campaign_runs_only_missing_units(self, tmp_path, monkeypatch):
        with pytest.raises(KeyboardInterrupt):
            run_branch_campaign(
                "and", k_values=KS, conditions=CONDITIONS,
                checkpoint_dir=tmp_path, progress=_interrupt_after(2),
            )
        import repro.glitchsim.campaign as campaign_mod

        executed = []
        real = campaign_mod.sweep_instruction

        def spy(snippet, *args, **kwargs):
            executed.append(snippet.mnemonic)
            return real(snippet, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "sweep_instruction", spy)
        run_branch_campaign(
            "and", k_values=KS, conditions=CONDITIONS,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert len(executed) == 2  # the two units the interrupt dropped

    def test_poisoned_sweep_quarantined_without_aborting(self, monkeypatch):
        import repro.glitchsim.campaign as campaign_mod

        real = campaign_mod.sweep_instruction
        calls = {"bne": 0}

        def poisoned(snippet, *args, **kwargs):
            if snippet.mnemonic == "bne":
                calls["bne"] += 1
                raise RuntimeError("emulator crashed")
            return real(snippet, *args, **kwargs)

        monkeypatch.setattr(campaign_mod, "sweep_instruction", poisoned)
        result = run_branch_campaign(
            "and", k_values=(1,), conditions=CONDITIONS, retries=2,
        )
        assert calls["bne"] == 3  # 1 initial + 2 retries
        assert [f.spec.mnemonic for f in result.failed_units] == ["bne"]
        assert result.failed_units[0].attempts == 3
        assert sorted(s.mnemonic for s in result.sweeps) == ["beq", "bge", "blt"]

    def test_parallel_resume_matches_serial_baseline(self, tmp_path):
        baseline = run_branch_campaign("and", k_values=KS, conditions=CONDITIONS)
        with pytest.raises(KeyboardInterrupt):
            run_branch_campaign(
                "and", k_values=KS, conditions=CONDITIONS,
                checkpoint_dir=tmp_path, progress=_interrupt_after(1),
            )
        resumed = run_branch_campaign(
            "and", k_values=KS, conditions=CONDITIONS,
            checkpoint_dir=tmp_path, resume=True, workers=2,
        )
        assert resumed == baseline


class TestScanResume:
    def test_single_glitch_scan_resumes_to_identical_rows(self, tmp_path):
        kwargs = dict(cycles=range(3), stride=24)
        baseline = run_single_glitch_scan("a", **kwargs)
        with pytest.raises(KeyboardInterrupt):
            run_single_glitch_scan(
                "a", checkpoint_dir=tmp_path, progress=_interrupt_after(1), **kwargs
            )
        resumed = run_single_glitch_scan(
            "a", checkpoint_dir=tmp_path, resume=True, **kwargs
        )
        assert resumed == baseline
        assert [row.instruction for row in resumed.rows] == [
            row.instruction for row in baseline.rows
        ]

    def test_defense_scan_resumes_to_identical_tally(self, tmp_path):
        from repro.firmware.guards import build_defended_guard
        from repro.resistor import ResistorConfig

        image = build_defended_guard("while_not_a", ResistorConfig.none()).image
        kwargs = dict(scenario="while_not_a", defense="none", stride=24)
        baseline = run_defense_scan(image, "long", **kwargs)
        with pytest.raises(KeyboardInterrupt):
            run_defense_scan(
                image, "long", checkpoint_dir=tmp_path,
                progress=_interrupt_after(4), **kwargs
            )
        resumed = run_defense_scan(
            image, "long", checkpoint_dir=tmp_path, resume=True, **kwargs
        )
        assert resumed == baseline


class TestSearchResume:
    def test_resumed_search_replays_without_touching_the_glitcher(self, tmp_path):
        baseline = ParameterSearch("a", checkpoint_dir=tmp_path)
        first = baseline.run(max_attempts=400)
        baseline.close()

        resumed = ParameterSearch("a", checkpoint_dir=tmp_path, resume=True)

        def forbidden(params):  # every attempt must come from the log
            raise AssertionError("resume re-ran a recorded attempt")

        resumed.glitcher.run_attempt = forbidden
        second = resumed.run(max_attempts=400)
        resumed.close()
        assert second == first

    def test_search_checkpoint_meta_guards_parameters(self, tmp_path):
        search = ParameterSearch("a", checkpoint_dir=tmp_path)
        search.run(max_attempts=50)
        search.close()
        # same dir, different stride → a different checkpoint file, not a clash
        other = ParameterSearch("a", coarse_stride=8, checkpoint_dir=tmp_path)
        other.run(max_attempts=50)
        other.close()
        assert len(list(tmp_path.glob("search-a-*.jsonl"))) == 2


class TestCliResumeFlags:
    def test_experiment_checkpoint_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        checkpoint_dir = str(tmp_path)
        assert main(["experiment", "table1", "--stride", "12",
                     "--checkpoint-dir", checkpoint_dir]) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("scan-single-*.jsonl"))
        assert main(["experiment", "table1", "--stride", "12",
                     "--checkpoint-dir", checkpoint_dir, "--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_attack_accepts_robustness_flags(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "guard.c"
        source.write_text(
            "void win(void) { for (;;) { } }\n"
            "int main(void) { if (0) { win(); } for (;;) { } return 0; }\n"
        )
        assert main(["attack", str(source), "--stride", "10",
                     "--checkpoint-dir", str(tmp_path / "ck"),
                     "--retries", "1", "--unit-timeout", "30"]) == 0
        assert "attempts" in capsys.readouterr().out

"""CLI tests (``python -m repro ...``)."""

import pytest

from repro.cli import main


@pytest.fixture()
def guard_c(tmp_path):
    path = tmp_path / "guard.c"
    path.write_text(
        """
        enum Result { OK, BAD };
        void win(void) { for (;;) { } }
        int check(int x) { if (x == 7) { return OK; } return BAD; }
        int main(void) {
            if (check(3) == OK) { win(); }
            for (;;) { }
            return 0;
        }
        """
    )
    return str(path)


class TestAssembleDisassemble:
    def test_assemble(self, tmp_path, capsys):
        source = tmp_path / "t.s"
        source.write_text("start:\n    movs r0, #1\n    bkpt #0\n")
        assert main(["assemble", str(source)]) == 0
        out = capsys.readouterr().out
        assert "movs r0, #1" in out
        assert "start = 0x08000000" in out

    def test_assemble_custom_base(self, tmp_path, capsys):
        source = tmp_path / "t.s"
        source.write_text("nop\n")
        assert main(["assemble", str(source), "--base", "0x1000"]) == 0
        assert "0x00001000" in capsys.readouterr().out

    def test_disassemble(self, capsys):
        assert main(["disassemble", "0120 00be".replace(" ", "")]) == 0
        out = capsys.readouterr().out
        assert "movs r1, #32" in out or "movs" in out
        assert "bkpt" in out

    def test_disassemble_invalid_encoding(self, capsys):
        assert main(["disassemble", "00de"]) == 0
        assert "invalid" in capsys.readouterr().out


class TestHarden:
    def test_harden_all(self, guard_c, capsys):
        assert main(["harden", guard_c]) == 0
        out = capsys.readouterr().out
        assert "instrumentation report" in out
        assert "sections:" in out

    def test_harden_single_defense(self, guard_c, capsys):
        assert main(["harden", guard_c, "--defense", "branches"]) == 0
        assert "branches instrumented" in capsys.readouterr().out

    def test_harden_writes_assembly(self, guard_c, tmp_path, capsys):
        out_path = tmp_path / "out.s"
        assert main(["harden", guard_c, "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "_start:" in text and "main" in text


class TestAttack:
    def test_attack_undefended(self, guard_c, capsys):
        assert main(["attack", guard_c, "--defense", "none", "--stride", "8"]) == 0
        out = capsys.readouterr().out
        assert "attempts" in out and "successes" in out

    def test_attack_defended(self, guard_c, capsys):
        assert main([
            "attack", guard_c, "--defense", "all-no-delay", "--stride", "10",
        ]) == 0
        assert "detections" in capsys.readouterr().out

    def test_attack_requires_win(self, tmp_path, capsys):
        path = tmp_path / "nowin.c"
        path.write_text("int main(void) { return 0; }")
        assert main(["attack", str(path)]) == 1
        assert "win()" in capsys.readouterr().err


class TestExperiment:
    def test_table7(self, capsys):
        assert main(["experiment", "table7"]) == 0
        assert "GlitchResistor" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "size overhead" in capsys.readouterr().out

    def test_table1_strided(self, capsys):
        assert main(["experiment", "table1", "--stride", "12"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])

"""Tests for GF(256), Reed-Solomon coding, and constant diversification."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import (
    GF256,
    ReedSolomon,
    generate_diversified_constants,
    min_pairwise_distance,
    pairwise_distances,
    rs_encode_value,
)
from repro.codes.reed_solomon import ReedSolomonError

NONZERO = st.integers(1, 255)
BYTE = st.integers(0, 255)


class TestGF256FieldAxioms:
    @given(BYTE, BYTE)
    def test_addition_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(BYTE)
    def test_addition_self_inverse(self, a):
        assert GF256.add(a, a) == 0

    @given(BYTE, BYTE)
    def test_multiplication_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(BYTE, BYTE, BYTE)
    def test_multiplication_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(BYTE, BYTE, BYTE)
    def test_distributivity(self, a, b, c):
        assert GF256.mul(a, GF256.add(b, c)) == GF256.add(GF256.mul(a, b), GF256.mul(a, c))

    @given(NONZERO)
    def test_multiplicative_inverse(self, a):
        assert GF256.mul(a, GF256.inverse(a)) == 1

    @given(BYTE, NONZERO)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inverse(b))

    @given(NONZERO, st.integers(0, 600))
    def test_pow_cycle(self, a, exponent):
        assert GF256.pow(a, exponent) == GF256.pow(a, exponent % 255 if exponent else 0) or True
        # α^255 == 1 for any non-zero element
        assert GF256.pow(a, 255) == 1

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            GF256.inverse(0)

    def test_one_is_identity(self):
        for a in range(256):
            assert GF256.mul(a, 1) == a


class TestGF256Polynomials:
    def test_poly_eval_constant(self):
        assert GF256.poly_eval([7], 99) == 7

    def test_poly_eval_linear(self):
        # p(x) = 2x + 3 at x=4 → 2*4 ^ 3 = 8 ^ 3 = 11
        assert GF256.poly_eval([2, 3], 4) == 11

    @given(st.lists(BYTE, min_size=1, max_size=6), st.lists(BYTE, min_size=1, max_size=6), BYTE)
    def test_poly_mul_matches_eval(self, p, q, x):
        product = GF256.poly_mul(p, q)
        assert GF256.poly_eval(product, x) == GF256.mul(GF256.poly_eval(p, x), GF256.poly_eval(q, x))

    @given(st.lists(BYTE, min_size=3, max_size=8))
    def test_divmod_reconstructs(self, dividend):
        divisor = [1, 5, 7]
        if len(dividend) < len(divisor):
            return
        quotient, remainder = GF256.poly_divmod(dividend, divisor)
        reconstructed = GF256.poly_add(GF256.poly_mul(quotient, divisor), remainder)
        # strip leading zeros for comparison
        def strip(poly):
            while len(poly) > 1 and poly[0] == 0:
                poly = poly[1:]
            return poly
        assert strip(reconstructed) == strip(list(dividend))


class TestReedSolomon:
    def test_ecc_length(self):
        rs = ReedSolomon(nsym=4)
        assert len(rs.ecc(b"\x00\x01")) == 4

    def test_clean_codeword_has_zero_syndromes(self):
        rs = ReedSolomon(nsym=4)
        codeword = rs.encode(b"hello")
        assert max(rs.syndromes(codeword)) == 0

    def test_decode_clean(self):
        rs = ReedSolomon(nsym=4)
        assert rs.decode(rs.encode(b"hi")) == b"hi"

    @given(st.binary(min_size=1, max_size=8), st.data())
    @settings(max_examples=150, deadline=None)
    def test_corrects_up_to_t_errors(self, message, data):
        """Property: ≤ nsym/2 symbol errors always decode to the message."""
        rs = ReedSolomon(nsym=6)
        codeword = bytearray(rs.encode(message))
        n_errors = data.draw(st.integers(0, 3))
        positions = data.draw(
            st.lists(
                st.integers(0, len(codeword) - 1),
                min_size=n_errors, max_size=n_errors, unique=True,
            )
        )
        for position in positions:
            flip = data.draw(st.integers(1, 255))
            codeword[position] ^= flip
        assert rs.decode(bytes(codeword)) == message

    def test_too_many_errors_raises(self):
        rs = ReedSolomon(nsym=2)
        codeword = bytearray(rs.encode(b"abcd"))
        codeword[0] ^= 1
        codeword[1] ^= 2
        # 2 errors > nsym/2 = 1 → must raise (or mis-decode is *not* allowed)
        with pytest.raises(ReedSolomonError):
            rs.decode(bytes(codeword))

    def test_distinct_messages_distinct_ecc(self):
        rs = ReedSolomon(nsym=4)
        eccs = {rs.ecc(i.to_bytes(2, "big")) for i in range(256)}
        assert len(eccs) == 256

    def test_generator_poly_roots(self):
        rs = ReedSolomon(nsym=5)
        generator = rs.generator_poly()
        for i in range(5):
            assert GF256.poly_eval(generator, GF256.pow(2, i)) == 0


class TestRsEncodeValue:
    def test_paper_defaults_are_32bit(self):
        value = rs_encode_value(1)
        assert 0 <= value < (1 << 32)

    def test_deterministic(self):
        assert rs_encode_value(7) == rs_encode_value(7)

    def test_out_of_range_message(self):
        with pytest.raises(ValueError):
            rs_encode_value(1 << 16)
        with pytest.raises(ValueError):
            rs_encode_value(-1)


class TestDiversifiedConstants:
    def test_distance_guarantee_small_sets(self):
        """The paper's claim: minimum pairwise Hamming distance of 8."""
        for count in (2, 4, 8, 16, 32):
            values = generate_diversified_constants(count)
            assert len(values) == count
            assert min_pairwise_distance(values) >= 8, count

    def test_values_unique_and_nonzero(self):
        values = generate_diversified_constants(64)
        assert len(set(values)) == 64
        assert 0 not in values

    def test_empty_and_single(self):
        assert generate_diversified_constants(0) == []
        assert len(generate_diversified_constants(1)) == 1
        assert min_pairwise_distance([5]) == 0

    def test_deterministic_generation(self):
        assert generate_diversified_constants(10) == generate_diversified_constants(10)

    def test_pairwise_distances_count(self):
        values = generate_diversified_constants(5)
        assert len(pairwise_distances(values)) == 10  # C(5, 2)

    def test_stronger_distance_requirement(self):
        values = generate_diversified_constants(8, min_distance=12)
        assert min_pairwise_distance(values) >= 12

    def test_random_values_usually_violate_distance(self):
        """Sanity: plain sequential ENUM values (0,1,2,...) have distance 1."""
        assert min_pairwise_distance(list(range(8))) == 1

"""Differential execution tests: AST interp ≡ IR interp ≡ compiled-on-board.

The three-way agreement across hand-written programs plus a hypothesis-
generated arithmetic-expression sweep is the compiler's core correctness
argument.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.compiler.interp import Interpreter
from repro.compiler.ir_interp import IRInterpreter
from repro.compiler.lowering import lower
from repro.hw.mcu import Board

WORD = 0xFFFFFFFF


def run_all_three(source: str, max_cycles: int = 2_000_000):
    """Return (ast_result, ir_result, board_result) for ``main``."""
    interp = Interpreter.from_source(source)
    ast_result = interp.run()
    ir_result = IRInterpreter(lower(interp.program)).run()
    compiled = compile_source(source)
    board = Board(compiled.image)
    reason = board.run(max_cycles)
    assert reason == "halted", f"board did not halt: {reason}"
    return ast_result, ir_result, board.cpu.regs[0]


def assert_agree(source: str):
    ast_result, ir_result, board_result = run_all_three(source)
    assert ast_result == ir_result == board_result, (ast_result, ir_result, board_result)
    return ast_result


class TestBasics:
    def test_return_constant(self):
        assert assert_agree("int main(void) { return 42; }") == 42

    def test_arithmetic(self):
        assert assert_agree("int main(void) { return (3 + 4) * 5 - 6; }") == 29

    def test_negative_wraps_to_u32(self):
        assert assert_agree("int main(void) { return 0 - 1; }") == WORD

    def test_locals_and_assignment(self):
        source = "int main(void) { int a = 3; int b = a; b += a * 2; return b; }"
        assert assert_agree(source) == 9

    def test_globals(self):
        source = "int g = 10; int main(void) { g = g + 5; return g; }"
        assert assert_agree(source) == 15

    def test_char_global_truncates(self):
        source = "char c = 200; int main(void) { return c & 0xFFFF; }"
        # signed char: 200 → -56 → 0xFFC8 after masking
        assert assert_agree(source) == 0xFFC8

    def test_unsigned_char_global(self):
        source = "unsigned char c = 200; int main(void) { return c; }"
        assert assert_agree(source) == 200

    def test_short_global(self):
        source = "short s = 0x8000; int main(void) { return s & 0xFFFFF; }"
        assert assert_agree(source) == 0xF8000


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        int classify(int x) {
            if (x < 0) { return 1; }
            else if (x == 0) { return 2; }
            else { return 3; }
        }
        int main(void) { return classify(0-5) * 100 + classify(0) * 10 + classify(5); }
        """
        assert assert_agree(source) == 123

    def test_while_loop(self):
        source = "int main(void) { int i = 0; while (i < 7) { i = i + 1; } return i; }"
        assert assert_agree(source) == 7

    def test_for_with_break_continue(self):
        source = """
        int main(void) {
            int total = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i == 10) { break; }
                if (i % 2 == 1) { continue; }
                total += i;
            }
            return total;
        }
        """
        assert assert_agree(source) == 0 + 2 + 4 + 6 + 8

    def test_nested_loops(self):
        source = """
        int main(void) {
            int n = 0;
            for (int i = 0; i < 5; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) { n = n + 1; }
            }
            return n;
        }
        """
        assert assert_agree(source) == 10

    def test_short_circuit_side_effects(self):
        source = """
        int calls = 0;
        int bump(void) { calls = calls + 1; return 1; }
        int main(void) {
            int a = 0 && bump();
            int b = 1 || bump();
            return calls * 10 + a + b;
        }
        """
        assert assert_agree(source) == 1  # neither bump executed

    def test_ternary(self):
        source = "int main(void) { int x = 5; return x > 3 ? 10 : 20; }"
        assert assert_agree(source) == 10


class TestFunctions:
    def test_recursion(self):
        source = """
        int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
        int main(void) { return fact(6); }
        """
        assert assert_agree(source) == 720

    def test_four_arguments(self):
        source = """
        int combine(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
        int main(void) { return combine(1, 2, 3, 4); }
        """
        assert assert_agree(source) == 1234

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main(void) { return is_even(10) * 10 + is_odd(7); }
        """
        assert assert_agree(source) == 11

    def test_void_function_side_effect(self):
        source = """
        int g;
        void set(void) { g = 77; }
        int main(void) { set(); return g; }
        """
        assert assert_agree(source) == 77


class TestDivision:
    @pytest.mark.parametrize(
        "a,b",
        [(100, 7), (7, 100), (0, 5), (0xFFFFFFFF, 3), (0xF0000000, 7), (1 << 31, 2)],
    )
    def test_unsigned_div_mod(self, a, b):
        source = f"""
        unsigned int ua = {a}u;
        unsigned int ub = {b}u;
        int main(void) {{ return (int)((ua / ub) ^ (ua % ub)); }}
        """
        expected = ((a // b) ^ (a % b)) & WORD
        assert assert_agree(source) == expected

    @pytest.mark.parametrize("a,b", [(100, 7), (-100, 7), (100, -7), (-100, -7), (-7, 100)])
    def test_signed_div_truncates_toward_zero(self, a, b):
        source = f"""
        int sa = {a};
        int sb = {b};
        int main(void) {{ return (sa / sb) * 1000 + (sa % sb); }}
        """
        quotient = abs(a) // abs(b) * (-1 if (a < 0) != (b < 0) else 1)
        remainder = a - quotient * b
        expected = (quotient * 1000 + remainder) & WORD
        assert assert_agree(source) == expected


class TestEnumsAndVolatile:
    def test_enum_constants(self):
        source = """
        enum E { A, B, C };
        int main(void) { return A * 100 + B * 10 + C; }
        """
        assert assert_agree(source) == 12

    def test_enum_with_values(self):
        source = """
        enum E { X = 5, Y, Z = 20 };
        int main(void) { return X + Y + Z; }
        """
        assert assert_agree(source) == 31

    def test_volatile_global_counts_loads(self):
        """Each source-level volatile access must be one IR load."""
        from repro.compiler import ir
        from repro.compiler.parser import parse
        from repro.compiler.sema import analyze

        source = "volatile int v; int main(void) { return v + v; }"
        module = lower(analyze(parse(source)))
        loads = [
            instr
            for _, instr in module.functions["main"].instructions()
            if isinstance(instr, ir.LoadGlobal) and instr.volatile
        ]
        assert len(loads) == 2


class TestHypothesisDifferential:
    """Random arithmetic programs: all three executors must agree."""

    @given(
        a=st.integers(0, WORD), b=st.integers(0, WORD), c=st.integers(1, WORD),
        op1=st.sampled_from(["+", "-", "*", "&", "|", "^"]),
        op2=st.sampled_from(["+", "-", "*", ">>", "<<"]),
        shift=st.integers(0, 31),
    )
    @settings(max_examples=30, deadline=None)
    def test_unsigned_expression_agreement(self, a, b, c, op1, op2, shift):
        source = f"""
        unsigned int ga = {a}u;
        unsigned int gb = {b}u;
        unsigned int gc = {c}u;
        int main(void) {{
            unsigned int r = (ga {op1} gb) {op2} {shift if op2 in ('>>', '<<') else 'gc'};
            if (r > ga) {{ r = r ^ gc; }}
            return (int)r;
        }}
        """
        assert_agree(source)

    @given(
        x=st.integers(-100, 100), y=st.integers(-100, 100),
        cmp=st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    )
    @settings(max_examples=25, deadline=None)
    def test_signed_comparison_agreement(self, x, y, cmp):
        source = f"""
        int gx = {x};
        int gy = {y};
        int main(void) {{
            if (gx {cmp} gy) {{ return 1; }}
            return 0;
        }}
        """
        expected = int(eval(f"{x} {cmp} {y}"))
        assert assert_agree(source) == expected

    @given(n=st.integers(0, 12))
    @settings(max_examples=10, deadline=None)
    def test_loop_iteration_counts(self, n):
        source = f"""
        int main(void) {{
            int count = 0;
            for (int i = 0; i < {n}; i = i + 1) {{ count = count + 1; }}
            return count;
        }}
        """
        assert assert_agree(source) == n

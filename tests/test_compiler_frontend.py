"""Lexer, parser, and sema tests."""

import pytest

from repro.compiler import ast_nodes as ast
from repro.compiler.lexer import Token, tokenize
from repro.compiler.parser import parse
from repro.compiler.sema import analyze
from repro.errors import CompileError


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize("int foo;")
        assert [(t.kind, t.text) for t in tokens[:3]] == [
            ("keyword", "int"), ("ident", "foo"), ("op", ";"),
        ]

    def test_numbers(self):
        tokens = tokenize("42 0x2A 0b101010 10u 10UL")
        assert [t.value for t in tokens[:-1]] == [42, 42, 42, 10, 10]

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65
        assert tokenize(r"'\n'")[0].value == 10

    def test_operators_longest_match(self):
        tokens = tokenize("a <<= b >> c != d")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<=", ">>", "!="]

    def test_comments(self):
        tokens = tokenize("a // line\n/* block\nblock */ b")
        assert [t.text for t in tokens if t.kind == "ident"] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* oops")

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("int $x;")

    def test_line_tracking(self):
        tokens = tokenize("a\nbb\n ccc")
        idents = [t for t in tokens if t.kind == "ident"]
        assert [t.line for t in idents] == [1, 2, 3]


class TestParser:
    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        function = unit.function("add")
        assert len(function.params) == 2
        assert function.return_type.name == "int"

    def test_void_param_list(self):
        unit = parse("void f(void) { }")
        assert unit.function("f").params == []

    def test_prototype(self):
        unit = parse("int f(int x);")
        items = [i for i in unit.items if isinstance(i, ast.FunctionDef)]
        assert items[0].body is None

    def test_global_with_initializer(self):
        unit = parse("volatile unsigned int ticks = 5;")
        g = unit.globals()[0]
        assert g.ctype.volatile and not g.ctype.signed
        assert isinstance(g.init, ast.NumberLit)

    def test_enum_definition(self):
        unit = parse("enum E { A, B = 5, C };")
        enum = unit.enums()[0]
        assert [e.name for e in enum.enumerators] == ["A", "B", "C"]
        assert not enum.fully_uninitialized

    def test_fully_uninitialized_enum(self):
        unit = parse("enum E { A, B, C };")
        assert unit.enums()[0].fully_uninitialized

    def test_precedence(self):
        unit = parse("int f(void) { return 1 + 2 * 3; }")
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_ternary_and_logical(self):
        unit = parse("int f(int a) { return a > 0 && a < 10 ? 1 : 2; }")
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value, ast.Conditional)

    def test_mmio_deref(self):
        unit = parse("void f(void) { *(volatile unsigned int *)0x48000014 = 1; }")
        stmt = unit.function("f").body.statements[0]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.lhs, ast.MMIODeref)

    def test_for_with_declaration(self):
        unit = parse("void f(void) { for (int i = 0; i < 4; i = i + 1) { } }")
        loop = unit.function("f").body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Declaration)

    def test_infinite_for(self):
        unit = parse("void f(void) { for (;;) { } }")
        loop = unit.function("f").body.statements[0]
        assert loop.cond is None and loop.step is None

    def test_compound_assignment(self):
        unit = parse("void f(void) { int x = 0; x += 3; }")
        stmt = unit.function("f").body.statements[1]
        assert stmt.expr.op == "+="

    def test_cast_is_tolerated(self):
        unit = parse("int f(int a) { return (unsigned int)a; }")
        assert unit.function("f") is not None

    @pytest.mark.parametrize(
        "bad",
        [
            "int f( { }",
            "int f(void) { return 1 }",
            "int f(void) { if }",
            "enum { , };",
            "int = 4;",
            "int f(void) { 1 = x; }",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(CompileError):
            parse(bad)


class TestSema:
    def test_enum_values_assigned(self):
        program = analyze(parse("enum E { A, B = 7, C };"))
        assert program.enum_values == {"A": 0, "B": 7, "C": 8}

    def test_global_initializer_folded(self):
        program = analyze(parse("enum E { A, B }; int x = B + 3;"))
        assert program.globals["x"].initial == 4

    def test_duplicate_global(self):
        with pytest.raises(CompileError):
            analyze(parse("int x; int x;"))

    def test_duplicate_enumerator(self):
        with pytest.raises(CompileError):
            analyze(parse("enum A { X }; enum B { X };"))

    def test_undefined_identifier(self):
        with pytest.raises(CompileError):
            analyze(parse("int f(void) { return nope; }"))

    def test_undefined_function(self):
        with pytest.raises(CompileError):
            analyze(parse("int f(void) { return g(); }"))

    def test_wrong_arity(self):
        with pytest.raises(CompileError):
            analyze(parse("int g(int a) { return a; } int f(void) { return g(); }"))

    def test_too_many_params(self):
        with pytest.raises(CompileError):
            analyze(parse("int f(int a, int b, int c, int d, int e) { return 0; }"))

    def test_void_function_returning_value(self):
        with pytest.raises(CompileError):
            analyze(parse("void f(void) { return 3; }"))

    def test_nonvoid_returning_nothing(self):
        with pytest.raises(CompileError):
            analyze(parse("int f(void) { return; }"))

    def test_assign_to_enumerator(self):
        with pytest.raises(CompileError):
            analyze(parse("enum E { A }; void f(void) { A = 2; }"))

    def test_assign_to_const(self):
        with pytest.raises(CompileError):
            analyze(parse("const int k = 1; void f(void) { k = 2; }"))

    def test_redefined_function(self):
        with pytest.raises(CompileError):
            analyze(parse("int f(void) { return 1; } int f(void) { return 2; }"))

    def test_prototype_then_definition_ok(self):
        program = analyze(parse("int f(void); int f(void) { return 1; }"))
        assert program.functions["f"].defined

    def test_builtin_calls_allowed(self):
        program = analyze(parse("void f(void) { __nop(); __halt(); }"))
        assert program is not None

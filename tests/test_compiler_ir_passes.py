"""IR data-structure, pass-manager, and optimization-pass tests."""

import pytest

from repro.compiler import ir
from repro.compiler.ir_interp import IRInterpreter
from repro.compiler.lowering import lower
from repro.compiler.parser import parse
from repro.compiler.passes import ConstantFoldPass, DeadCodeEliminationPass, PassManager
from repro.compiler.passes.pass_manager import IRPass
from repro.compiler.sema import analyze
from repro.errors import PassError


def module_for(source: str) -> ir.IRModule:
    return lower(analyze(parse(source)))


class TestIRStructure:
    def test_render_roundtrip_readable(self):
        module = module_for("int main(void) { int x = 1; return x + 2; }")
        text = module.render()
        assert "function main" in text
        assert "const" in text and "ret" in text

    def test_block_order_starts_at_entry(self):
        module = module_for(
            "int main(void) { if (1) { return 1; } else { return 2; } }"
        )
        blocks = module.functions["main"].block_order()
        assert blocks[0].label == "entry"

    def test_split_block(self):
        function = ir.IRFunction(name="f", param_count=0, returns_value=True)
        block = ir.Block(label="entry")
        t0, t1 = 0, 1
        block.instrs = [ir.Const(result=t0, value=1), ir.Const(result=t1, value=2)]
        block.terminator = ir.Ret(operand=t1)
        function.blocks["entry"] = block
        function.n_temps = 2
        tail = function.split_block("entry", 1)
        assert len(block.instrs) == 1
        assert len(tail.instrs) == 1
        assert isinstance(block.terminator, ir.Jump)
        assert isinstance(tail.terminator, ir.Ret)

    def test_split_block_bad_index(self):
        function = ir.IRFunction(name="f", param_count=0, returns_value=False)
        function.blocks["entry"] = ir.Block(label="entry", terminator=ir.Ret())
        with pytest.raises(PassError):
            function.split_block("entry", 5)

    def test_defining_instr(self):
        module = module_for("int main(void) { return 7; }")
        function = module.functions["main"]
        ret = function.blocks[function.block_order()[-1].label].terminator
        # find the ret operand's definition
        for block in function.blocks.values():
            if isinstance(block.terminator, ir.Ret) and block.terminator.operand is not None:
                definition = function.defining_instr(block.terminator.operand)
                assert isinstance(definition, ir.Const)
                assert definition.value == 7
                return
        raise AssertionError("no ret found")

    def test_loop_guard_metadata(self):
        module = module_for("int main(void) { int i = 0; while (i < 3) { i = i + 1; } return i; }")
        guards = [
            block.terminator
            for block in module.functions["main"].blocks.values()
            if isinstance(block.terminator, ir.CondBr) and block.terminator.is_loop_guard
        ]
        assert len(guards) == 1

    def test_replace_operands(self):
        binop = ir.BinOp(result=2, op="add", lhs=0, rhs=1)
        replaced = binop.replace_operands({0: 10, 1: 11})
        assert (replaced.lhs, replaced.rhs) == (10, 11)
        call = ir.Call(result=3, func="f", args=(0, 1))
        assert call.replace_operands({1: 9}).args == (0, 9)


class TestPassManager:
    def test_passes_run_in_order_and_log(self):
        order = []

        class A(IRPass):
            name = "a"

            def run(self, module):
                order.append("a")
                return "ran a"

        class B(IRPass):
            name = "b"

            def run(self, module):
                order.append("b")
                return "ran b"

        manager = PassManager([A(), B()])
        manager.run(module_for("int main(void) { return 0; }"))
        assert order == ["a", "b"]
        assert manager.report() == "a: ran a\nb: ran b"

    def test_base_pass_abstract(self):
        with pytest.raises(NotImplementedError):
            IRPass().run(None)


class TestConstantFolding:
    def test_folds_constant_arithmetic(self):
        module = module_for("int main(void) { return 2 + 3 * 4; }")
        ConstantFoldPass().run(module)
        function = module.functions["main"]
        binops = [i for _, i in function.instructions() if isinstance(i, ir.BinOp)]
        assert binops == []
        assert IRInterpreter(module).run() == 14

    def test_folds_comparisons(self):
        module = module_for("int main(void) { if (3 < 5) { return 1; } return 0; }")
        ConstantFoldPass().run(module)
        assert IRInterpreter(module).run() == 1

    def test_leaves_division_by_zero_to_runtime(self):
        module = module_for("int main(void) { return 1 / 0; }")
        ConstantFoldPass().run(module)
        function = module.functions["main"]
        divs = [i for _, i in function.instructions() if isinstance(i, ir.BinOp)]
        assert divs, "the trapping division must remain"

    def test_does_not_fold_through_volatile(self):
        module = module_for("volatile int v; int main(void) { return v + 1; }")
        ConstantFoldPass().run(module)
        loads = [
            i for _, i in module.functions["main"].instructions()
            if isinstance(i, ir.LoadGlobal)
        ]
        assert loads


class TestDeadCodeElimination:
    def test_removes_unused_pure_instructions(self):
        module = module_for("int main(void) { int unused = 5 * 3; return 1; }")
        before = sum(len(b.instrs) for b in module.functions["main"].blocks.values())
        ConstantFoldPass().run(module)
        DeadCodeEliminationPass().run(module)
        after = sum(len(b.instrs) for b in module.functions["main"].blocks.values())
        assert after < before
        assert IRInterpreter(module).run() == 1

    def test_keeps_stores_and_calls(self):
        module = module_for(
            """
            int g;
            void touch(void) { g = 1; }
            int main(void) { touch(); return g; }
            """
        )
        DeadCodeEliminationPass().run(module)
        assert IRInterpreter(module).run() == 1

    def test_keeps_volatile_loads(self):
        module = module_for("volatile int v; int main(void) { v; return 0; }")
        DeadCodeEliminationPass().run(module)
        loads = [
            i for _, i in module.functions["main"].instructions()
            if isinstance(i, ir.LoadGlobal) and i.volatile
        ]
        assert loads, "volatile load must not be eliminated"

    def test_removes_unreachable_blocks(self):
        module = module_for(
            "int main(void) { return 1; int dead = 2; return dead; }"
        )
        removed_note = DeadCodeEliminationPass().run(module)
        assert "blocks" in removed_note
        assert IRInterpreter(module).run() == 1


class TestIRInterpreterEdges:
    def test_unknown_function_call(self):
        module = module_for("int main(void) { return 0; }")
        interp = IRInterpreter(module)
        with pytest.raises(PassError):
            interp.call("missing")

    def test_step_limit(self):
        from repro.compiler.ir_interp import IRStepLimit

        module = module_for("int main(void) { while (1) { } return 0; }")
        interp = IRInterpreter(module, step_limit=100)
        with pytest.raises(IRStepLimit):
            interp.run()

    def test_halt_instruction(self):
        module = module_for("int main(void) { __halt(); return 9; }")
        assert IRInterpreter(module).run() is None

    def test_mmio_requires_device_map(self):
        module = module_for(
            "int main(void) { return *(volatile unsigned int *)0x48000000; }"
        )
        with pytest.raises(PassError):
            IRInterpreter(module).run()

    def test_mmio_with_device_map(self):
        module = module_for(
            "int main(void) { return *(volatile unsigned int *)0x48000000; }"
        )
        interp = IRInterpreter(module, mmio_read=lambda addr, width: 0xAB)
        assert interp.run() == 0xAB

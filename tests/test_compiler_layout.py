"""Layout / driver tests: crt0 behaviour, sections, global placement."""

import re

import pytest

from repro.compiler import compile_source
from repro.compiler.layout import (
    FAR_GLOBALS_BASE,
    NEAR_GLOBALS_BASE,
    SectionSizes,
)
from repro.errors import LayoutError
from repro.hw.mcu import Board


def boot(source: str, **kwargs):
    compiled = compile_source(source, **kwargs)
    board = Board(compiled.image)
    reason = board.run(2_000_000)
    assert reason == "halted", reason
    return compiled, board


def global_address(compiled, name: str) -> int:
    match = re.search(rf"\.equ g_{name}, (0x[0-9A-F]+)", compiled.assembly)
    assert match, f"no address for global {name}"
    return int(match.group(1), 16)


class TestCrt0:
    def test_data_image_copied_to_ram(self):
        source = """
        int a = 0x11111111;
        int b = 0x22222222;
        int main(void) { return 0; }
        """
        compiled, board = boot(source)
        assert board.cpu.memory.read_u32(global_address(compiled, "a")) == 0x11111111
        assert board.cpu.memory.read_u32(global_address(compiled, "b")) == 0x22222222

    def test_bss_zeroed_despite_sram_fill(self):
        """SRAM powers up as 0xA5 fill; crt0 must still zero .bss globals."""
        source = "int z; int main(void) { return z; }"
        compiled, board = boot(source)
        assert board.cpu.regs[0] == 0
        assert board.cpu.memory.read_u32(global_address(compiled, "z")) == 0

    def test_initialized_globals_contiguous(self):
        source = """
        int a = 1;
        int z1;
        int b = 2;
        int z2;
        int main(void) { return a + b + z1 + z2; }
        """
        compiled, board = boot(source)
        addr_a = global_address(compiled, "a")
        addr_b = global_address(compiled, "b")
        assert abs(addr_a - addr_b) == 4  # copy loop runs over one block
        assert board.cpu.regs[0] == 3

    def test_entry_function_override(self):
        source = """
        int alt(void) { return 55; }
        int main(void) { return 1; }
        """
        compiled, board = boot(source, entry_function="alt")
        assert board.cpu.regs[0] == 55

    def test_init_function_runs_before_entry(self):
        source = """
        int order;
        void setup(void) { order = 7; }
        int main(void) { return order; }
        """
        compiled, board = boot(source, init_function="setup")
        assert board.cpu.regs[0] == 7

    def test_missing_entry_rejected(self):
        with pytest.raises(LayoutError):
            compile_source("int helper(void) { return 1; }")

    def test_missing_init_rejected(self):
        with pytest.raises(LayoutError):
            compile_source("int main(void) { return 1; }", init_function="ghost")


class TestGlobalPlacement:
    def test_near_globals_start_at_base(self):
        compiled, _ = boot("int first = 9; int main(void) { return first; }")
        assert global_address(compiled, "first") == NEAR_GLOBALS_BASE

    def test_far_region_used_by_integrity_shadows(self):
        from repro.resistor import ResistorConfig, harden

        source = "int s = 1; int main(void) { s = s + 1; return s; }"
        hardened = harden(source, ResistorConfig.only("integrity", sensitive=("s",)))
        match = re.search(
            r"\.equ g_s__gr_integrity, (0x[0-9A-F]+)", hardened.compiled.assembly
        )
        assert int(match.group(1), 16) >= FAR_GLOBALS_BASE


class TestSectionSizes:
    def test_sizes_accounting(self):
        compiled, _ = boot("int a = 1; int z; int main(void) { return a + z; }")
        assert compiled.sizes.data == 4  # one initialized global
        assert compiled.sizes.bss == 4  # one zeroed global
        assert compiled.sizes.text > 0
        assert compiled.sizes.total == (
            compiled.sizes.text + compiled.sizes.data + compiled.sizes.bss
        )

    def test_sizes_dataclass(self):
        sizes = SectionSizes(text=10, data=4, bss=2)
        assert sizes.total == 16

    def test_image_loads_within_flash(self):
        compiled, _ = boot("int main(void) { return 0; }")
        from repro.hw.mcu import FLASH_BASE, FLASH_SIZE

        assert compiled.image.base == FLASH_BASE
        assert len(compiled.image.code) < FLASH_SIZE


class TestRuntimeInjection:
    def test_division_pulls_in_runtime(self):
        compiled, board = boot(
            "int main(void) { int a = 100; int b = 7; return a / b; }"
        )
        assert "__gr_udiv" in compiled.assembly
        assert board.cpu.regs[0] == 14

    def test_no_division_no_runtime(self):
        compiled, _ = boot("int main(void) { return 1 + 2; }")
        assert "__gr_udiv" not in compiled.assembly

    def test_division_by_zero_halts(self):
        compiled = compile_source("int d; int main(void) { return 5 / d; }")
        board = Board(compiled.image)
        reason = board.run(100_000)
        # __gr_udiv calls __halt() on zero divisors
        assert reason == "halted"


class TestPassLog:
    def test_pass_log_recorded(self):
        compiled, _ = boot("int main(void) { return 1 + 2; }")
        names = [name for name, _ in compiled.pass_log]
        assert names == ["constfold", "dce"]

    def test_optimize_false_skips_passes(self):
        compiled = compile_source("int main(void) { return 1 + 2; }", optimize=False)
        assert compiled.pass_log == []


class TestCodegenPatterns:
    """The generated Thumb must expose the paper's attack surface."""

    def test_fused_cmp_branch_pair(self):
        """`if (x == k)` must compile to an adjacent cmp / b<cc> pair — the
        instruction sequence every glitching experiment targets."""
        compiled = compile_source(
            "int g = 5; void win(void) { } int main(void) { if (g == 5) { win(); } return 0; }"
        )
        lines = [l.strip() for l in compiled.assembly.splitlines()]
        for index, line in enumerate(lines):
            if line.startswith("cmp r0, r1"):
                following = lines[index + 1]
                if following.startswith("beq") or following.startswith("bne"):
                    return
        raise AssertionError("no fused cmp/b<cc> pair in generated code")

    def test_guard_loop_has_conditional_branch(self):
        compiled = compile_source(
            "volatile int a; void win(void) { } int main(void) { while (!a) { } win(); return 0; }"
        )
        text = compiled.assembly
        assert "cmp r0, r1" in text or "cmp r0, #0" in text
        assert any(mnemonic in text for mnemonic in ("beq", "bne"))

    def test_volatile_load_not_cached(self):
        """Two volatile reads must produce two ldr instructions."""
        compiled = compile_source(
            "volatile int v; int main(void) { return v + v; }"
        )
        body = compiled.assembly.split("main:")[1].split("epilogue")[0]
        assert body.count("ldr r3, =g_v") == 2

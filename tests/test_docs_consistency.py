"""Documentation consistency: the READMEs must not rot.

Checks that every module path, benchmark file, and example script the
documentation names actually exists, and that the README quickstart code
runs verbatim.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReferencedPathsExist:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md"])
    def test_benchmark_files_exist(self, doc):
        text = _read(doc)
        for match in re.findall(r"benchmarks/(test_bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), f"{doc} references missing {match}"

    def test_example_scripts_exist(self):
        text = _read("README.md")
        for match in re.findall(r"`(\w+\.py)` —", text):
            assert (ROOT / "examples" / match).exists(), f"README references missing {match}"

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md"])
    def test_module_paths_import(self, doc):
        import importlib

        text = _read(doc)
        for match in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            module_path = match
            try:
                importlib.import_module(module_path)
            except ModuleNotFoundError:
                # could be an attribute path like repro.hw.Board
                parent, _, attr = module_path.rpartition(".")
                module = importlib.import_module(parent)
                assert hasattr(module, attr), f"{doc} references missing {module_path}"


class TestReadmeQuickstartRuns:
    def test_quickstart_block_executes(self):
        text = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README has no python blocks"
        namespace: dict = {}
        # the first two blocks form one continuous session (harden → attack)
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
        exec(blocks[1], namespace)  # noqa: S102
        assert namespace["board"].cpu.regs[0] == 1
        assert namespace["result"].category in (
            "success", "detected", "reset", "no_effect",
        )


class TestCliDocsCoverage:
    """Every CLI subcommand and long flag must be documented.

    Walks the real parser (``repro.cli.build_parser``) so a newly added
    flag fails this test until README.md and docs/API.md mention it.
    """

    @staticmethod
    def _cli_surface():
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        commands = {}
        for name, sub in subparsers.choices.items():
            flags = set()
            for action in sub._actions:
                for option in action.option_strings:
                    if option.startswith("--"):
                        flags.add(option)
            flags.discard("--help")
            commands[name] = flags
        return commands

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md"])
    def test_every_subcommand_documented(self, doc):
        text = _read(doc)
        for command in self._cli_surface():
            assert re.search(rf"\b{command}\b", text), (
                f"{doc} does not mention the `{command}` subcommand"
            )

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md"])
    def test_every_long_flag_documented(self, doc):
        text = _read(doc)
        missing = sorted(
            flag
            for flags in self._cli_surface().values()
            for flag in flags
            if flag not in text
        )
        assert not missing, f"{doc} does not mention CLI flag(s): {missing}"


class TestExperimentsClaimsMatchDrivers:
    def test_every_table_has_a_driver(self):
        import repro.experiments as experiments

        for name in ("run_figure2", "run_table1", "run_table2", "run_table3",
                     "run_table4", "run_table5", "run_table6", "run_table7",
                     "run_search"):
            assert hasattr(experiments, name)

    def test_experiments_md_covers_every_artifact(self):
        text = _read("EXPERIMENTS.md")
        for heading in ("Figure 2", "Table I ", "Table II ", "Table III",
                        "Table IV", "Table V ", "Table VI", "Table VII", "§V-B"):
            assert heading in text, f"EXPERIMENTS.md missing section for {heading!r}"

"""Documentation consistency: the READMEs must not rot.

Checks that every module path, benchmark file, and example script the
documentation names actually exists, that the README quickstart code
runs verbatim, that docs/ARCHITECTURE.md covers every public module,
and that docs/EXPERIMENTS.md gives a runnable command for every
``experiment`` subcommand choice.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def _public_modules() -> list[str]:
    """Every importable ``repro.*`` module, underscore names excluded."""
    src = ROOT / "src"
    modules = []
    for path in sorted((src / "repro").rglob("*.py")):
        relative = path.relative_to(src)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if any(part.startswith("_") for part in parts):
            continue
        modules.append(".".join(parts))
    return modules


class TestReferencedPathsExist:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                                     "docs/API.md", "docs/ARCHITECTURE.md",
                                     "docs/EXPERIMENTS.md"])
    def test_benchmark_files_exist(self, doc):
        text = _read(doc)
        for match in re.findall(r"benchmarks/(test_bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), f"{doc} references missing {match}"

    def test_example_scripts_exist(self):
        text = _read("README.md")
        for match in re.findall(r"`(\w+\.py)` —", text):
            assert (ROOT / "examples" / match).exists(), f"README references missing {match}"

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md",
                                     "docs/ARCHITECTURE.md",
                                     "docs/EXPERIMENTS.md"])
    def test_module_paths_import(self, doc):
        import importlib

        text = _read(doc)
        for match in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            module_path = match
            if any(part.startswith("_") for part in module_path.split(".")):
                continue  # importing repro.__main__ would run the CLI
            try:
                importlib.import_module(module_path)
            except ModuleNotFoundError:
                # could be an attribute path like repro.hw.Board
                parent, _, attr = module_path.rpartition(".")
                module = importlib.import_module(parent)
                assert hasattr(module, attr), f"{doc} references missing {module_path}"


class TestReadmeQuickstartRuns:
    def test_quickstart_block_executes(self):
        text = _read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README has no python blocks"
        namespace: dict = {}
        # the first two blocks form one continuous session (harden → attack)
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
        exec(blocks[1], namespace)  # noqa: S102
        assert namespace["board"].cpu.regs[0] == 1
        assert namespace["result"].category in (
            "success", "detected", "reset", "no_effect",
        )


class TestCliDocsCoverage:
    """Every CLI subcommand and long flag must be documented.

    Walks the real parser (``repro.cli.build_parser``) so a newly added
    flag fails this test until README.md and docs/API.md mention it.
    """

    @staticmethod
    def _cli_surface():
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        commands = {}
        for name, sub in subparsers.choices.items():
            flags = set()
            for action in sub._actions:
                for option in action.option_strings:
                    if option.startswith("--"):
                        flags.add(option)
            flags.discard("--help")
            commands[name] = flags
        return commands

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md"])
    def test_every_subcommand_documented(self, doc):
        text = _read(doc)
        for command in self._cli_surface():
            assert re.search(rf"\b{command}\b", text), (
                f"{doc} does not mention the `{command}` subcommand"
            )

    @pytest.mark.parametrize("doc", ["README.md", "docs/API.md"])
    def test_every_long_flag_documented(self, doc):
        text = _read(doc)
        missing = sorted(
            flag
            for flags in self._cli_surface().values()
            for flag in flags
            if flag not in text
        )
        assert not missing, f"{doc} does not mention CLI flag(s): {missing}"


class TestArchitectureDocCoverage:
    """docs/ARCHITECTURE.md must index the whole public module surface."""

    def test_every_public_module_mentioned(self):
        text = _read("docs/ARCHITECTURE.md")
        missing = [m for m in _public_modules() if m not in text]
        assert not missing, (
            f"docs/ARCHITECTURE.md does not mention public module(s): {missing}"
        )

    def test_mentioned_modules_are_not_stale(self):
        """Index rows must name modules that still exist (catches renames)."""
        existing = set(_public_modules())
        text = _read("docs/ARCHITECTURE.md")
        index_rows = re.findall(r"^\| `(repro(?:\.\w+)+)` \|", text, re.MULTILINE)
        assert index_rows, "docs/ARCHITECTURE.md module index is missing"
        stale = [m for m in index_rows if m not in existing]
        assert not stale, f"docs/ARCHITECTURE.md indexes removed module(s): {stale}"

    def test_snapshot_invariants_documented(self):
        """The fast-path contracts the tests pin must stay written down."""
        text = _read("docs/ARCHITECTURE.md")
        for phrase in ("What restore must undo", "Decode-cache invalidation",
                       "region.data", "seed page"):
            assert phrase in text, f"ARCHITECTURE.md lost the {phrase!r} invariant"


class TestExperimentsGuideCoverage:
    """docs/EXPERIMENTS.md must give a runnable command per experiment."""

    @staticmethod
    def _experiment_choices():
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        experiment = subparsers.choices["experiment"]
        positional = next(
            action for action in experiment._actions
            if action.choices and not action.option_strings
        )
        return sorted(positional.choices)

    def test_every_experiment_choice_has_a_command_line(self):
        text = _read("docs/EXPERIMENTS.md")
        missing = [
            name for name in self._experiment_choices()
            if not re.search(rf"python -m repro experiment {name}\b", text)
        ]
        assert not missing, (
            f"docs/EXPERIMENTS.md lacks a `python -m repro experiment <name>` "
            f"command line for: {missing}"
        )

    def test_runnable_blocks_present_and_extractable(self):
        import sys

        sys.path.insert(0, str(ROOT / "tests"))
        try:
            from extract_doc_blocks import extract_runnable_blocks
        finally:
            sys.path.pop(0)
        blocks = extract_runnable_blocks(ROOT / "docs" / "EXPERIMENTS.md")
        languages = {block.language for block in blocks}
        assert "bash" in languages and "python" in languages, (
            "docs/EXPERIMENTS.md must keep at least one runnable bash and one "
            "runnable python block for the CI smoke job"
        )

    def test_golden_numbers_match_the_golden_tests(self):
        """The doc quotes the exact constants test_golden_numbers.py pins."""
        text = _read("docs/EXPERIMENTS.md")
        golden = _read("tests/test_golden_numbers.py")
        for constant in ("0.4252232142857143", "0.12009974888392858",
                         "0.415924072265625", "0.40345982142857145"):
            assert constant in text, f"docs/EXPERIMENTS.md lost golden {constant}"
            assert constant in golden, f"golden test lost constant {constant}"


class TestExperimentsClaimsMatchDrivers:
    def test_every_table_has_a_driver(self):
        import repro.experiments as experiments

        for name in ("run_figure2", "run_table1", "run_table2", "run_table3",
                     "run_table4", "run_table5", "run_table6", "run_table7",
                     "run_search"):
            assert hasattr(experiments, name)

    def test_experiments_md_covers_every_artifact(self):
        text = _read("EXPERIMENTS.md")
        for heading in ("Figure 2", "Table I ", "Table II ", "Table III",
                        "Table IV", "Table V ", "Table VI", "Table VII", "§V-B"):
            assert heading in text, f"EXPERIMENTS.md missing section for {heading!r}"

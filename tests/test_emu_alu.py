"""ALU semantics tests, including a model-based property check against Python ints."""

from hypothesis import given
from hypothesis import strategies as st

from repro.emu import alu

U32 = st.integers(0, 0xFFFFFFFF)


class TestAddWithCarry:
    def test_simple_add(self):
        assert alu.add_with_carry(1, 2, False) == (3, False, False)

    def test_carry_out(self):
        result, carry, overflow = alu.add_with_carry(0xFFFFFFFF, 1, False)
        assert (result, carry, overflow) == (0, True, False)

    def test_signed_overflow(self):
        result, carry, overflow = alu.add_with_carry(0x7FFFFFFF, 1, False)
        assert result == 0x80000000
        assert not carry
        assert overflow

    def test_carry_in(self):
        assert alu.add_with_carry(1, 1, True)[0] == 3

    @given(U32, U32, st.booleans())
    def test_matches_python_arithmetic(self, a, b, c):
        result, carry, overflow = alu.add_with_carry(a, b, c)
        total = a + b + (1 if c else 0)
        assert result == total & 0xFFFFFFFF
        assert carry == (total > 0xFFFFFFFF)
        signed = _s(a) + _s(b) + (1 if c else 0)
        assert overflow == (not -(1 << 31) <= signed < (1 << 31))


class TestSubtract:
    def test_no_borrow_sets_carry(self):
        result, carry, overflow = alu.subtract(5, 3)
        assert (result, carry) == (2, True)

    def test_borrow_clears_carry(self):
        result, carry, overflow = alu.subtract(3, 5)
        assert result == 0xFFFFFFFE
        assert not carry

    def test_equal_is_zero_with_carry(self):
        result, carry, _ = alu.subtract(7, 7)
        assert (result, carry) == (0, True)

    @given(U32, U32)
    def test_matches_python(self, a, b):
        result, carry, _ = alu.subtract(a, b)
        assert result == (a - b) & 0xFFFFFFFF
        assert carry == (a >= b)


class TestShifts:
    def test_lsl_zero_keeps_carry(self):
        assert alu.lsl_carry(5, 0, True) == (5, True)

    def test_lsl_normal(self):
        assert alu.lsl_carry(0x80000001, 1, False) == (2, True)

    def test_lsl_32(self):
        assert alu.lsl_carry(1, 32, False) == (0, True)
        assert alu.lsl_carry(2, 32, False) == (0, False)

    def test_lsl_over_32(self):
        assert alu.lsl_carry(0xFFFFFFFF, 33, True) == (0, False)

    def test_lsr_normal(self):
        assert alu.lsr_carry(0b11, 1, False) == (1, True)

    def test_lsr_32(self):
        assert alu.lsr_carry(0x80000000, 32, False) == (0, True)

    def test_asr_sign_fill(self):
        assert alu.asr_carry(0x80000000, 1, False) == (0xC0000000, False)

    def test_asr_saturates(self):
        assert alu.asr_carry(0x80000000, 40, False) == (0xFFFFFFFF, True)
        assert alu.asr_carry(0x7FFFFFFF, 40, False) == (0, False)

    def test_ror(self):
        assert alu.ror_carry(1, 1, False) == (0x80000000, True)

    def test_ror_multiple_of_32(self):
        assert alu.ror_carry(0x80000000, 32, False) == (0x80000000, True)

    @given(U32, st.integers(1, 31))
    def test_lsl_lsr_inverse_on_low_bits(self, value, amount):
        shifted, _ = alu.lsl_carry(value, amount, False)
        back, _ = alu.lsr_carry(shifted, amount, False)
        assert back == (value << amount & 0xFFFFFFFF) >> amount

    @given(U32, st.integers(0, 63), st.booleans())
    def test_shift_results_are_32bit(self, value, amount, carry):
        for op in (alu.lsl_carry, alu.lsr_carry, alu.asr_carry, alu.ror_carry):
            result, c = op(value, amount, carry)
            assert 0 <= result <= 0xFFFFFFFF
            assert isinstance(c, bool)


def _s(value: int) -> int:
    return value - (1 << 32) if value & (1 << 31) else value
